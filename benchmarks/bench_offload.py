"""§7.1 operation offloading — CHC offload vs naive read-modify-write.

Paper: with two NAT instances updating shared state (available ports and
counters), caching off, "the median packet processing latency of the
naive approach is 2.17X worse (64.6us vs 29.7us), because it not only
requires 2 RTTs to update state ... but it may also have NFs wait to
acquire locks. CHC's aggregate throughput across the two instances is
>2X better."
"""

from conftest import run_once
from repro.baselines.statelessnf import StatelessNfHarness
from repro.bench.calibration import bench_scale, params_for_model
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.nfs import Nat
from repro.simnet.engine import Simulator
from repro.simnet.network import Link, Network
from repro.store.datastore import DatastoreInstance
from repro.traffic import ReplaySource, make_trace2
from repro.util import stable_hash

PAPER_RATIO = 2.17


def test_operation_offloading(benchmark):
    trace = make_trace2(scale=bench_scale(0.001))

    def experiment():
        # --- CHC: ops offloaded to the store, caching off ----------------
        chc_sim = Simulator()
        chain = LogicalChain("offload")
        chain.add_vertex("nat", Nat, parallelism=2, entry=True)
        chc = ChainRuntime(
            chc_sim, chain, params=params_for_model("EO")
        )
        # offered at full line rate: the arms differ in how fast they drain
        ReplaySource(chc_sim, trace.packets, chc.inject, load_fraction=1.0)
        chc_sim.run(until=300_000_000)
        chc_values = [
            v for i in chc.instances_of("nat") for v in i.recorder.values
        ]
        chc_bits = sum(i.throughput.bits for i in chc.instances_of("nat"))
        chc_span = max(
            i.throughput.last_at or 0.0 for i in chc.instances_of("nat")
        ) - min(i.throughput.first_at or 0.0 for i in chc.instances_of("nat"))

        # --- naive: lock+read / write+unlock per op (StatelessNF-style) --
        naive_sim = Simulator()
        network = Network(naive_sim, Link(latency_us=14.0), seed=1)
        DatastoreInstance(naive_sim, network, "store0")
        instances = [
            StatelessNfHarness(naive_sim, Nat(), network, "store0", name=f"naive-{k}")
            for k in range(2)
        ]

        def split(packet):
            shard = stable_hash(packet.five_tuple.canonical().key()) % 2
            instances[shard].inject(packet)

        ReplaySource(naive_sim, trace.packets, split, load_fraction=1.0)
        naive_sim.run(until=300_000_000)
        naive_values = [v for i in instances for v in i.recorder.values]
        naive_bits = sum(i.throughput.bits for i in instances)
        naive_span = max(i.throughput.last_at or 0.0 for i in instances) - min(
            i.throughput.first_at or 0.0 for i in instances
        )
        return chc_values, chc_bits, chc_span, naive_values, naive_bits, naive_span

    chc_values, chc_bits, chc_span, naive_values, naive_bits, naive_span = run_once(
        benchmark, experiment
    )

    import numpy as np

    chc_median = float(np.median(chc_values))
    naive_median = float(np.median(naive_values))
    chc_gbps = chc_bits / chc_span / 1000.0
    naive_gbps = naive_bits / naive_span / 1000.0

    table = ResultTable(
        title="Operation offloading vs naive read-modify-write (2 NAT instances)",
        headers=["approach", "median pkt latency (us)", "aggregate Gbps"],
    )
    table.add("CHC offload", f"{chc_median:.1f}", f"{chc_gbps:.2f}")
    table.add("naive lock/r/w/unlock", f"{naive_median:.1f}", f"{naive_gbps:.2f}")
    table.add("ratio", f"{naive_median / chc_median:.2f}x", f"{chc_gbps / max(naive_gbps, 1e-9):.2f}x")
    table.note(f"paper: naive median 2.17X worse (64.6us vs 29.7us); CHC throughput >2X")
    write_result("offload", [table])

    assert naive_median > 1.5 * chc_median
    assert chc_gbps > naive_gbps
