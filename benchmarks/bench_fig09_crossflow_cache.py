"""Figure 9 — cross-flow state caching around a scale-out/scale-in.

Paper: a single portscan detector caches the per-host likelihood (shared,
write/read often). When a second instance is added and traffic for the
host set H is split across both, the upstream splitter signals the
original instance to flush that shared state; from then on every
SYN-ACK/RST triggers a *blocking* store update (one RTT spike per
connection event). When processing for H collapses back onto one
instance, caching resumes and the spikes disappear.

We reproduce the timeline with the exclusivity toggle the splitter drives:
phase 1 cached -> phase 2 shared (blocking) -> phase 3 cached again, and
report connection-event packet latency per phase.
"""

import numpy as np

from conftest import run_once
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.nfs import PortscanDetector
from repro.simnet.engine import Simulator
from repro.traffic.flows import FlowSpec, flow_packets, interleave
from repro.traffic.packet import FiveTuple

N_PROBES = 900  # connection attempts (each = SYN + SYN-ACK/RST)


def probe_stream():
    """A stream of connection attempts from a handful of hosts in H."""
    flows = []
    for index in range(N_PROBES):
        flows.append(
            flow_packets(
                FlowSpec(
                    five_tuple=FiveTuple(
                        f"10.0.3.{index % 4}", "52.0.0.9", 20_000 + index, 80
                    ),
                    n_packets=2,
                    refused=(index % 3 == 0),
                    start_us=index * 12.0,
                    gap_us=2.0,
                )
            )
        )
    return interleave(flows)


def test_fig09_crossflow_caching(benchmark):
    def experiment():
        sim = Simulator()
        chain = LogicalChain("fig9")
        chain.add_vertex("scan", PortscanDetector, entry=True)
        runtime = ChainRuntime(sim, chain)
        instance = runtime.instances_of("scan")[0]
        stream = probe_stream()
        t_total = stream[-1][0]
        t_split, t_merge = t_total / 3, 2 * t_total / 3

        def source():
            for at, packet in stream:
                delay = at - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                runtime.inject(packet)

        def phase_changes():
            # second instance added; hosts in H now processed at both ->
            # the splitter withdraws exclusivity and the client flushes.
            yield sim.timeout(t_split)
            yield from instance.client.set_exclusive("likelihood", False)
            yield sim.timeout(t_merge - t_split)
            # traffic for H re-collapses onto one instance: cache again.
            yield from instance.client.set_exclusive("likelihood", True)

        sim.process(source())
        sim.process(phase_changes())
        sim.run(until=300_000_000)
        return instance, (t_split, t_merge)

    instance, (t_split, t_merge) = run_once(benchmark, experiment)

    phases = {"cached (before split)": [], "shared (split)": [], "cached (after merge)": []}
    for value, at in zip(instance.recorder.values, instance.recorder.timestamps):
        if value <= 2.5:
            continue  # non-event packets: no state op beyond the cache
        if at < t_split:
            phases["cached (before split)"].append(value)
        elif at < t_merge:
            phases["shared (split)"].append(value)
        else:
            phases["cached (after merge)"].append(value)

    table = ResultTable(
        title="Figure 9 — per-event packet latency around split/merge (us)",
        headers=["phase", "events", "mean", "p95"],
    )
    means = {}
    for phase, values in phases.items():
        mean = float(np.mean(values)) if values else 0.0
        p95 = float(np.percentile(values, 95)) if values else 0.0
        means[phase] = mean
        table.add(phase, len(values), f"{mean:.1f}", f"{p95:.1f}")
    table.note(
        "paper: latency rises for every SYN-ACK/RST while state is shared "
        "(blocking store update per event), drops once caching resumes"
    )
    write_result("fig09_crossflow_cache", [table])

    assert means["shared (split)"] > 20.0  # blocking store RTT visible
    # before/after phases: events served from cache stay near CPU cost —
    # values above 2.5us are rare (none or a handful at phase borders)
    assert len(phases["shared (split)"]) > 50
