"""§7.1 chain overhead — CHC chain vs traditional NFs end to end.

Paper: "We constructed a simple chain consisting of one instance each of
NAT, portscan detector and load balancer in sequence, and the Trojan
detector operating off-path attached to the NAT. With model #3, the
median end-to-end overhead was 11.3usec compared to using traditional
NFs."
"""

from conftest import run_once
from repro.baselines.traditional import TraditionalChain
from repro.bench.calibration import bench_scale
from repro.bench.report import ResultTable, write_result
from repro.bench.scenarios import build_paper_chain
from repro.nfs import LoadBalancer, Nat, PortscanDetector
from repro.simnet.engine import Simulator
from repro.traffic import ReplaySource, make_trace2

PAPER_OVERHEAD_US = 11.3


def test_chain_overhead(benchmark):
    trace = make_trace2(scale=bench_scale())

    def experiment():
        chc_sim = Simulator()
        chc = build_paper_chain(chc_sim)
        ReplaySource(chc_sim, trace.packets, chc.inject, load_fraction=0.5)
        chc_sim.run(until=300_000_000)

        trad_sim = Simulator()
        trad = TraditionalChain(
            trad_sim, [Nat(), PortscanDetector(), LoadBalancer()]
        )
        ReplaySource(trad_sim, trace.packets, trad.inject, load_fraction=0.5)
        trad_sim.run(until=300_000_000)
        return chc, trad

    chc, trad = run_once(benchmark, experiment)

    chc_median = chc.egress_recorder.median()
    trad_median = trad.egress_recorder.median()
    overhead = chc_median - trad_median

    table = ResultTable(
        title="Chain end-to-end latency: CHC (model #3) vs traditional NFs",
        headers=["chain", "pkts", "median e2e (us)", "p95 (us)"],
    )
    table.add("traditional", trad.egress_meter.packets,
              f"{trad_median:.1f}", f"{trad.egress_recorder.percentile(95):.1f}")
    table.add("CHC", chc.egress_meter.packets,
              f"{chc_median:.1f}", f"{chc.egress_recorder.percentile(95):.1f}")
    table.add("overhead", "-", f"{overhead:.1f}", "-")
    table.note(f"paper: median end-to-end overhead ~{PAPER_OVERHEAD_US}us (model #3)")
    table.note("the CHC chain additionally runs the off-path trojan detector")
    write_result("chain_overhead", [table])

    assert chc.egress_meter.packets >= len(trace)
    # overhead is small: same order as the paper's ~11us, far below one RTT
    assert overhead < 30.0
