"""Figure 11 / R3 — strongly consistent shared state: CHC vs OpenNF.

Paper: with updates to shared NAT state serialized in a global order
across two instances, CHC's median per-packet latency is 99% lower than
OpenNF's (1.8us vs 0.166ms). OpenNF's controller receives every packet,
forwards it to every instance and releases it only after all ACK; CHC's
store simply serializes the offloaded operations.
"""

import numpy as np

from conftest import run_once
from repro.baselines.opennf import OpenNfController, OpenNfSharedStateHarness
from repro.bench.calibration import bench_scale
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.nfs import Nat
from repro.simnet.engine import Simulator
from repro.traffic import ReplaySource, make_trace2
from repro.util import stable_hash

PAPER = {"chc_median": 1.8, "opennf_median": 166.0}


# Workload: Figure 11 compares *latency disciplines*, so both systems must
# be inside their capacity region — OpenNF's mediation path serializes a
# flow's packets at ~168us each, so per-flow inter-packet spacing must
# exceed that. 64 concurrent flows round-robin at 35us per packet give
# every flow ~2.2ms between its packets; CHC runs the same workload.
N_FLOWS = 64
N_PACKETS = 6_000
INTERVAL_US = 35.0


def fig11_packets():
    from repro.traffic.packet import FiveTuple, Packet

    out = []
    for index in range(N_PACKETS):
        flow = index % N_FLOWS
        out.append(
            Packet(FiveTuple(f"10.0.5.{flow % 120}", "52.0.0.9", 7000 + flow, 80))
        )
    return out


def paced_source(sim, packets, sink):
    def body():
        for packet in packets:
            packet.ingress_time = sim.now
            sink(packet)
            yield sim.timeout(INTERVAL_US)

    sim.process(body())


def test_fig11_shared_state_consistency(benchmark):
    def experiment():
        # --- CHC: two NAT instances, offloaded serialized updates --------
        chc_sim = Simulator()
        chain = LogicalChain("fig11")
        chain.add_vertex("nat", Nat, parallelism=2, entry=True)
        chc = ChainRuntime(chc_sim, chain)  # EO+C+NA defaults
        paced_source(chc_sim, fig11_packets(), chc.inject)
        chc_sim.run(until=600_000_000)
        chc_values = [v for i in chc.instances_of("nat") for v in i.recorder.values]

        # --- OpenNF: controller-mediated strong consistency --------------
        onf_sim = Simulator()
        controller = OpenNfController(onf_sim, n_instances=2)
        instances = [
            OpenNfSharedStateHarness(onf_sim, Nat(), controller, name=f"onf-{k}")
            for k in range(2)
        ]

        def split(packet):
            instances[stable_hash(packet.five_tuple.canonical().key()) % 2].inject(packet)

        paced_source(onf_sim, fig11_packets(), split)
        onf_sim.run(until=600_000_000)
        onf_values = [v for i in instances for v in i.sojourn.values]
        return chc_values, onf_values

    chc_values, onf_values = run_once(benchmark, experiment)
    chc_median = float(np.median(chc_values))
    onf_median = float(np.median(onf_values))

    table = ResultTable(
        title="Figure 11 — per-packet latency with strongly consistent shared state",
        headers=["system", "p25", "median", "p75", "p95", "paper median"],
    )
    for name, values, paper in (
        ("CHC", chc_values, PAPER["chc_median"]),
        ("OpenNF", onf_values, PAPER["opennf_median"]),
    ):
        table.add(
            name,
            f"{np.percentile(values, 25):.1f}",
            f"{np.median(values):.1f}",
            f"{np.percentile(values, 75):.1f}",
            f"{np.percentile(values, 95):.1f}",
            f"{paper}",
        )
    reduction = 100.0 * (1 - chc_median / onf_median)
    table.add("reduction", "-", f"{reduction:.0f}%", "-", "-", "99%")
    write_result("fig11_sharing", [table])

    assert chc_median < 5.0
    assert onf_median > 50 * chc_median
