"""§7.2 — metadata overheads: clocks, packet logging, XOR/delete.

Paper numbers being reproduced:

* clock persistence: +29us/packet when written to the store every packet,
  amortised to ~3.5us (n=10) and ~0.4us (n=100) by batching;
* packet logging: local at the root +1us/packet, vs in the store +34.2us
  (more fault tolerant);
* the XOR bit-vector checks are asynchronous/background (no latency);
  making the last NF's "delete" synchronous before releasing output adds
  ~7.9us median.
"""

import pytest

from conftest import run_once
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.nfs import Nat
from repro.simnet.engine import Simulator
from repro.traffic import ReplaySource, make_trace2

N_PACKETS = 3_000


def run_chain(**params):
    sim = Simulator()
    chain = LogicalChain("meta")
    chain.add_vertex("nat", Nat, entry=True)
    runtime = ChainRuntime(sim, chain, params=RuntimeParams(**params))
    trace = make_trace2(scale=0.0005)
    ReplaySource(sim, trace.packets[:N_PACKETS], runtime.inject, load_fraction=0.3)
    sim.run(until=300_000_000)
    return runtime


def test_clock_persistence_batching(benchmark):
    def experiment():
        return {n: run_chain(clock_persist_every=n, local_log_cost_us=0.0)
                for n in (1, 10, 100)}

    runtimes = run_once(benchmark, experiment)
    table = ResultTable(
        title="Clock persistence overhead vs batching interval",
        headers=["persist every", "mean root latency/pkt (us)", "paper"],
    )
    paper = {1: "29", 10: "3.5", 100: "0.4"}
    means = {}
    for n, runtime in runtimes.items():
        means[n] = runtime.root.inject_recorder.mean()
        table.add(f"n={n}", f"{means[n]:.2f}", paper[n])
    write_result("meta_clock", [table])
    assert means[1] > 8 * means[10] > 8 * means[100] / 8
    assert means[1] > 20.0
    assert means[100] < 1.0


def test_packet_logging_location(benchmark):
    def experiment():
        local = run_chain(log_in_store=False, local_log_cost_us=1.0,
                          clock_persist_every=10**9)
        in_store = run_chain(log_in_store=True, clock_persist_every=10**9)
        return local, in_store

    local, in_store = run_once(benchmark, experiment)
    table = ResultTable(
        title="Packet logging: locally at the root vs in the datastore",
        headers=["mode", "mean added latency/pkt (us)", "paper"],
    )
    local_mean = local.root.inject_recorder.mean()
    store_mean = in_store.root.inject_recorder.mean()
    table.add("local", f"{local_mean:.2f}", "1.0")
    table.add("datastore", f"{store_mean:.2f}", "34.2")
    table.note("the store-kept log survives simultaneous root+NF failure (Table 3)")
    write_result("meta_logging", [table])
    assert local_mean == pytest.approx(1.0, abs=0.3)
    assert store_mean > 25.0


def test_sync_delete_overhead(benchmark):
    def experiment():
        async_delete = run_chain(sync_delete=False, clock_persist_every=10**9)
        sync_delete = run_chain(sync_delete=True, clock_persist_every=10**9)
        return async_delete, sync_delete

    async_rt, sync_rt = run_once(benchmark, experiment)
    table = ResultTable(
        title="Last-NF delete request: asynchronous vs synchronous",
        headers=["mode", "median e2e latency (us)", "paper delta"],
    )
    async_median = async_rt.egress_recorder.median()
    sync_median = sync_rt.egress_recorder.median()
    table.add("asynchronous", f"{async_median:.2f}", "-")
    table.add("synchronous", f"{sync_median:.2f}", "+7.9us median")
    table.add("delta", f"{sync_median - async_median:.2f}", "")
    table.note(
        "async risks duplicate output to the end host only if the last NF "
        "fails in the window (§7.2); XOR checks themselves are background"
    )
    write_result("meta_delete", [table])
    delta = sync_median - async_median
    assert 4.0 < delta < 20.0  # ~one root RTT
