"""Faithful copy of the PRE-OVERHAUL simulation engine (the repo seed).

This module exists solely as the baseline for ``bench_engine_micro.py`` /
``tools/perf_report.py``: the hot-path overhaul replaced the O(n)
``list.pop(0)`` channels and the heap-only zero-delay scheduling, and the
perf harness proves the win by running the same microbenchmarks against
this snapshot. Do NOT use it for anything else, and do not "fix" it — its
inefficiencies are the point.

Snapshot of ``src/repro/simnet/engine.py`` as of the seed commit, verbatim
below the original docstring.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class ProcessKilled(Exception):
    """Thrown into a process generator when it is killed (fail-stop)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    waiting processes are resumed at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_ok", "_value", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._ok = True
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self._schedule_callbacks()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception; waiters have it raised."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self._triggered = True
        self._ok = False
        self._value = exc
        self._schedule_callbacks()
        return self

    def _schedule_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, callback, self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event triggers (possibly now)."""
        if self._triggered:
            self.sim.schedule(0.0, callback, self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a ``(event, value)`` pair identifying which event won. A
    failed child event fails the :class:`AnyOf` with the child's exception.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


class AllOf(Event):
    """Fires when every child event has fired successfully."""

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self._triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return on_child


class Process(Event):
    """Drives a generator; itself an event that fires when the body returns.

    Killing a process (:meth:`kill`) models fail-stop crashes: the generator
    is abandoned immediately and never resumed, and pending wake-ups for it
    are ignored.
    """

    __slots__ = ("_generator", "_alive", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._alive = True
        self._waiting_on: Optional[Event] = None
        sim.schedule(0.0, self._step, None, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Fail-stop the process: it never runs again."""
        if not self._alive:
            return
        self._alive = False
        self._waiting_on = None
        self._generator.close()
        if not self._triggered:
            self.fail(ProcessKilled(self.name))

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its wait point."""
        if not self._alive:
            return
        self.sim.schedule(0.0, self._step, None, Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if not self._alive or event is not self._waiting_on:
            return  # stale wake-up (process was killed or interrupted)
        self._waiting_on = None
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            if not self._triggered:
                self.succeed(stop.value)
            return
        except ProcessKilled:
            self._alive = False
            if not self._triggered:
                self.fail(ProcessKilled(self.name))
            return
        except BaseException as error:  # noqa: BLE001 - a crashed process
            # fails its Process event instead of unwinding the event loop.
            self._alive = False
            if not self._triggered:
                self.fail(error)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Channel:
    """Unbounded FIFO channel with event-based ``get``.

    Models the framework-managed message queues between NF instances
    (§4.2). The framework can *operate on queue contents* — e.g. delete
    duplicate messages before they are consumed (§5.3) — via
    :meth:`remove_if`, and inspect depth via :func:`len` (used by straggler
    detection logic).
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes one waiting getter if any."""
        self._items.append(item)
        self._dispatch()

    def put_front(self, item: Any) -> None:
        """Enqueue ``item`` at the head (used when re-queuing after replay)."""
        self._items.insert(0, item)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._getters and self._items:
            getter = self._getters.pop(0)
            getter.succeed(self._items.pop(0))

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.sim, name=f"get({self.name})")
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Dequeue immediately, or return ``None`` if empty."""
        if self._items:
            return self._items.pop(0)
        return None

    def items(self) -> List[Any]:
        """A snapshot of queued items (read-only view for the framework)."""
        return list(self._items)

    def remove_if(self, predicate: Callable[[Any], bool]) -> int:
        """Delete queued items matching ``predicate``; returns count removed."""
        before = len(self._items)
        self._items = [item for item in self._items if not predicate(item)]
        return before - len(self._items)

    def clear(self) -> int:
        removed = len(self._items)
        self._items = []
        return removed


class Simulator:
    """The discrete event loop.

    ``now`` is virtual time in microseconds. Determinism: the heap is keyed
    by ``(time, seq)`` where ``seq`` is a monotone counter.
    """

    def __init__(self):
        self._now = 0.0
        self._heap: List[tuple] = []
        self._seq = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback, args))
        self._seq += 1

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a process driving ``generator``; returns its Process event."""
        return Process(self, generator, name=name)

    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> float:
        """Run until the heap drains or ``until`` (µs) is reached.

        Returns the simulation time when the run stopped. ``max_events`` is a
        runaway-loop backstop, not a tuning knob.
        """
        count = 0
        while self._heap:
            time, _seq, callback, args = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = time
            callback(*args)
            count += 1
            if count > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Start a process, run until *it* completes, return its value.

        Stops stepping as soon as the process triggers — background
        periodic processes (checkpoint loops, pollers) keep the heap
        non-empty forever and must not keep this call spinning.
        """
        proc = self.process(generator, name=name)
        count = 0
        while self._heap and not proc.triggered:
            time, _seq, callback, args = heapq.heappop(self._heap)
            self._now = time
            callback(*args)
            count += 1
            if count > 200_000_000:
                raise SimulationError("run_process exceeded event budget")
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} never completed (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
