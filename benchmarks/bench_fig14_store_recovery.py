"""Figure 14 / R6 — datastore-instance recovery time.

Paper: shared state is rebuilt from the last checkpoint by re-executing
the NF-side write-ahead logs (per-flow state is read back from the NFs'
caches). With 5 and 10 NAT instances updating the same shared objects and
checkpoints every 30/75/150ms, recovery takes up to ~388ms (10 NATs,
150ms interval) — growing with both the checkpoint interval and the
instance count, because both grow the op log to re-execute.

Scale note: the paper's instances push ~0.8 ops/us each (9.4Gbps of
packets). Simulating every op is wasteful here, so each client issues ops
at 1/SCALE of that rate and we report both the raw simulated recovery
time and the rate-normalized estimate (raw x SCALE for the re-execution
component ~= raw, since re-execution dominates).
"""

from conftest import run_once
from repro.bench.report import ResultTable, write_result
from repro.simnet.engine import Simulator
from repro.simnet.network import Link, Network
from repro.store.client import StoreClient
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.store.store_recovery import recover_store_instance
from repro.traffic.packet import FiveTuple, Packet

PAPER_MAX_MS = 388.2
OP_RATE_PER_US = 0.041   # per instance; 1/20 of the testbed's ~0.82 (SCALE=20)
SCALE = 20
CHECKPOINT_INTERVALS_MS = (30, 75, 150)
INSTANCE_COUNTS = (5, 10)


def run_arm(n_instances, checkpoint_ms):
    sim = Simulator()
    network = Network(sim, Link(latency_us=14.0), seed=2)
    store = DatastoreInstance(
        sim, network, "storeA", checkpoint_interval_us=checkpoint_ms * 1000.0
    )
    cluster = StoreCluster([store])
    specs = {
        "shared_counter": StateObjectSpec(
            "shared_counter", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (),
            initial_value=0,
        ),
    }
    clients = [
        StoreClient(sim, network, cluster, "nat", f"nat-{k}", dict(specs),
                    wait_for_acks=False)
        for k in range(n_instances)
    ]

    # run past at least one checkpoint, crash mid-interval
    crash_at = checkpoint_ms * 1000.0 * 1.6

    def workload(client, base):
        def body():
            clock = base
            interval = 1.0 / OP_RATE_PER_US
            while sim.now < crash_at:
                clock += 1
                packet = Packet(FiveTuple("10.0.0.1", "52.0.0.1", 1, 2))
                packet.clock = clock
                client.begin_packet(packet)
                yield from client.update("shared_counter", None, "incr", 1)
                yield sim.timeout(interval)

        return body

    for index, client in enumerate(clients):
        sim.process(workload(client, (index + 1) * 10_000_000)())

    sim.run(until=crash_at)
    store.fail()

    def recovery():
        result = yield from recover_store_instance(
            sim, network, cluster, store, clients, "storeB"
        )
        return result

    result = sim.run_process(recovery())
    return result


def test_fig14_store_recovery(benchmark):
    def experiment():
        return {
            (n, ms): run_arm(n, ms)
            for n in INSTANCE_COUNTS
            for ms in CHECKPOINT_INTERVALS_MS
        }

    results = run_once(benchmark, experiment)

    table = ResultTable(
        title="Figure 14 — shared-state recovery time after store failure",
        headers=["instances", "ckpt interval", "reexecuted ops",
                 "recovery (ms)", "rate-normalized (ms)"],
    )
    for n in INSTANCE_COUNTS:
        for ms in CHECKPOINT_INTERVALS_MS:
            r = results[(n, ms)]
            raw_ms = r.duration_us / 1000.0
            table.add(n, f"{ms}ms", r.reexecuted_ops, f"{raw_ms:.2f}",
                      f"{raw_ms * SCALE:.1f}")
    table.note(f"paper: <= {PAPER_MAX_MS}ms for 10 NATs at 150ms intervals "
               f"(9.4Gbps update rate; ours runs at 1/{SCALE} rate)")
    table.note("shape: recovery grows with checkpoint interval and instance count")
    write_result("fig14_store_recovery", [table])

    for n in INSTANCE_COUNTS:
        d30 = results[(n, 30)].duration_us
        d150 = results[(n, 150)].duration_us
        assert d150 > d30  # longer interval -> more log to re-execute
    for ms in CHECKPOINT_INTERVALS_MS:
        assert results[(10, ms)].reexecuted_ops > results[(5, ms)].reexecuted_ops
