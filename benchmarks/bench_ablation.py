"""Ablations of CHC's design choices (DESIGN.md §4, paper §4.3/§5.4).

1. **Scope-aware partitioning** (§4.1): partitioning on a subset of a
   shared object's scope confines the object to one instance, so the
   client-side library may cache it. Ablate by partitioning the portscan
   detector on the full 5-tuple instead of src IP: per-host likelihood
   becomes shared, every connection event pays a blocking store RTT.

2. **Store replication** (§5.4 "Correlated failures"): replication
   survives the otherwise-unrecoverable component+store failure "at the
   cost of increasing the per packet processing latency" — measure that
   cost for the NAT under none / asynchronous / synchronous replication.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.bench.calibration import bench_scale
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.splitter import FIVE_TUPLE
from repro.nfs import Nat, PortscanDetector
from repro.simnet.engine import Simulator
from repro.store.datastore import DatastoreInstance
from repro.traffic import ReplaySource, make_trace2


def probe_packets(n_hosts=6, probes_per_host=150):
    """A scan-heavy workload: few hosts, many connection events each, so
    the per-host likelihood object is touched repeatedly (cold-cache
    first-touches amortise away)."""
    from repro.traffic.flows import FlowSpec, flow_packets, interleave
    from repro.traffic.packet import FiveTuple

    flows = []
    for host in range(n_hosts):
        for probe in range(probes_per_host):
            flows.append(flow_packets(FlowSpec(
                five_tuple=FiveTuple(
                    f"10.0.2.{host + 1}", "52.0.0.9", 20_000 + probe, 80
                ),
                n_packets=2,
                refused=(probe % 3 == 0),
                start_us=(host + n_hosts * probe) * 6.0,
                gap_us=2.0,
            )))
    return [p for _t, p in interleave(flows)]


def run_partitioning_arm(scope_aware, packets):
    sim = Simulator()
    chain = LogicalChain("ablate-scope")
    chain.add_vertex("scan", PortscanDetector, parallelism=2, entry=True)
    runtime = ChainRuntime(sim, chain)
    if not scope_aware:
        runtime.splitter("scan").partition_fields = FIVE_TUPLE
        runtime._apply_exclusivity()
    ReplaySource(sim, [p.copy() for p in packets], runtime.inject, load_fraction=0.5)
    sim.run(until=300_000_000)
    values = [v for i in runtime.instances_of("scan") for v in i.recorder.values]
    events = [v for v in values if v > 2.5]  # connection-event packets
    blocking = sum(i.client.stats.blocking_ops for i in runtime.instances_of("scan"))
    return values, events, blocking


def test_ablation_scope_aware_partitioning(benchmark):
    packets = probe_packets()

    def experiment():
        return {
            "scope-aware (src_ip)": run_partitioning_arm(True, packets),
            "naive (5-tuple)": run_partitioning_arm(False, packets),
        }

    results = run_once(benchmark, experiment)
    table = ResultTable(
        title="Ablation — scope-aware partitioning (portscan, 2 instances)",
        headers=["partitioning", "p99 pkt latency", "event packets >2.5us",
                 "blocking store ops"],
    )
    for name, (values, events, blocking) in results.items():
        table.add(name, f"{np.percentile(values, 99):.1f}us", len(events), blocking)
    table.note("scope-aware split keeps the per-host likelihood cacheable: "
               "connection events never block on the store")
    write_result("ablation_scope", [table])

    aware = results["scope-aware (src_ip)"]
    naive = results["naive (5-tuple)"]
    assert aware[2] <= 20           # only cold first-touches
    assert naive[2] > 500           # every conn event blocks
    assert len(naive[1]) > 10 * max(len(aware[1]), 1)


def run_replication_arm(mode, trace):
    sim = Simulator()
    chain = LogicalChain("ablate-repl")
    chain.add_vertex("nat", Nat, entry=True)
    # NAT pays blocking ops on SYNs (port allocation is offloaded), which
    # is where synchronous replication shows up; counters stay non-blocking
    runtime = ChainRuntime(sim, chain, params=RuntimeParams(wait_for_acks=True))
    if mode != "none":
        primary = runtime.stores[0]
        # the mirror must know the NFs' custom operations too
        DatastoreInstance(
            sim, runtime.network, "mirror0", registry=primary.registry.copy()
        )
        primary.mirror = "mirror0"
        primary.sync_replication = mode == "sync"
    ReplaySource(sim, trace.packets, runtime.inject, load_fraction=0.3)
    sim.run(until=300_000_000)
    return runtime.instances_of("nat")[0].recorder.values


def test_ablation_store_replication_cost(benchmark):
    trace = make_trace2(scale=bench_scale(0.001))

    def experiment():
        return {mode: run_replication_arm(mode, trace) for mode in ("none", "async", "sync")}

    results = run_once(benchmark, experiment)
    table = ResultTable(
        title="Ablation — store replication latency cost (NAT, ACK-waiting)",
        headers=["replication", "median (us)", "p95 (us)"],
    )
    medians = {}
    for mode, values in results.items():
        medians[mode] = float(np.median(values))
        table.add(mode, f"{medians[mode]:.1f}", f"{np.percentile(values, 95):.1f}")
    table.note('paper: replication "comes at the cost of increasing the per '
               'packet processing latency" — visible only in synchronous mode')
    write_result("ablation_replication", [table])

    assert medians["async"] == pytest.approx(medians["none"], rel=0.2)
    p95 = {m: float(np.percentile(v, 95)) for m, v in results.items()}
    assert p95["sync"] > p95["none"] + 20.0  # +1 store RTT on blocking ops
