"""Engine hot-path microbenchmarks: new engine vs the seed ("legacy") engine.

Unlike the ``bench_fig*`` experiments (which reproduce the *paper's*
numbers in simulated time), this file measures the simulator itself in
**wall-clock** time: every reproduced figure and the whole tier-1 suite are
bounded by the event loop's throughput, so this is the repo's perf
trajectory. Four scenarios:

* **channel_churn** — bursty producer through a :class:`Channel` with deep
  queue build-up; the consumer drains each burst in a batch (one generator
  resume per burst, then ``try_get`` — the receive-loop idiom), plus a
  parked-getter fleet on a second channel. The seed paid ``list.pop(0)``
  per item and per parked getter (O(depth) each); the overhaul uses
  ``deque``.
* **timer_storm** — a large fleet of armed retransmit-style timers keeps
  the time heap deep (the store client arms one per non-blocking update,
  so tens of thousands live at high load) while a periodic-timer fleet
  fires delivery fanouts: each fire triggers an event with parked waiters
  and each delivery does one follow-up microtask. The seed round-trips
  every zero-delay callback through the loaded heap (O(log n) sift against
  40k entries); the overhaul's microtask FIFO makes them O(1).
* **rpc_pingpong** — request/response rendezvous built from engine
  primitives only (channel + event + latency timeout), the skeleton of
  every store RPC in the dataplane. Dominated by generator resumes that
  both engines pay identically, so its ratio is modest by design — it is
  here to prove the overhaul does not regress RPC-shaped workloads.
* **chain_pipeline** — the full CHC dataplane (firewall -> NAT -> rate
  limiter -> LB, store, root, NICs); new engine only, run with the batched
  match-action fast path off and on. The off/on ratio (``speedup``) and
  the deterministic engine-event ratio are the PR-6 acceptance metrics.

Scenarios time only the ``run()`` phase (setup — arming timers, spawning
processes — is excluded), and ``run_comparison`` interleaves legacy/new
repeats taking the best of each, so the recorded ratio tracks the floor of
both engines rather than scheduler noise.

Run directly (``python benchmarks/bench_engine_micro.py [--smoke]``), via
``tools/perf_report.py`` (writes ``BENCH_engine.json``), or under pytest
(``pytest benchmarks/bench_engine_micro.py``), where the smoke test gates
against regression on the two acceptance scenarios.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, Tuple

# ---------------------------------------------------------------------------
# scenario bodies — parameterised by an engine module so the identical code
# runs against repro.simnet.engine and the legacy snapshot; each returns
# (units, run_wall_seconds) with setup excluded from the timed region
# ---------------------------------------------------------------------------


def channel_churn(
    engine, bursts: int = 14, burst: int = 8192, getters: int = 256
) -> Tuple[int, float]:
    """Deep bursty FIFO traffic, batch-draining consumer, parked-getter fleet."""
    sim = engine.Simulator()
    channel = engine.Channel(sim, name="churn")
    consumed = [0]

    def producer():
        for _ in range(bursts):
            for i in range(burst):
                channel.put(i)
            # one front re-queue per burst (the replay path)
            channel.put_front(-1)
            yield sim.timeout(10.0)

    def consumer():
        # receive-loop idiom: block for the first item of a burst, then
        # drain the backlog in a batch — the framework operates on queue
        # contents directly (§5.3), it does not pay a rendezvous per packet
        while True:
            yield channel.get()
            consumed[0] += 1
            while True:
                item = channel.try_get()
                if item is None:
                    break
                consumed[0] += 1

    # a fleet of parked getters on a second channel: the seed also popped
    # waiting getters with list.pop(0)
    fan = engine.Channel(sim, name="fan")

    def fan_worker():
        while True:
            yield fan.get()
            consumed[0] += 1

    def fan_feeder():
        for _ in range(bursts):
            for _ in range(getters):
                fan.put(0)
            yield sim.timeout(10.0)

    sim.process(producer())
    sim.process(consumer())
    for _ in range(getters):
        sim.process(fan_worker())
    sim.process(fan_feeder())
    start = time.perf_counter()
    sim.run(until=bursts * 10.0 + 1.0)
    wall = time.perf_counter() - start
    assert consumed[0] == bursts * (burst + 1) + bursts * getters
    return consumed[0], wall


def timer_storm(
    engine,
    background: int = 40_000,
    timers: int = 400,
    iters: int = 60,
    fanout: int = 8,
) -> Tuple[int, float]:
    """Zero-delay delivery fanouts racing a heap full of armed timers.

    ``background`` timers stay armed for the whole run (retransmit timers
    at high load); ``timers`` periodic timers each fire ``iters`` times,
    and every fire succeeds an event with ``fanout`` parked waiters, each
    of which runs one follow-up microtask (the ack/requeue hop).
    """
    sim = engine.Simulator()
    for b in range(background):
        sim.schedule(10_000.0 + b * 0.01, _noop)
    fired = [0]
    delivered = [0]

    def finish():
        delivered[0] += 1

    def deliver(event):
        sim.schedule(0.0, finish)

    total = timers * (iters - 1)

    def make_timer(delay):
        def fire():
            fired[0] += 1
            if fired[0] <= total:
                event = engine.Event(sim, name="fan")
                for _ in range(fanout):
                    event.add_callback(deliver)
                sim.schedule(0.0, event.succeed, None)
                sim.schedule(delay, fire)

        return fire

    for k in range(timers):
        delay = 1.0 + (k % 7) * 0.5
        sim.schedule(delay, make_timer(delay))
    start = time.perf_counter()
    sim.run(until=9_999.0)  # stop before the background fleet fires
    wall = time.perf_counter() - start
    assert fired[0] == total + timers
    return fired[0] + delivered[0], wall


def _noop() -> None:
    return None


def rpc_pingpong(engine, clients: int = 32, calls: int = 200) -> Tuple[int, float]:
    """Request/response rendezvous over a channel + per-call waiter event,
    with a 14us simulated RTT — the skeleton of every store access."""
    sim = engine.Simulator()
    requests = engine.Channel(sim, name="rpc-req")
    done = [0]

    def server():
        while True:
            payload, reply = yield requests.get()
            yield sim.timeout(14.0)  # service + return latency
            reply.succeed(payload)

    def client(k: int):
        for i in range(calls):
            reply = engine.Event(sim, name="reply")
            requests.put((i, reply))
            yield reply
            done[0] += 1

    sim.process(server())
    for k in range(clients):
        sim.process(client(k))
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    assert done[0] == clients * calls
    return done[0], wall


def chain_pipeline(
    engine, packets: int = 3000, flows: int = 50, fastpath: bool = False
) -> Tuple[int, float]:
    """The full CHC dataplane on the *installed* engine (new only): the
    4-NF all-declarative chain (firewall -> NAT -> rate limiter -> LB)
    with store, root, NICs and duplicate filters.

    ``fastpath`` toggles the batched match-action fast path (§6 /
    DESIGN.md §10); ``run_comparison`` records both modes and their ratio,
    which is the PR-6 acceptance metric. Flows use one source host each so
    egress is byte-identical between modes (a shared rate-limiter bucket
    would make the admit decision depend on cross-flow probe order, which
    batching legally reorders — see DESIGN.md §10.4)."""
    from repro.core.chain_runtime import ChainRuntime, RuntimeParams
    from repro.core.dag import LogicalChain
    from repro.nfs.firewall import Firewall
    from repro.nfs.load_balancer import LoadBalancer
    from repro.nfs.nat import Nat
    from repro.nfs.rate_limiter import RateLimiter
    from repro.traffic.packet import ACK, SYN, FiveTuple, Packet

    sim = engine.Simulator()
    chain = LogicalChain("bench")
    chain.add_vertex("firewall", Firewall, entry=True)
    chain.add_vertex("nat", Nat)
    chain.add_vertex("ratelimiter", RateLimiter)
    chain.add_vertex("lb", LoadBalancer)
    chain.add_edge("firewall", "nat")
    chain.add_edge("nat", "ratelimiter")
    chain.add_edge("ratelimiter", "lb")
    runtime = ChainRuntime(
        sim, chain, params=RuntimeParams(fastpath_enabled=fastpath)
    )
    started: set = set()

    def source():
        for i in range(packets):
            f = i % flows
            ft = FiveTuple(f"10.0.{f % 4}.{1 + f}", "52.0.0.1", 5000 + f, 80, 6)
            flags = ACK if f in started else SYN
            started.add(f)
            runtime.inject(Packet(ft, payload=f"p{i}", flags=flags))
            yield sim.timeout(0.8)

    sim.process(source())
    start = time.perf_counter()
    sim.run(until=10_000_000)
    wall = time.perf_counter() - start
    processed = runtime.egress_meter.packets
    assert processed == packets, f"egress {processed} != injected {packets}"
    events = sim.events_processed + sim.microtasks_processed
    return events, wall


SCENARIOS: Dict[str, Callable] = {
    "channel_churn": channel_churn,
    "timer_storm": timer_storm,
    "rpc_pingpong": rpc_pingpong,
}

SMOKE_KWARGS: Dict[str, Dict[str, int]] = {
    "channel_churn": dict(bursts=4, burst=1024, getters=32),
    "timer_storm": dict(background=4000, timers=60, iters=20, fanout=4),
    "rpc_pingpong": dict(clients=8, calls=40),
    "chain_pipeline": dict(packets=200),
}


def _load_legacy():
    import importlib.util
    import os

    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "legacy_engine.py")
    spec = importlib.util.spec_from_file_location("legacy_engine", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _compare(fn: Callable, legacy, new_engine, kwargs: Dict, repeats: int) -> Tuple[float, float, int]:
    """Interleave legacy/new runs; best-of-``repeats`` run-phase wall each.

    Interleaving (L,N,L,N,...) instead of timing one engine then the other
    keeps slow-machine noise from landing entirely on one side.
    """
    best_legacy = best_new = float("inf")
    units = 0
    for _ in range(repeats):
        units, wall = fn(legacy, **kwargs)
        if wall < best_legacy:
            best_legacy = wall
        units, wall = fn(new_engine, **kwargs)
        if wall < best_new:
            best_new = wall
    return best_legacy, best_new, units


def _scenario_row(name: str, smoke: bool, repeats: int) -> Dict[str, Any]:
    """One legacy-vs-new scenario row, self-contained for pool workers."""
    import repro.simnet.engine as new_engine

    legacy = _load_legacy()
    kwargs = SMOKE_KWARGS[name] if smoke else {}
    legacy_s, new_s, units = _compare(
        SCENARIOS[name], legacy, new_engine, kwargs, repeats
    )
    return {
        "units": units,
        "legacy_wall_s": round(legacy_s, 4),
        "new_wall_s": round(new_s, 4),
        "legacy_units_per_s": round(units / legacy_s),
        "new_units_per_s": round(units / new_s),
        "speedup": round(legacy_s / new_s, 2),
    }


def _chain_pipeline_row(smoke: bool, repeats: int) -> Dict[str, Any]:
    """Full pipeline: new engine only (ChainRuntime is built on it).

    Interleave fastpath-off/on repeats (same reasoning as _compare) and
    record both modes; the off/on wall ratio is the PR-6 acceptance
    metric and — being same-machine, same-run — is stable across hosts
    in a way raw wall seconds are not.
    """
    import repro.simnet.engine as new_engine

    kwargs = SMOKE_KWARGS["chain_pipeline"] if smoke else {}
    best_off = best_on = float("inf")
    events_off = events_on = 0
    for _ in range(repeats):
        events_off, wall = chain_pipeline(new_engine, fastpath=False, **kwargs)
        if wall < best_off:
            best_off = wall
        events_on, wall = chain_pipeline(new_engine, fastpath=True, **kwargs)
        if wall < best_on:
            best_on = wall
    return {
        "engine_events": events_off,
        "new_wall_s": round(best_off, 4),
        "events_per_s": round(events_off / best_off),
        "fastpath": {
            "engine_events": events_on,
            "wall_s": round(best_on, 4),
            "events_per_s": round(events_on / best_on),
            "event_ratio": round(events_off / events_on, 2),
        },
        "speedup": round(best_off / best_on, 2),
    }


def comparison_work(item: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Pool work function: one scenario's full measurement.

    Each scenario's legacy/new (or off/on) repeats stay interleaved
    inside ONE worker, so the recorded ratios remain same-process
    comparisons even when scenarios fan out across cores. Raw wall
    seconds do pick up cross-worker scheduling noise under ``--jobs >
    1`` — use parallel mode for sweep breadth, serial for headline
    numbers (see ``tools/perf_report.py --jobs``).
    """
    name = item["name"]
    if name == "chain_pipeline":
        return (name, _chain_pipeline_row(item["smoke"], item["repeats"]))
    return (name, _scenario_row(name, item["smoke"], item["repeats"]))


def run_comparison(
    smoke: bool = False, repeats: int = 5, jobs: Any = 1
) -> Dict[str, Any]:
    """Run every scenario on both engines; returns the BENCH_engine payload.

    ``jobs > 1`` fans the scenarios across processes via
    :class:`repro.parallel.CampaignPool`; rows merge in the fixed
    scenario order, so the payload layout is identical either way.
    """
    names = list(SCENARIOS) + ["chain_pipeline"]
    items = [{"name": name, "smoke": smoke, "repeats": repeats} for name in names]
    from repro.parallel import CampaignPool

    pool = CampaignPool(jobs=jobs)
    pooled = pool.map(comparison_work, items)
    if pooled.infra_failures:
        details = "; ".join(f.detail for f in pooled.infra_failures)
        raise RuntimeError(f"benchmark worker(s) failed: {details}")
    results: Dict[str, Any] = {"scenarios": {}}
    for name, row in pooled.values():  # submission order == `names` order
        results["scenarios"][name] = row
    return results


# ---------------------------------------------------------------------------
# pytest entry points (smoke sizes so CI stays fast)
# ---------------------------------------------------------------------------


def test_engine_micro_smoke():
    """CI gate: the overhaul must beat the seed engine on the two scenarios
    named in the acceptance criteria, at any scale."""
    results = run_comparison(smoke=True, repeats=3)
    churn = results["scenarios"]["channel_churn"]["speedup"]
    storm = results["scenarios"]["timer_storm"]["speedup"]
    # smoke sizes keep queues and the heap shallow, which understates the
    # win; the full-size run recorded in BENCH_engine.json shows the >=2x
    # acceptance ratios.
    assert churn > 1.0, f"channel churn regressed vs seed engine ({churn}x)"
    assert storm > 1.0, f"timer storm regressed vs seed engine ({storm}x)"
    # the engine-event ratio is deterministic (no wall-clock noise), so it
    # can be gated even at smoke sizes: the fast path must strictly reduce
    # simulator work on the declarative chain.
    pipeline = results["scenarios"]["chain_pipeline"]
    ratio = pipeline["fastpath"]["event_ratio"]
    assert ratio > 1.5, f"fast path event reduction regressed ({ratio}x)"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes (CI)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes ('auto' = cpu count); >1 trades wall-second "
        "fidelity for sweep wall-clock — ratios stay same-process",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    results = run_comparison(smoke=args.smoke, repeats=args.repeats, jobs=args.jobs)
    json.dump(results, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
