"""Figure 10 — per-instance throughput under the externalization models.

Paper: max per-NF throughput for traditional NFs ~9.5Gbps. Under EO the
load balancer and NAT drop to ~0.5Gbps (every packet blocks on store
RTTs); the portscan and trojan detectors are unaffected. EO+C+NA restores
~9.43Gbps for all NFs.
"""

import pytest

from conftest import run_once
from repro.bench.calibration import bench_scale
from repro.bench.report import ResultTable, write_result
from repro.bench.scenarios import run_single_nf
from repro.nfs import LoadBalancer, Nat, PortscanDetector, TrojanDetector
from repro.traffic import make_trace2

NFS = {
    "nat": Nat,
    "portscan": PortscanDetector,
    "trojan": TrojanDetector,
    "lb": LoadBalancer,
}
MODELS = ("T", "EO", "EO+C+NA")

PAPER_GBPS = {
    ("nat", "T"): 9.5, ("nat", "EO"): 0.5, ("nat", "EO+C+NA"): 9.43,
    ("lb", "T"): 9.5, ("lb", "EO"): 0.5, ("lb", "EO+C+NA"): 9.43,
    ("portscan", "T"): 9.5, ("portscan", "EO"): 9.4, ("portscan", "EO+C+NA"): 9.4,
    ("trojan", "T"): 9.5, ("trojan", "EO"): 9.4, ("trojan", "EO+C+NA"): 9.4,
}


def goodput(result):
    """Gbps over the instance's actual processing span."""
    meter = (result.harness or result.runtime.instances_of("nf")[0]).throughput
    if meter.first_at is None or meter.last_at is None or meter.last_at <= meter.first_at:
        return 0.0
    return meter.bits / (meter.last_at - meter.first_at) / 1000.0


def test_fig10_throughput(benchmark):
    trace = make_trace2(scale=bench_scale())

    def experiment():
        results = {}
        for nf_name, factory in NFS.items():
            for model in MODELS:
                # open-loop at full line rate: the NF drains as fast as it can
                results[(nf_name, model)] = run_single_nf(
                    factory, model, trace, load_fraction=1.0
                )
        return results

    results = run_once(benchmark, experiment)

    table = ResultTable(
        title="Figure 10 — per-instance throughput (Gbps)",
        headers=["NF", "T", "EO", "EO+C+NA", "paper (T/EO/NA)"],
    )
    measured = {}
    for nf_name in NFS:
        row = [nf_name]
        for model in MODELS:
            gbps = goodput(results[(nf_name, model)])
            measured[(nf_name, model)] = gbps
            row.append(f"{gbps:.2f}")
        row.append(
            f"{PAPER_GBPS[(nf_name, 'T')]}/{PAPER_GBPS[(nf_name, 'EO')]}/"
            f"{PAPER_GBPS[(nf_name, 'EO+C+NA')]}"
        )
        table.add(*row)
    table.note("shape: EO collapses NAT/LB an order of magnitude; detectors unaffected")
    write_result("fig10_throughput", [table])

    for nf_name in ("nat", "lb"):
        assert measured[(nf_name, "T")] > 8.5
        assert measured[(nf_name, "EO")] < measured[(nf_name, "T")] / 3
        assert measured[(nf_name, "EO+C+NA")] > 8.5
    for nf_name in ("portscan", "trojan"):
        assert measured[(nf_name, "EO")] > 8.0
