"""Figure 13 / R6 — per-packet processing time through an NF failover.

Paper: a NAT instance fails; a failover container takes over (assumed to
launch immediately — what is measured is CHC's state recovery: ownership
takeover, packet-log replay, duplicate-suppressed catch-up). Average
per-packet time (500us windows) spikes to >4ms during recovery and
returns to normal within 4.5ms / 5.6ms at 30% / 50% load.
"""

from conftest import run_once
from repro.bench.calibration import bench_scale
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.core.recovery import fail_over_nf
from repro.nfs import Nat
from repro.simnet.engine import Simulator
from repro.traffic import ReplaySource
from repro.traffic.packet import ACK, FIN, FiveTuple, Packet, SYN

PAPER = {"spike_ms": 4.0, 0.3: 4.5, 0.5: 5.6}
WINDOW_US = 500.0
N_FLOWS = 800
ROUNDS = 18


def fig13_packets():
    """800 concurrent long-lived connections, round-robin interleaved.

    Failover cost scales with the connections that *straddle* the crash:
    the replacement must re-warm each one's cached per-flow state from the
    store. Maximal concurrency puts every connection in that set, like the
    paper's campus trace (hundreds of live connections at any instant).
    """
    packets = []
    for round_ in range(ROUNDS):
        for flow in range(N_FLOWS):
            ft = FiveTuple(
                f"10.2.{flow // 250}.{flow % 250 + 1}", "52.0.0.9",
                15_000 + flow, 80,
            )
            if round_ == 0:
                packets.append(Packet(ft, flags=SYN, size_bytes=60))
            elif round_ == ROUNDS - 1:
                packets.append(Packet(ft, flags=FIN | ACK, size_bytes=60))
            else:
                packets.append(Packet(ft, flags=ACK, size_bytes=1434))
    return packets


def run_arm(load, packets):
    sim = Simulator()
    chain = LogicalChain("fig13")
    chain.add_vertex("nat", Nat, entry=True)
    runtime = ChainRuntime(sim, chain)
    # crash 40% through the replay: every connection straddles it
    crash_at = sum(p.size_bits for p in packets) / (load * 10_000) * 0.4
    outcome = {}

    def crash():
        yield sim.timeout(crash_at)
        runtime.instances["nat-0"].fail()
        result = yield from fail_over_nf(runtime, "nat-0")
        outcome["recovery"] = result

    sim.process(crash())
    ReplaySource(sim, [p.copy() for p in packets], runtime.inject, load_fraction=load)
    sim.run(until=600_000_000)

    replacement = runtime.instances[outcome["recovery"].new_id]
    windows = replacement.sojourn.windowed_mean(WINDOW_US)
    spike = max(v for _t, v in windows) if windows else 0.0
    # recovery complete when windowed latency returns under 5x the base
    base = sorted(v for _t, v in windows)[len(windows) // 2] if windows else 0.0
    settle_at = crash_at
    for t, v in windows:
        if v > max(5 * base, 50.0):
            settle_at = t + WINDOW_US
    return {
        "spike_us": spike,
        "settle_ms": (settle_at - crash_at) / 1000.0,
        "replayed": outcome["recovery"].replayed,
        "windows": windows,
    }


def test_fig13_nf_failover_latency(benchmark):
    packets = fig13_packets()

    def experiment():
        return {load: run_arm(load, packets) for load in (0.3, 0.5)}

    results = run_once(benchmark, experiment)

    table = ResultTable(
        title="Figure 13 — packet time through NAT failover (500us windows)",
        headers=["load", "peak window (ms)", "settled after (ms)",
                 "replayed pkts", "paper settle (ms)"],
    )
    for load in (0.3, 0.5):
        r = results[load]
        table.add(
            f"{int(load*100)}%",
            f"{r['spike_us'] / 1000:.2f}",
            f"{r['settle_ms']:.2f}",
            r["replayed"],
            PAPER[load],
        )
    table.note("paper: spike >4ms; normal again after 4.5ms (30%) / 5.6ms (50%)")
    write_result("fig13_nf_recovery", [table])

    for load in (0.3, 0.5):
        assert results[load]["spike_us"] > 100.0      # visible disruption
        assert results[load]["settle_ms"] < 60.0      # and it heals
        assert results[load]["replayed"] > 0
    # the disruption grows with load, as in the paper
    assert results[0.5]["spike_us"] > results[0.3]["spike_us"]
    assert results[0.5]["settle_ms"] >= results[0.3]["settle_ms"]
