"""Figure 8 — per-packet processing time under the externalization models.

Paper: 5/25/50/75/95th percentile packet processing times for NAT,
portscan detector, trojan detector and load balancer under T (traditional)
/ EO / EO+C / EO+C+NA. Key results being reproduced:

* NAT: T median 2.07us; EO ~ +190us (3 store RTTs/packet); caching removes
  the port-map read; no-ACK-wait brings the median back to ~2.6us.
* load balancer: same pattern one RTT smaller (2 RTTs under EO).
* portscan/trojan detectors: no noticeable impact under any model (they
  do not update state on every packet).
"""

import pytest

from conftest import run_once
from repro.bench.calibration import MODELS, bench_scale
from repro.bench.report import ResultTable, write_result
from repro.bench.scenarios import run_single_nf
from repro.nfs import LoadBalancer, Nat, PortscanDetector, TrojanDetector
from repro.traffic import make_trace2

NFS = {
    "nat": Nat,
    "portscan": PortscanDetector,
    "trojan": TrojanDetector,
    "lb": LoadBalancer,
}

PAPER_MEDIANS_US = {
    # from §7.1's prose: traditional medians and the per-model deltas
    ("nat", "T"): 2.07,
    ("nat", "EO"): 192.74,
    ("nat", "EO+C"): 80.76,
    ("nat", "EO+C+NA"): 2.61,
    ("lb", "T"): 2.25,
    ("lb", "EO"): 112.12,
    ("lb", "EO+C"): 56.18,
    ("lb", "EO+C+NA"): 2.27,
}


@pytest.mark.parametrize("nf_name", list(NFS))
def test_fig08_processing_time_percentiles(benchmark, nf_name):
    trace = make_trace2(scale=bench_scale())

    def experiment():
        return {
            model: run_single_nf(NFS[nf_name], model, trace, load_fraction=0.5)
            for model in MODELS
        }

    results = run_once(benchmark, experiment)

    table = ResultTable(
        title=f"Figure 8 — {nf_name}: packet processing time (us)",
        headers=["model", "p5", "p25", "p50", "p75", "p95", "paper p50"],
    )
    for model in MODELS:
        summary = results[model].recorder.summary()
        paper = PAPER_MEDIANS_US.get((nf_name, model))
        table.add(
            model,
            f"{summary[5.0]:.2f}",
            f"{summary[25.0]:.2f}",
            f"{summary[50.0]:.2f}",
            f"{summary[75.0]:.2f}",
            f"{summary[95.0]:.2f}",
            f"{paper:.2f}" if paper else "~T" if model != "EO" else "~T",
        )
    table.note(
        "shape check: EO >> EO+C >> EO+C+NA ~= T for NAT/LB; "
        "scan/trojan unaffected (no per-packet state updates)"
    )
    write_result(f"fig08_{nf_name}", [table])

    medians = {model: results[model].recorder.median() for model in MODELS}
    if nf_name in ("nat", "lb"):
        assert medians["EO"] > 10 * medians["T"]
        assert medians["EO"] > medians["EO+C"] > medians["EO+C+NA"]
        assert medians["EO+C+NA"] < medians["T"] + 1.0  # small overhead
    else:
        for model in MODELS:
            assert medians[model] < medians["T"] + 1.5
