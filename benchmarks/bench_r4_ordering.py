"""§7.3 R4 — chain-wide ordering: trojan detection accuracy.

Paper: with 11 trojan signatures injected into the trace and the Figure 2
chain's scrubbers randomly delayed 50-100us per packet (workloads W1-W3 =
1/2/3 slowed upstream NFs), CHC's logical clocks let the detector find
all 11 signatures; OpenNF (no chain-wide ordering) misses 7, 10 and 11
across W1-W3.
"""

import random

from conftest import run_once
from repro.bench.report import ResultTable, write_result
from repro.bench.scenarios import build_trojan_chain
from repro.simnet.engine import Simulator
from repro.traffic.packet import PORT_FTP, PORT_IRC, PORT_SSH, FiveTuple, Packet
from repro.traffic.trace import make_trace2
from repro.traffic.trojan import inject_trojan_signatures
from repro.traffic.workload import ReplaySource

N_SIGNATURES = 11
WORKLOADS = {"W1": [PORT_FTP], "W2": [PORT_FTP, PORT_SSH],
             "W3": [PORT_FTP, PORT_SSH, PORT_IRC]}
PAPER_MISSES = {"W1": 7, "W2": 10, "W3": 11}


def run_arm(use_clocks, delayed_ports, seed=11):
    sim = Simulator()
    runtime = build_trojan_chain(sim, use_clocks=use_clocks)
    base = make_trace2(scale=0.003, seed=seed)
    scenario = inject_trojan_signatures(
        base, n_signatures=N_SIGNATURES, n_decoys=6, seed=seed, separation=30
    )
    rng = random.Random(seed)
    splitter = runtime.splitter("scrubber")
    slowed = set()
    for port in delayed_ports:
        probe = Packet(FiveTuple("172.16.0.1", "52.99.0.1", 30000, port))
        slowed.add(splitter.route(probe)[0])
    for instance_id in slowed:
        runtime.instances[instance_id].extra_delay = (
            lambda r=rng: 50.0 + r.random() * 50.0
        )
    ReplaySource(sim, scenario.trace.packets, runtime.inject, load_fraction=0.5)
    sim.run(until=600_000_000)
    detector = runtime.instances_of("trojan")[0].nf
    found = len(set(scenario.infected_hosts) & set(detector.detections))
    false_pos = len(set(scenario.decoy_hosts) & set(detector.detections))
    return found, false_pos


def test_r4_chain_wide_ordering(benchmark):
    def experiment():
        rows = {}
        for workload, ports in WORKLOADS.items():
            rows[workload] = {
                "chc": run_arm(True, ports),
                "no_clocks": run_arm(False, ports),
            }
        return rows

    rows = run_once(benchmark, experiment)

    table = ResultTable(
        title=f"R4 — trojan signatures detected ({N_SIGNATURES} injected)",
        headers=["workload", "CHC found", "CHC false+", "no-clocks found",
                 "no-clocks false+", "paper (OpenNF found)"],
    )
    for workload in WORKLOADS:
        chc_found, chc_fp = rows[workload]["chc"]
        arr_found, arr_fp = rows[workload]["no_clocks"]
        table.add(
            workload, chc_found, chc_fp, arr_found, arr_fp,
            N_SIGNATURES - PAPER_MISSES[workload],
        )
    table.note("paper: CHC finds 11/11 under all workloads; OpenNF misses 7/10/11")
    write_result("r4_ordering", [table])

    for workload in WORKLOADS:
        assert rows[workload]["chc"][0] == N_SIGNATURES  # all found
        assert rows[workload]["chc"][1] == 0             # no decoys flagged
        assert rows[workload]["no_clocks"][0] < N_SIGNATURES  # misses some
