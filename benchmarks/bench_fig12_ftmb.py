"""Figure 12 / R1 — state availability: CHC vs FTMB checkpointing.

Paper: FTMB's periodic checkpoints (emulated as a 5000us stall every
200ms, per FTMB's own Figure 6) buffer incoming packets; at 50% load its
75th-percentile per-packet latency is 25.5us — 6X worse than CHC's
(median 2.7X worse). CHC never checkpoints the NF: state is continuously
externalized, so its latency profile is flat.

Both arms run the same NAT, thread model and load; only the
fault-tolerance discipline differs. Single-worker instances keep the
utilisation meaningfully high so the stall's backlog is visible in the
distribution, as in the paper's testbed.
"""

import numpy as np

from conftest import run_once
from repro.baselines.ftmb import FtmbHarness
from repro.bench.calibration import bench_scale
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.nfs import Nat
from repro.simnet.engine import Simulator
from repro.traffic import ReplaySource, make_trace2

PAPER = {"p75_ratio": 6.0, "median_ratio": 2.7, "ftmb_p75_us": 25.5}
LOAD = 0.3
N_WORKERS = 2
REPEATS = 8     # cover several checkpoint intervals
# time-compressed 4x relative to FTMB's 5000us/200ms, duty cycle preserved
CHECKPOINT_INTERVAL_US = 50_000.0
CHECKPOINT_STALL_US = 1_250.0


def test_fig12_fault_tolerance_latency(benchmark):
    base = make_trace2(scale=bench_scale())
    packets = [p.copy() for _ in range(REPEATS) for p in base.packets]

    def experiment():
        chc_sim = Simulator()
        chain = LogicalChain("fig12")
        chain.add_vertex("nat", Nat, entry=True)
        chc = ChainRuntime(chc_sim, chain, params=RuntimeParams(n_workers=N_WORKERS))
        ReplaySource(chc_sim, packets, chc.inject, load_fraction=LOAD)
        chc_sim.run(until=600_000_000)
        chc_values = chc.instances_of("nat")[0].sojourn.values

        ftmb_sim = Simulator()
        ftmb = FtmbHarness(
            ftmb_sim,
            Nat(),
            n_workers=N_WORKERS,
            checkpoint_interval_us=CHECKPOINT_INTERVAL_US,
            checkpoint_stall_us=CHECKPOINT_STALL_US,
        )
        ReplaySource(ftmb_sim, [p.copy() for p in packets], ftmb.inject, load_fraction=LOAD)
        ftmb_sim.run(until=600_000_000)
        return chc_values, ftmb.sojourn.values, ftmb.checkpoints_taken

    chc_values, ftmb_values, checkpoints = run_once(benchmark, experiment)

    table = ResultTable(
        title=f"Figure 12 — per-packet latency at {int(LOAD*100)}% load: CHC vs FTMB",
        headers=["system", "median", "p75", "p95", "p99"],
    )
    for name, values in (("CHC", chc_values), ("FTMB", ftmb_values)):
        table.add(
            name,
            f"{np.median(values):.1f}",
            f"{np.percentile(values, 75):.1f}",
            f"{np.percentile(values, 95):.1f}",
            f"{np.percentile(values, 99):.1f}",
        )
    chc_p75 = float(np.percentile(chc_values, 75))
    ftmb_p75 = float(np.percentile(ftmb_values, 75))
    table.add("p75 ratio", "-", f"{ftmb_p75 / chc_p75:.1f}x", "-", "-")
    table.note(
        f"FTMB took {checkpoints} checkpoints "
        f"({CHECKPOINT_STALL_US:.0f}us stall per {CHECKPOINT_INTERVAL_US/1000:.0f}ms)"
    )
    table.note(f"paper: FTMB p75 25.5us = 6X CHC; median 2.7X")
    write_result("fig12_ftmb", [table])

    assert ftmb_p75 > 2 * chc_p75
    assert float(np.percentile(ftmb_values, 99)) > 100.0
