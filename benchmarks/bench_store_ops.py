"""§7.1 "Datastore performance" — raw operation throughput.

Paper: with 128-bit keys and 64-bit values over 4 threads, a single store
instance sustains ~5.1M ops/s (increment 5.1M, get 5.2M, set 5.1M).

This is the one benchmark measured in real wall-clock time: we drive the
store's operation-apply path directly (no simulated network) and report
honest Python ops/s. A C++ store is ~50-100X faster per op; the *shape* —
increment ~= get ~= set, linear scaling across instances because no key
crosses instances — is what carries over, and the simulated experiments
use the store's calibrated service time rather than this number.
"""

import pytest

from repro.bench.report import ResultTable, write_result
from repro.simnet.engine import Simulator
from repro.simnet.network import Link, Network
from repro.store.datastore import DatastoreInstance
from repro.store.protocol import OpRequest, ReadRequest

N_KEYS = 100_000  # 100k unique entries per thread's share (paper's setup)


@pytest.fixture(scope="module")
def store():
    sim = Simulator()
    network = Network(sim, Link(latency_us=1.0))
    instance = DatastoreInstance(sim, network, "bench-store", n_threads=4)
    # preload 100k 128-bit-ish keys with 64-bit-ish values
    for index in range(N_KEYS):
        instance._data[f"k{index:016x}"] = index
    return instance


@pytest.mark.parametrize("op", ["incr", "set", "get"])
def test_store_ops_per_second(benchmark, store, op):
    keys = [f"k{index % N_KEYS:016x}" for index in range(4096)]
    requests = [
        OpRequest(key=key, op=op, args=(1,) if op == "incr" else (7,) if op == "set" else (),
                  instance="bench", clock=0, log_update=False)
        for key in keys
    ]
    apply_operation = store.apply_operation

    def run_batch():
        for request in requests:
            apply_operation(request)

    benchmark(run_batch)
    ops_per_second = len(requests) / benchmark.stats.stats.mean
    table = ResultTable(
        title=f"Datastore micro-benchmark — {op}",
        headers=["metric", "value"],
    )
    table.add("ops/s (this Python store)", f"{ops_per_second:,.0f}")
    table.add("paper (C++ store)", "~5,100,000 ops/s")
    table.note("shape: incr ~= get ~= set; one thread per key, no locks")
    write_result(f"store_ops_{op}", [table])
    assert ops_per_second > 50_000  # sanity: not pathologically slow
