"""§7.3 R6 — root failover cost.

Paper: "Recovering a root requires just reading the last updated logical
clock from the datastore and flow mapping from downstream NFs. This
takes < 41.2us."
"""

from conftest import run_once
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.core.recovery import fail_over_root
from repro.nfs import Nat
from repro.simnet.engine import Simulator
from repro.traffic import ReplaySource, make_trace2

PAPER_US = 41.2


def test_r6_root_recovery_time(benchmark):
    def experiment():
        sim = Simulator()
        chain = LogicalChain("r6root")
        chain.add_vertex("nat", Nat, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        trace = make_trace2(scale=0.0005)
        outcome = {}

        def crash():
            yield sim.timeout(4_000.0)
            runtime.root.fail()
            result = yield from fail_over_root(runtime)
            outcome["recovery"] = result

        sim.process(crash())
        ReplaySource(sim, trace.packets, runtime.inject, load_fraction=0.3)
        sim.run(until=300_000_000)
        outcome["runtime"] = runtime
        return outcome

    outcome = run_once(benchmark, experiment)
    recovery = outcome["recovery"]
    runtime = outcome["runtime"]

    table = ResultTable(
        title="R6 — root failover",
        headers=["metric", "measured", "paper"],
    )
    table.add("recovery time (us)", f"{recovery.duration_us:.1f}", f"< {PAPER_US}")
    table.add("clock resumed past", recovery.resumed_sequence, "persisted + n")
    table.add("allocations queried", recovery.allocations, "downstream NFs")
    table.note("packets arriving during recovery are buffered and processed after")
    write_result("r6_root_recovery", [table])

    assert recovery.duration_us < 3 * PAPER_US
    assert runtime.root.stats.injected > 0
