"""§7.3 R2 — cross-instance state transfer: CHC vs OpenNF loss-free move.

Paper: reallocating 4000 flows mid-replay, "CHC's move operation takes
97% or 35X less time (0.071ms vs 2.5ms), because, unlike OpenNF, CHC does
not need to transfer state. It notifies the datastore manager to update
the relevant instance IDs. ... when instances are caching state, they are
required to flush cached state operations before updating instance IDs.
Even then, CHC is 89% better because it flushes only operations."
"""

from conftest import run_once
from repro.baselines.opennf import opennf_move
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.core.handover import move_flows
from repro.nfs import Nat
from repro.simnet.engine import Simulator
from repro.traffic.packet import FiveTuple, Packet

N_FLOWS = 4_000
PAPER = {"chc_ms": 0.071, "opennf_ms": 2.5}


def test_r2_state_move(benchmark):
    def experiment():
        sim = Simulator()
        chain = LogicalChain("r2")
        chain.add_vertex("nat", Nat, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        splitter = runtime.splitter("nat")

        # Establish 4000 flows at the instances (one packet each seeds the
        # per-flow port mapping in cache + store).
        def packet(index):
            return Packet(
                FiveTuple(f"10.1.{index // 250}.{index % 250 + 1}", "52.0.0.9",
                          10_000 + (index % 50_000), 80),
                flags=0x02,
                size_bytes=60,
            )

        def seed():
            for index in range(N_FLOWS):
                runtime.inject(packet(index))
                yield sim.timeout(0.4)

        sim.process(seed())
        sim.run(until=60_000_000)

        # Move every flow currently at nat-0 to nat-1 (live move).
        moved = [
            splitter.key_of(packet(index))
            for index in range(N_FLOWS)
            if splitter.current_instance_for(splitter.key_of(packet(index))) == "nat-0"
        ]

        outcome = {}

        def mover():
            result = yield from move_flows(runtime, "nat", moved, "nat-1")
            outcome["chc"] = result

        sim.process(mover())
        sim.run(until=120_000_000)

        def opennf():
            result = yield from opennf_move(sim, len(moved))
            return result

        outcome["opennf"] = sim.run_process(opennf())
        return outcome, len(moved)

    outcome, n_moved = run_once(benchmark, experiment)
    chc_us = outcome["chc"].duration_us
    onf_us = outcome["opennf"].duration_us

    table = ResultTable(
        title=f"R2 — moving {n_moved} live flows between NAT instances",
        headers=["system", "move time (ms)", "paper (ms)"],
    )
    table.add("CHC (metadata + op flush)", f"{chc_us / 1000:.3f}", PAPER["chc_ms"])
    table.add("OpenNF loss-free (state transfer)", f"{onf_us / 1000:.3f}", PAPER["opennf_ms"])
    table.add("speedup", f"{onf_us / chc_us:.1f}x", "35x")
    write_result("r2_move", [table])

    assert chc_us < onf_us / 5
    assert chc_us < 1_000.0  # sub-millisecond, vs OpenNF's milliseconds
