"""Table 5 / R5 — duplicate suppression during straggler mitigation.

Paper: a straggler NAT (3-10us random extra delay per packet) is cloned;
input is replicated to straggler + clone. Without suppression the
downstream portscan detector sees duplicate packets (13768 / 34351 at
30% / 50% load) and makes duplicate state updates (233 / 545 — spurious
connection setup/teardown events). "No existing framework can detect such
duplicate updates; CHC simply suppresses them."
"""

import random

from conftest import run_once
from repro.bench.calibration import bench_scale
from repro.bench.report import ResultTable, write_result
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.cloning import CloneController
from repro.core.dag import LogicalChain
from repro.nfs import Nat, PortscanDetector
from repro.simnet.engine import Simulator
from repro.traffic import ReplaySource, make_trace2

PAPER = {
    (0.3, "packets"): 13_768, (0.5, "packets"): 34_351,
    (0.3, "updates"): 233, (0.5, "updates"): 545,
}


def run_arm(load, suppress, trace):
    sim = Simulator()
    chain = LogicalChain("tab5")
    chain.add_vertex("nat", Nat, entry=True)
    chain.add_vertex("scan", PortscanDetector)
    chain.add_edge("nat", "scan")
    runtime = ChainRuntime(
        sim, chain,
        params=RuntimeParams(suppress_duplicates=suppress, store_dedup=suppress),
    )
    rng = random.Random(5)
    runtime.instances["nat-0"].extra_delay = lambda: 3.0 + rng.random() * 7.0
    controller = CloneController(runtime)
    state = {}
    trigger_at = len(trace) // 6  # straggler identified early in the run

    def mitigate_mid_run():
        # trigger on packet count, not wall time, so both load levels
        # replicate the same share of the trace
        while runtime.root.stats.injected < trigger_at:
            yield sim.timeout(100.0)
        session = yield from controller.mitigate("nat-0")
        state["session"] = session

    sim.process(mitigate_mid_run())
    ReplaySource(sim, [p.copy() for p in trace.packets], runtime.inject, load_fraction=load)
    sim.run(until=600_000_000)
    detector_instance = runtime.instances_of("scan")[0]
    detector = detector_instance.nf
    return {
        "dup_packets": detector_instance.stats.duplicates_seen,
        "dup_updates": detector.duplicate_conn_events,
        "processed": detector_instance.stats.processed,
    }


def test_tab5_duplicate_suppression(benchmark):
    trace = make_trace2(scale=bench_scale(0.001))

    def experiment():
        rows = {}
        for load in (0.3, 0.5):
            rows[(load, "off")] = run_arm(load, suppress=False, trace=trace)
            rows[(load, "on")] = run_arm(load, suppress=True, trace=trace)
        return rows

    rows = run_once(benchmark, experiment)

    table = ResultTable(
        title="Table 5 — duplicates at the downstream portscan detector",
        headers=["load", "suppression", "dup packets", "dup state updates"],
    )
    for load in (0.3, 0.5):
        off = rows[(load, "off")]
        on = rows[(load, "on")]
        table.add(f"{int(load*100)}%", "off", off["dup_packets"], off["dup_updates"])
        table.add(f"{int(load*100)}%", "CHC", on["dup_packets"], on["dup_updates"])
    table.note(
        "paper (full 6.4M-pkt trace): without suppression 13768/34351 dup "
        "packets and 233/545 dup updates at 30%/50% load; with CHC zero"
    )
    table.note("counts scale with trace length; shape = grows with load, CHC = 0")
    write_result("tab5_duplicates", [table])

    assert rows[(0.3, "off")]["dup_packets"] > 0
    assert rows[(0.5, "off")]["dup_packets"] > 0
    assert rows[(0.5, "off")]["dup_updates"] > 0
    assert rows[(0.3, "on")]["dup_packets"] == 0
    assert rows[(0.5, "on")]["dup_packets"] == 0
    assert rows[(0.3, "on")]["dup_updates"] == 0
    assert rows[(0.5, "on")]["dup_updates"] == 0
