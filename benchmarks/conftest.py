"""Shared benchmark configuration.

Every benchmark in this directory regenerates one table or figure of the
paper's evaluation (§7); see DESIGN.md's experiment index. Results are
printed and persisted under ``benchmarks/results/<experiment>.txt``.

Experiments are simulations: the *simulated* quantities (latency
percentiles, Gbps, recovery times) are the reproduced results, while
pytest-benchmark's wall-clock numbers just record how long each
simulation took to run. Benchmarks therefore run ``rounds=1``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
