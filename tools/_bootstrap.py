"""Shared ``sys.path`` bootstrap for the ``tools/`` scripts.

Every campaign tool used to hand-roll ``sys.path.insert(0, .../src)`` at
import time. That broke two ways: a pool worker *importing* (not
exec'ing) a tool module re-ran the insert with a path computed from the
wrong ``__file__`` context, and an environment with ``repro`` properly
installed had the installed package silently shadowed by the checkout.
This module replaces all of them with one idempotent helper that is a
**no-op whenever ``repro`` is already importable** — installed package,
``PYTHONPATH=src``, or an earlier call — and otherwise prepends the
checkout's ``src/`` exactly once.

Usage (first lines of any ``tools/*.py``)::

    import _bootstrap

    _bootstrap.ensure_repro_importable()

Scripts run as ``python tools/x.py`` find this module because Python
puts the script's directory on ``sys.path``; anything importing a tool
programmatically already has to arrange for ``tools/`` (or ``repro``)
to be importable, which is the same contract as before, minus the
shadowing.
"""

from __future__ import annotations

import importlib.util
import os
import sys

#: Absolute path of the repository checkout this file lives in.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The checkout's package root, used only when ``repro`` is not already
#: importable.
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: The benchmark harness directory (``bench_engine_micro`` et al.).
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")


def ensure_path(directory: str) -> None:
    """Prepend ``directory`` to ``sys.path`` exactly once."""
    if directory not in sys.path:
        sys.path.insert(0, directory)


def ensure_repro_importable() -> None:
    """Make ``repro`` importable; no-op when it already is."""
    if importlib.util.find_spec("repro") is not None:
        return
    ensure_path(SRC_DIR)


def ensure_benchmarks_importable() -> None:
    """Make the ``benchmarks/`` harness modules importable."""
    if importlib.util.find_spec("bench_engine_micro") is not None:
        return
    ensure_path(BENCH_DIR)
