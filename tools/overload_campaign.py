#!/usr/bin/env python
"""Run the overload campaign and record ``BENCH_overload.json``.

Two parts:

* **invariant campaign** — N seeds x the overload scenarios
  (``overload-burst``, ``slow-store``, ``flash-crowd``), each with the
  autoscaler off and on. Every run is checked for shed accounting (no
  silent loss), exactly-once externalization, per-flow ordering, no
  stranded ownership, drained root logs and zero flush give-ups.
* **knee sweep** — goodput / latency / shed rate at steady offered loads
  around nominal capacity, autoscaler off vs on. The off-knee sits near
  1.0x; with the autoscaler the knee moves right because scale-out via
  the Figure-4 handover adds real capacity.

Usage::

    PYTHONPATH=src python tools/overload_campaign.py --seeds 10
    PYTHONPATH=src python tools/overload_campaign.py --seeds 3 \
        --scenarios overload-burst --no-sweep             # CI smoke

Exit status is non-zero if any invariant was violated — the correctness
gate the CI ``overload-smoke`` job enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

SWEEP_MULTIPLIERS = (0.6, 1.0, 1.4, 2.0)


def render(payload: dict) -> str:
    lines = [
        "overload campaign (times in simulated microseconds)",
        f"{'scenario':<16} {'auto':<5} {'runs':>5} {'viol':>5}"
        f" {'goodput':>8} {'shed':>7} {'p95':>9}",
    ]
    for key, row in payload["scenarios"].items():
        lines.append(
            f"{row['scenario']:<16} {str(row['autoscale']).lower():<5}"
            f" {row['runs']:>5} {row['violations']:>5}"
            f" {row['goodput_ratio_mean']:>8} {row['shed_rate_mean']:>7}"
            f" {row.get('sojourn_p95_us_mean', '-'):>9}"
        )
    if payload.get("knee"):
        lines.append("")
        lines.append(f"{'offered':>8} {'auto-off':>9} {'auto-on':>9}")
        by_mult: dict = {}
        for point in payload["knee"]:
            by_mult.setdefault(point["multiplier"], {})[point["autoscale"]] = point
        for mult in sorted(by_mult):
            off = by_mult[mult].get(False, {})
            on = by_mult[mult].get(True, {})
            lines.append(
                f"{mult:>7}x {off.get('goodput_ratio', '-'):>9}"
                f" {on.get('goodput_ratio', '-'):>9}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.chaos.overload import (
        OVERLOAD_SCENARIOS,
        measure_load_point,
        run_overload_scenario,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10, help="seeds per scenario")
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(OVERLOAD_SCENARIOS),
        default=None,
        help="subset of scenarios (default: all)",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the goodput-knee load sweep (faster; CI smoke)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_overload.json"),
        help="output path (default: BENCH_overload.json at the repo root)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the runtime sanitizer suite installed (ownership races,"
        " clock monotonicity, backpressure deadlock cycles raise loudly)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    sanitizer_cm = None
    sanitizer_suite = None
    if args.sanitize:
        from repro.analysis.runtime import sanitized

        sanitizer_cm = sanitized()
        sanitizer_suite = sanitizer_cm.__enter__()

    names = args.scenarios or sorted(OVERLOAD_SCENARIOS)
    t0 = time.time()
    outcomes = []
    for name in names:
        spec = OVERLOAD_SCENARIOS[name]
        for autoscale in (False, True):
            for seed in range(args.seeds):
                outcome = run_overload_scenario(spec, seed, autoscale=autoscale)
                outcomes.append(outcome)
                if not args.quiet:
                    mark = "ok" if outcome.ok else (
                        f"{len(outcome.violations)} VIOLATIONS"
                    )
                    print(
                        f"  {name:<16} auto={str(autoscale).lower():<5}"
                        f" seed={seed:<3} goodput={outcome.goodput_ratio:.3f}"
                        f" {mark}",
                        flush=True,
                    )

    knee = []
    if not args.no_sweep:
        for multiplier in SWEEP_MULTIPLIERS:
            for autoscale in (False, True):
                knee.append(measure_load_point(multiplier, autoscale, seed=0))
                if not args.quiet:
                    point = knee[-1]
                    print(
                        f"  knee x{multiplier} auto={str(autoscale).lower():<5}"
                        f" goodput={point['goodput_ratio']}",
                        flush=True,
                    )
    wall_s = time.time() - t0
    sanitizer_report = None
    if sanitizer_cm is not None:
        sanitizer_report = sanitizer_suite.report()
        sanitizer_cm.__exit__(None, None, None)

    def _mean(values):
        values = [v for v in values if v is not None]
        return round(sum(values) / len(values), 4) if values else None

    per_group: dict = {}
    for outcome in outcomes:
        key = f"{outcome.scenario}/auto={str(outcome.autoscale).lower()}"
        per_group.setdefault(key, []).append(outcome)
    scenarios_payload = {}
    for key, group in sorted(per_group.items()):
        scenarios_payload[key] = {
            "scenario": group[0].scenario,
            "autoscale": group[0].autoscale,
            "runs": len(group),
            "violations": sum(len(o.violations) for o in group),
            "goodput_ratio_mean": _mean([o.goodput_ratio for o in group]),
            "shed_rate_mean": _mean(
                [
                    (sum(o.sheds.values()) / o.injected) if o.injected else 0.0
                    for o in group
                ]
            ),
            "sojourn_p50_us_mean": _mean([o.sojourn_p50_us for o in group]),
            "sojourn_p95_us_mean": _mean([o.sojourn_p95_us for o in group]),
            "stale_reads_total": sum(o.stale_reads for o in group),
            "breaker_opens_total": sum(o.breaker_opens for o in group),
            "store_overload_rejections_total": sum(
                o.store_overload_rejections for o in group
            ),
            "scale_outs_total": sum(
                o.autoscaler["scale_outs"] for o in group if o.autoscaler
            ),
            "scale_ins_total": sum(
                o.autoscaler["scale_ins"] for o in group if o.autoscaler
            ),
        }

    total_violations = sum(len(o.violations) for o in outcomes) + sum(
        len(point["violations"]) for point in knee
    )
    payload = {
        "campaign": {
            "runs": len(outcomes),
            "violations": total_violations,
            "ok": total_violations == 0,
        },
        "scenarios": scenarios_payload,
        "knee": knee,
        "violations": [
            {"scenario": o.scenario, "seed": o.seed, "autoscale": o.autoscale,
             **v.as_dict()}
            for o in outcomes
            for v in o.violations
        ],
        "meta": {
            "benchmark": "overload_campaign",
            "seeds": args.seeds,
            "scenarios": names,
            "sweep_multipliers": [] if args.no_sweep else list(SWEEP_MULTIPLIERS),
            "wall_s": round(wall_s, 1),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }
    if sanitizer_report is not None:
        payload["meta"]["sanitizers"] = sanitizer_report
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(render(payload))
    print(f"\nwrote {args.output} ({len(outcomes)} runs, {wall_s:.1f}s)")
    if total_violations:
        print(f"INVARIANT VIOLATIONS: {total_violations}", file=sys.stderr)
        for violation in payload["violations"]:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
