#!/usr/bin/env python
"""Run the overload campaign and record ``BENCH_overload.json``.

Two parts:

* **invariant campaign** — N seeds x the overload scenarios
  (``overload-burst``, ``slow-store``, ``flash-crowd``), each with the
  autoscaler off and on. Every run is checked for shed accounting (no
  silent loss), exactly-once externalization, per-flow ordering, no
  stranded ownership, drained root logs and zero flush give-ups.
* **knee sweep** — goodput / latency / shed rate at steady offered loads
  around nominal capacity, autoscaler off vs on. The off-knee sits near
  1.0x; with the autoscaler the knee moves right because scale-out via
  the Figure-4 handover adds real capacity.

Usage::

    PYTHONPATH=src python tools/overload_campaign.py --seeds 10 --jobs auto
    PYTHONPATH=src python tools/overload_campaign.py --seeds 3 \
        --scenarios overload-burst --no-sweep --jobs 2    # CI smoke

``--jobs N|auto`` fans the independent runs and knee points across
worker processes (``repro.parallel``, DESIGN.md §11); the payload is
byte-identical to the serial run for any job count, modulo the ``meta``
wall-clock/jobs fields.

Exit status is non-zero if any invariant was violated, any run raised,
or any worker was lost — the correctness gate the CI ``overload-smoke``
job enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import _bootstrap

_bootstrap.ensure_repro_importable()

REPO_ROOT = _bootstrap.REPO_ROOT


def render(payload: dict) -> str:
    lines = [
        "overload campaign (times in simulated microseconds)",
        f"{'scenario':<16} {'auto':<5} {'runs':>5} {'fail':>5} {'viol':>5}"
        f" {'goodput':>8} {'shed':>7} {'p95':>9}",
    ]
    for key, row in payload["scenarios"].items():
        goodput = row["goodput_ratio_mean"]
        shed = row["shed_rate_mean"]
        lines.append(
            f"{row['scenario']:<16} {str(row['autoscale']).lower():<5}"
            f" {row['runs']:>5} {row.get('failed_runs', 0):>5}"
            f" {row['violations']:>5}"
            f" {goodput if goodput is not None else '-':>8}"
            f" {shed if shed is not None else '-':>7}"
            f" {row.get('sojourn_p95_us_mean') or '-':>9}"
        )
    if payload.get("knee"):
        lines.append("")
        lines.append(f"{'offered':>8} {'auto-off':>9} {'auto-on':>9}")
        by_mult: dict = {}
        for point in payload["knee"]:
            by_mult.setdefault(point["multiplier"], {})[point["autoscale"]] = point
        for mult in sorted(by_mult):
            off = by_mult[mult].get(False, {})
            on = by_mult[mult].get(True, {})
            lines.append(
                f"{mult:>7}x {off.get('goodput_ratio', '-'):>9}"
                f" {on.get('goodput_ratio', '-'):>9}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.chaos.overload import (
        OVERLOAD_SCENARIOS,
        SWEEP_MULTIPLIERS,
        aggregate_overload_payload,
        run_overload_campaign,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10, help="seeds per scenario")
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(OVERLOAD_SCENARIOS),
        default=None,
        help="subset of scenarios (default: all)",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the goodput-knee load sweep (faster; CI smoke)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_overload.json"),
        help="output path (default: BENCH_overload.json at the repo root)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the runtime sanitizer suite installed (ownership races,"
        " clock monotonicity, backpressure deadlock cycles raise loudly)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes for the run/knee fan-out"
        " ('auto' = cpu count; default 1 = serial)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-run wall budget in seconds; a hung run is recorded as an"
        " infra failure instead of wedging the campaign",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="requeue budget for runs lost to a worker crash (default 1)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    def progress(kind, value) -> None:
        if args.quiet:
            return
        if kind == "run":
            mark = "ok" if value.ok else f"{len(value.violations)} VIOLATIONS"
            print(
                f"  {value.scenario:<16} auto={str(value.autoscale).lower():<5}"
                f" seed={value.seed:<3} goodput={value.goodput_ratio:.3f}"
                f" {mark}",
                flush=True,
            )
        else:
            print(
                f"  knee x{value['multiplier']}"
                f" auto={str(value['autoscale']).lower():<5}"
                f" goodput={value['goodput_ratio']}",
                flush=True,
            )

    t0 = time.perf_counter()
    result = run_overload_campaign(
        range(args.seeds),
        scenario_names=args.scenarios,
        sweep=not args.no_sweep,
        progress=progress,
        jobs=args.jobs,
        timeout_s=args.run_timeout,
        retries=args.retries,
        sanitize=args.sanitize,
    )
    wall_s = time.perf_counter() - t0

    payload = aggregate_overload_payload(result)
    payload["meta"] = {
        "benchmark": "overload_campaign",
        "seeds": args.seeds,
        "scenarios": args.scenarios or sorted(OVERLOAD_SCENARIOS),
        "sweep_multipliers": [] if args.no_sweep else list(SWEEP_MULTIPLIERS),
        "wall_s": round(wall_s, 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if result.pool_stats is not None:
        payload["meta"]["jobs"] = result.pool_stats["jobs"]
        payload["meta"]["wall_s_serial_est"] = result.pool_stats[
            "wall_s_serial_est"
        ]
    if result.sanitizers is not None:
        payload["meta"]["sanitizers"] = result.sanitizers
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(render(payload))
    attempted = len(result.outcomes) + len(result.failures)
    print(f"\nwrote {args.output} ({attempted} runs, {wall_s:.1f}s)")
    if not result.ok:
        if result.total_violations:
            print(
                f"INVARIANT VIOLATIONS: {result.total_violations}",
                file=sys.stderr,
            )
            for violation in payload["violations"]:
                print(f"  {violation}", file=sys.stderr)
        if result.failures:
            print(f"FAILED RUNS: {len(result.failures)}", file=sys.stderr)
            for failure in payload["failures"]:
                print(f"  {failure}", file=sys.stderr)
        if result.infra_failures:
            print(
                f"INFRA FAILURES: {len(result.infra_failures)}", file=sys.stderr
            )
            for failure in payload["infra_failures"]:
                print(f"  {failure}", file=sys.stderr)
        return 1
    print("all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
