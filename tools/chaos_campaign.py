#!/usr/bin/env python
"""Run the chaos campaign and record ``BENCH_recovery.json``.

Sweeps N seeds across the named fault scenarios (default: all of
``repro.chaos.SCENARIOS``), checks every run against the correctness
invariants (loss-free state, exactly-once externalization, per-flow
ordering, no stranded ownership, drained root logs, completed
recoveries), and aggregates recovery-time distributions into a
machine-readable report.

Usage::

    PYTHONPATH=src python tools/chaos_campaign.py --seeds 20
    PYTHONPATH=src python tools/chaos_campaign.py --seeds 3 \
        --scenarios nf-crash store-crash root-crash      # CI smoke
    PYTHONPATH=src python tools/chaos_campaign.py --seeds 5 \
        --detection-us 50 --detection-misses 2           # heartbeat detector

Exit status is non-zero if any invariant was violated — this is the
correctness gate the CI ``chaos-smoke`` job enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def render(payload: dict) -> str:
    lines = [
        "chaos campaign (times in simulated microseconds)",
        f"{'scenario':<16} {'runs':>5} {'recov':>6} {'viol':>5}"
        f" {'p5':>8} {'p50':>8} {'p95':>8}",
    ]
    for name, row in payload["scenarios"].items():
        pct = row.get("recovery_us_percentiles", {})
        lines.append(
            f"{name:<16} {row['runs']:>5} {row['recoveries']:>6}"
            f" {row['violations']:>5}"
            f" {pct.get('p5', '-'):>8} {pct.get('p50', '-'):>8}"
            f" {pct.get('p95', '-'):>8}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.chaos import SCENARIOS, DetectionModel, run_campaign

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=20, help="seeds per scenario")
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(SCENARIOS),
        default=None,
        help="subset of scenarios (default: all)",
    )
    parser.add_argument(
        "--detection-us",
        type=float,
        default=0.0,
        help="heartbeat interval in µs (0 = the paper's instantaneous detector)",
    )
    parser.add_argument(
        "--detection-misses",
        type=int,
        default=1,
        help="missed heartbeats before declaring death",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_recovery.json"),
        help="output path (default: BENCH_recovery.json at the repo root)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the runtime sanitizer suite installed (ownership races,"
        " clock monotonicity, backpressure deadlock cycles raise loudly)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    detection = None
    if args.detection_us > 0:
        detection = DetectionModel(
            heartbeat_interval_us=args.detection_us, misses=args.detection_misses
        )

    def progress(outcome):
        if args.quiet:
            return
        mark = "ok" if outcome.ok else f"{len(outcome.violations)} VIOLATIONS"
        print(f"  {outcome.scenario:<16} seed={outcome.seed:<3} {mark}", flush=True)

    t0 = time.time()
    sanitizer_report = None
    if args.sanitize:
        from repro.analysis.runtime import sanitized

        with sanitized() as suite:
            report = run_campaign(
                range(args.seeds),
                scenario_names=args.scenarios,
                detection=detection,
                progress=progress,
            )
            sanitizer_report = suite.report()
    else:
        report = run_campaign(
            range(args.seeds),
            scenario_names=args.scenarios,
            detection=detection,
            progress=progress,
        )
    wall_s = time.time() - t0

    payload = report.as_dict()
    payload["meta"] = {
        "benchmark": "chaos_campaign",
        "seeds": args.seeds,
        "scenarios": args.scenarios or sorted(SCENARIOS),
        "detection_us": args.detection_us,
        "detection_misses": args.detection_misses,
        "wall_s": round(wall_s, 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if sanitizer_report is not None:
        payload["meta"]["sanitizers"] = sanitizer_report
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(render(payload))
    print(f"\nwrote {args.output} ({len(report.outcomes)} runs, {wall_s:.1f}s)")
    if not report.ok:
        print(
            f"INVARIANT VIOLATIONS: {report.total_violations}", file=sys.stderr
        )
        for violation in payload["violations"]:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
