#!/usr/bin/env python
"""Same-seed double-run determinism gate (``BENCH_determinism.json``).

Runs each selected chaos/overload scenario ``--runs`` times under each
seed, digests the full observable stream of every run (ordered egress,
drop ledger, per-component stats, engine counters — see
``repro.analysis.determinism``), and fails if any same-seed digests
disagree. This is the direct guard for the trustworthiness of every
BENCH_* number and campaign verdict: a stray ``set`` iteration order, a
wall-clock read, or a process-global counter leaking into routing all
show up here as a digest mismatch.

Usage::

    python tools/determinism_check.py                    # defaults
    python tools/determinism_check.py --seeds 2 --runs 2 \
        --chaos nf-crash --overload overload-burst       # CI smoke
    python tools/determinism_check.py --chaos lossy-link --sanitize

Exit status is non-zero on any digest mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def render(report: dict) -> str:
    lines = [
        "determinism check (digest = sha256 of the run's observable stream)",
        f"{'scenario':<26} {'seed':>5} {'runs':>5} {'verdict':>9}  digest",
    ]
    for case in report["cases"]:
        verdict = "ok" if case["ok"] else "MISMATCH"
        shown = (
            case["digests"][0][:16]
            if case["ok"]
            else " / ".join(d[:8] for d in case["digests"])
        )
        lines.append(
            f"{case['kind'] + ':' + case['scenario']:<26} {case['seed']:>5} "
            f"{len(case['digests']):>5} {verdict:>9}  {shown}"
        )
    for scenario, sensitive in sorted(report["seed_sensitivity"].items()):
        if not sensitive:
            lines.append(
                f"note: {scenario} digests are identical across seeds "
                "(scripted scenario — expected when no seeded randomness is used)"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.analysis.determinism import check_determinism

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=2, help="number of seeds")
    parser.add_argument("--runs", type=int, default=2, help="runs per seed")
    parser.add_argument(
        "--chaos",
        nargs="*",
        default=["nf-crash"],
        help="chaos scenarios to double-run (default: nf-crash)",
    )
    parser.add_argument(
        "--overload",
        nargs="*",
        default=["overload-burst"],
        help="overload scenarios to double-run (default: overload-burst)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the runtime sanitizer suite installed",
    )
    parser.add_argument(
        "--fastpath-equivalence",
        action="store_true",
        help="also run the declarative chain with batching off vs on per "
        "seed and require identical per-flow egress and state",
    )
    parser.add_argument("-o", "--output", default="BENCH_determinism.json")
    args = parser.parse_args(argv)

    started = time.time()
    seeds = list(range(args.seeds))

    def progress(case: dict) -> None:
        verdict = "ok" if case["ok"] else "MISMATCH"
        print(
            f"  {case['kind']}:{case['scenario']} seed={case['seed']} {verdict}",
            flush=True,
        )

    report = check_determinism(
        seeds=seeds,
        runs=args.runs,
        chaos=args.chaos,
        overload=args.overload,
        sanitize=args.sanitize,
        progress=progress,
    )
    equivalence = None
    if args.fastpath_equivalence:
        from repro.analysis.determinism import check_fastpath_equivalence

        def fp_progress(case: dict) -> None:
            verdict = "ok" if case["ok"] else "MISMATCH"
            print(
                f"  fastpath-equivalence seed={case['seed']} {verdict} "
                f"(fast hits: {case['fast_hits']})",
                flush=True,
            )

        equivalence = check_fastpath_equivalence(seeds, progress=fp_progress)
    payload = {
        "bench": "determinism",
        "config": {
            "seeds": seeds,
            "runs": args.runs,
            "chaos": args.chaos,
            "overload": args.overload,
            "sanitize": args.sanitize,
            "fastpath_equivalence": args.fastpath_equivalence,
        },
        "host": {"python": platform.python_version(), "machine": platform.machine()},
        "wall_s": round(time.time() - started, 2),
        "report": report,
        "fastpath_equivalence": equivalence,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(render(report))
    if equivalence is not None:
        verdict = "ok" if equivalence["ok"] else "MISMATCH"
        print(
            f"fastpath equivalence (batching off vs on, "
            f"{len(equivalence['cases'])} seeds): {verdict}"
        )
    print(f"wrote {args.output} ({payload['wall_s']}s)")
    failed = not report["ok"] or (equivalence is not None and not equivalence["ok"])
    if failed:
        if not report["ok"]:
            print(f"FAIL: {len(report['mismatches'])} same-seed digest mismatch(es)")
        if equivalence is not None and not equivalence["ok"]:
            print(
                "FAIL: fastpath equivalence mismatch on seed(s) "
                f"{[case['seed'] for case in equivalence['mismatches']]}"
            )
        return 1
    print("all same-seed digests agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
