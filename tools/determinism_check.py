#!/usr/bin/env python
"""Same-seed double-run determinism gate (``BENCH_determinism.json``).

Runs each selected chaos/overload scenario ``--runs`` times under each
seed, digests the full observable stream of every run (ordered egress,
drop ledger, per-component stats, engine counters — see
``repro.analysis.determinism``), and fails if any same-seed digests
disagree. This is the direct guard for the trustworthiness of every
BENCH_* number and campaign verdict: a stray ``set`` iteration order, a
wall-clock read, or a process-global counter leaking into routing all
show up here as a digest mismatch.

Usage::

    python tools/determinism_check.py                    # defaults
    python tools/determinism_check.py --seeds 2 --runs 2 \
        --chaos nf-crash --overload overload-burst --jobs 2   # CI smoke
    python tools/determinism_check.py --chaos lossy-link --sanitize

``--jobs N|auto`` fans the independent (scenario, seed) cases across
worker processes (``repro.parallel``, DESIGN.md §11); the ``runs``
same-seed executions of one case stay inside one worker.

Exit status is non-zero on any digest mismatch, failed case, or lost
worker.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import _bootstrap

_bootstrap.ensure_repro_importable()


def render(report: dict) -> str:
    lines = [
        "determinism check (digest = sha256 of the run's observable stream)",
        f"{'scenario':<26} {'seed':>5} {'runs':>5} {'verdict':>9}  digest",
    ]
    for case in report["cases"]:
        verdict = "ok" if case["ok"] else "MISMATCH"
        if case.get("error"):
            verdict, shown = "ERROR", case["error"]
        elif case["ok"]:
            shown = case["digests"][0][:16]
        else:
            shown = " / ".join(d[:8] for d in case["digests"])
        lines.append(
            f"{case['kind'] + ':' + case['scenario']:<26} {case['seed']:>5} "
            f"{len(case['digests']):>5} {verdict:>9}  {shown}"
        )
    for scenario, sensitive in sorted(report["seed_sensitivity"].items()):
        if not sensitive:
            lines.append(
                f"note: {scenario} digests are identical across seeds "
                "(scripted scenario — expected when no seeded randomness is used)"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.analysis.determinism import check_determinism

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=2, help="number of seeds")
    parser.add_argument("--runs", type=int, default=2, help="runs per seed")
    parser.add_argument(
        "--chaos",
        nargs="*",
        default=["nf-crash"],
        help="chaos scenarios to double-run (default: nf-crash)",
    )
    parser.add_argument(
        "--overload",
        nargs="*",
        default=["overload-burst"],
        help="overload scenarios to double-run (default: overload-burst)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the runtime sanitizer suite installed",
    )
    parser.add_argument(
        "--fastpath-equivalence",
        action="store_true",
        help="also run the declarative chain with batching off vs on per "
        "seed and require identical per-flow egress and state",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes for the case fan-out"
        " ('auto' = cpu count; default 1 = serial)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-case wall budget in seconds; a hung case is recorded as an"
        " infra failure instead of wedging the check",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="requeue budget for cases lost to a worker crash (default 1)",
    )
    parser.add_argument("-o", "--output", default="BENCH_determinism.json")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    seeds = list(range(args.seeds))

    def progress(case: dict) -> None:
        verdict = "ok" if case["ok"] else "MISMATCH"
        print(
            f"  {case['kind']}:{case['scenario']} seed={case['seed']} {verdict}",
            flush=True,
        )

    report = check_determinism(
        seeds=seeds,
        runs=args.runs,
        chaos=args.chaos,
        overload=args.overload,
        sanitize=args.sanitize,
        progress=progress,
        jobs=args.jobs,
        timeout_s=args.run_timeout,
        retries=args.retries,
    )
    equivalence = None
    if args.fastpath_equivalence:
        from repro.analysis.determinism import check_fastpath_equivalence

        def fp_progress(case: dict) -> None:
            verdict = "ok" if case["ok"] else "MISMATCH"
            print(
                f"  fastpath-equivalence seed={case['seed']} {verdict} "
                f"(fast hits: {case['fast_hits']})",
                flush=True,
            )

        equivalence = check_fastpath_equivalence(
            seeds,
            progress=fp_progress,
            jobs=args.jobs,
            timeout_s=args.run_timeout,
            retries=args.retries,
        )
    payload = {
        "bench": "determinism",
        "config": {
            "seeds": seeds,
            "runs": args.runs,
            "chaos": args.chaos,
            "overload": args.overload,
            "sanitize": args.sanitize,
            "fastpath_equivalence": args.fastpath_equivalence,
        },
        "host": {"python": platform.python_version(), "machine": platform.machine()},
        "wall_s": round(time.perf_counter() - started, 2),
        "meta": {
            "jobs": report.get("pool", {}).get("jobs"),
            "wall_s_serial_est": report.get("pool", {}).get("wall_s_serial_est"),
        },
        "report": report,
        "fastpath_equivalence": equivalence,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(render(report))
    if equivalence is not None:
        verdict = "ok" if equivalence["ok"] else "MISMATCH"
        print(
            f"fastpath equivalence (batching off vs on, "
            f"{len(equivalence['cases'])} seeds): {verdict}"
        )
    print(f"wrote {args.output} ({payload['wall_s']}s)")
    failed = not report["ok"] or (equivalence is not None and not equivalence["ok"])
    if failed:
        if report["mismatches"]:
            print(f"FAIL: {len(report['mismatches'])} same-seed digest mismatch(es)")
        if report.get("infra_failures"):
            print(
                f"FAIL: {len(report['infra_failures'])} infra failure(s) "
                "(worker crash/timeout)"
            )
            for failure in report["infra_failures"]:
                print(f"  {failure}")
        if equivalence is not None and not equivalence["ok"]:
            print(
                "FAIL: fastpath equivalence mismatch on seed(s) "
                f"{[case['seed'] for case in equivalence['mismatches']]}"
            )
        return 1
    print("all same-seed digests agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
