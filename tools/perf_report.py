#!/usr/bin/env python
"""Run the engine microbenchmarks and record ``BENCH_engine.json``.

This is the perf trajectory artifact for the simulator overhaul: it runs
every scenario in ``benchmarks/bench_engine_micro.py`` against both the
current engine and the legacy (seed) snapshot, prints a table, and writes
the machine-readable payload to ``BENCH_engine.json`` at the repo root.

Usage::

    PYTHONPATH=src python tools/perf_report.py            # full sizes
    PYTHONPATH=src python tools/perf_report.py --smoke    # CI-sized
    PYTHONPATH=src python tools/perf_report.py -o out.json

The acceptance bars are >=2x event throughput vs the seed on
``channel_churn`` and ``timer_storm``, and >=2x wall speedup from the
batched match-action fast path on ``chain_pipeline`` (fastpath off vs on,
same machine), all at full size; ``--check`` makes the exit status enforce
them (used by the release checklist, not CI — CI machines are too noisy
for a hard wall-clock gate).

``--quick`` is the CI perf-smoke mode: it runs only ``chain_pipeline``
(off vs on) at reduced size and fails if the measured fast-path speedup
falls more than 20% below the committed ``BENCH_engine.json`` figure.
The gate compares the off/on *ratio*, not raw seconds — the ratio is
same-machine relative, so it transfers across CI hosts where absolute
wall-clock does not.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

import _bootstrap

_bootstrap.ensure_repro_importable()
_bootstrap.ensure_benchmarks_importable()

REPO_ROOT = _bootstrap.REPO_ROOT

ACCEPTANCE = {"channel_churn": 2.0, "timer_storm": 2.0, "chain_pipeline": 2.0}

# --quick: tolerated relative drop of the chain_pipeline fast-path speedup
# vs the committed BENCH_engine.json before CI fails the perf-smoke job.
QUICK_TOLERANCE = 0.20
QUICK_KWARGS = dict(packets=600, flows=50)


def build_payload(smoke: bool, repeats: int, jobs: str = "1") -> dict:
    from bench_engine_micro import run_comparison

    from repro.parallel import resolve_jobs

    payload = run_comparison(smoke=smoke, repeats=repeats, jobs=jobs)
    payload["meta"] = {
        "benchmark": "bench_engine_micro",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "jobs": resolve_jobs(jobs),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "acceptance": {name: f">={bar}x" for name, bar in ACCEPTANCE.items()},
    }
    return payload


def render(payload: dict) -> str:
    lines = [
        "engine microbenchmarks (legacy = seed engine snapshot)",
        f"{'scenario':<16} {'units':>8} {'legacy':>10} {'new':>10} {'speedup':>8}",
    ]
    for name, row in payload["scenarios"].items():
        if "legacy_wall_s" in row:
            lines.append(
                f"{name:<16} {row['units']:>8} {row['legacy_wall_s']:>9.4f}s"
                f" {row['new_wall_s']:>9.4f}s {row['speedup']:>7.2f}x"
            )
        else:
            # chain_pipeline: "legacy" column = fastpath off, "new" = on
            fast = row.get("fastpath", {})
            speed = f"{row['speedup']:>7.2f}x" if "speedup" in row else f"{'-':>8}"
            new_wall = (
                f"{fast['wall_s']:>9.4f}s" if fast else f"{row['new_wall_s']:>9.4f}s"
            )
            lines.append(
                f"{name:<16} {row['engine_events']:>8} {row['new_wall_s']:>9.4f}s"
                f" {new_wall} {speed}"
            )
    return "\n".join(lines)


def run_quick(repeats: int, baseline_path: str) -> int:
    """CI perf-smoke: chain_pipeline off/on only, ratio-gated vs baseline."""
    from bench_engine_micro import chain_pipeline

    import repro.simnet.engine as new_engine

    best_off = best_on = float("inf")
    for _ in range(repeats):
        _, wall = chain_pipeline(new_engine, fastpath=False, **QUICK_KWARGS)
        best_off = min(best_off, wall)
        _, wall = chain_pipeline(new_engine, fastpath=True, **QUICK_KWARGS)
        best_on = min(best_on, wall)
    measured = best_off / best_on
    try:
        with open(baseline_path) as fh:
            committed = json.load(fh)["scenarios"]["chain_pipeline"]["speedup"]
    except (OSError, KeyError, ValueError) as exc:
        print(f"perf-smoke: no usable baseline ({exc}); measured {measured:.2f}x")
        return 0
    floor = committed * (1.0 - QUICK_TOLERANCE)
    verdict = "OK" if measured >= floor else "REGRESSED"
    print(
        f"perf-smoke {verdict}: chain_pipeline fast-path speedup "
        f"{measured:.2f}x (committed {committed}x, floor {floor:.2f}x)"
    )
    return 0 if measured >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized scenarios")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the full-size acceptance ratios hold",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf-smoke: chain_pipeline only, gated vs committed baseline",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes for the scenario sweep ('auto' = cpu count)."
        " Ratios stay same-process comparisons, but raw wall seconds pick"
        " up scheduling noise: use >1 for sweep breadth, 1 for the"
        " committed headline numbers",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_engine.json"),
        help="output path (default: BENCH_engine.json at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.quick:
        return run_quick(args.repeats, args.output)

    payload = build_payload(args.smoke, args.repeats, jobs=args.jobs)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(render(payload))
    print(f"\nwrote {args.output}")

    if args.check:
        failed = []
        for name, bar in ACCEPTANCE.items():
            speedup = payload["scenarios"][name]["speedup"]
            if speedup < bar:
                failed.append(f"{name}: {speedup}x < {bar}x")
        if failed:
            print("acceptance FAILED: " + "; ".join(failed), file=sys.stderr)
            return 1
        print("acceptance OK: " + ", ".join(
            f"{name} {payload['scenarios'][name]['speedup']}x" for name in ACCEPTANCE
        ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
