#!/usr/bin/env python
"""Run the engine microbenchmarks and record ``BENCH_engine.json``.

This is the perf trajectory artifact for the simulator overhaul: it runs
every scenario in ``benchmarks/bench_engine_micro.py`` against both the
current engine and the legacy (seed) snapshot, prints a table, and writes
the machine-readable payload to ``BENCH_engine.json`` at the repo root.

Usage::

    PYTHONPATH=src python tools/perf_report.py            # full sizes
    PYTHONPATH=src python tools/perf_report.py --smoke    # CI-sized
    PYTHONPATH=src python tools/perf_report.py -o out.json

The acceptance bar for the overhaul is >=2x event throughput vs the seed
on ``channel_churn`` and ``timer_storm`` at full size; ``--check`` makes
the exit status enforce it (used by the release checklist, not CI — CI
machines are too noisy for a hard wall-clock gate).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

ACCEPTANCE = {"channel_churn": 2.0, "timer_storm": 2.0}


def build_payload(smoke: bool, repeats: int) -> dict:
    from bench_engine_micro import run_comparison

    payload = run_comparison(smoke=smoke, repeats=repeats)
    payload["meta"] = {
        "benchmark": "bench_engine_micro",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "acceptance": {name: f">={bar}x" for name, bar in ACCEPTANCE.items()},
    }
    return payload


def render(payload: dict) -> str:
    lines = [
        "engine microbenchmarks (legacy = seed engine snapshot)",
        f"{'scenario':<16} {'units':>8} {'legacy':>10} {'new':>10} {'speedup':>8}",
    ]
    for name, row in payload["scenarios"].items():
        if "speedup" in row:
            lines.append(
                f"{name:<16} {row['units']:>8} {row['legacy_wall_s']:>9.4f}s"
                f" {row['new_wall_s']:>9.4f}s {row['speedup']:>7.2f}x"
            )
        else:
            lines.append(
                f"{name:<16} {row['engine_events']:>8} {'-':>10}"
                f" {row['new_wall_s']:>9.4f}s {'-':>8}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized scenarios")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the full-size acceptance ratios hold",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_engine.json"),
        help="output path (default: BENCH_engine.json at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    payload = build_payload(args.smoke, args.repeats)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(render(payload))
    print(f"\nwrote {args.output}")

    if args.check:
        failed = []
        for name, bar in ACCEPTANCE.items():
            speedup = payload["scenarios"][name]["speedup"]
            if speedup < bar:
                failed.append(f"{name}: {speedup}x < {bar}x")
        if failed:
            print("acceptance FAILED: " + "; ".join(failed), file=sys.stderr)
            return 1
        print("acceptance OK: " + ", ".join(
            f"{name} {payload['scenarios'][name]['speedup']}x" for name in ACCEPTANCE
        ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
