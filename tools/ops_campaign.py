#!/usr/bin/env python
"""Run the planned-operations campaign and record ``BENCH_operations.json``.

Sweeps N seeds across the named maintenance scenarios (default: all of
``repro.ops.campaign.SCENARIOS``): rolling NF upgrade, store-node
replacement, topology insert/remove, config hot-reload, and a rolling
upgrade with an unplanned crash landing mid-operation. Every run executes
under live traffic and is checked against the full invariant battery
(loss-free state, exactly-once externalization, per-flow ordering, no
stranded ownership, drained root logs, completed recoveries) plus the
operations-specific checkers: the runtime must converge back to a clean
steady state and the chain must stay above the scenario's goodput floor
while the operation is in flight (zero-downtime).

Usage::

    PYTHONPATH=src python tools/ops_campaign.py --seeds 10 --jobs auto
    PYTHONPATH=src python tools/ops_campaign.py --quick --jobs 2   # CI smoke
    PYTHONPATH=src python tools/ops_campaign.py --seeds 3 \
        --scenarios rolling-upgrade store-replace

``--jobs N|auto`` fans the independent (scenario, seed) runs across
worker processes (``repro.parallel``, DESIGN.md §11); the payload is
byte-identical to the serial run for any job count, modulo the ``meta``
wall-clock/jobs fields.

Exit status is non-zero if any invariant was violated, any operation
failed to complete, any run raised, or any worker was lost — this is the
correctness gate the CI ``ops-smoke`` job enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import _bootstrap

_bootstrap.ensure_repro_importable()

REPO_ROOT = _bootstrap.REPO_ROOT

QUICK_SEEDS = 2


def render(payload: dict) -> str:
    lines = [
        "operations campaign (times in simulated microseconds)",
        f"{'scenario':<22} {'runs':>5} {'fail':>5} {'done':>5} {'abrt':>5}"
        f" {'viol':>5} {'minwin':>6} {'p5':>8} {'p50':>8} {'p95':>8}",
    ]
    for name, row in payload["scenarios"].items():
        pct = row.get("operation_us_percentiles", {})
        lines.append(
            f"{name:<22} {row['runs']:>5} {row.get('failed_runs', 0):>5}"
            f" {row['operations_completed']:>5}"
            f" {row['operations_aborted']:>5}"
            f" {row['violations']:>5}"
            f" {row.get('min_window_egress', '-'):>6}"
            f" {pct.get('p5', '-'):>8} {pct.get('p50', '-'):>8}"
            f" {pct.get('p95', '-'):>8}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.ops.campaign import SCENARIOS, run_campaign

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10, help="seeds per scenario")
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(SCENARIOS),
        default=None,
        help="subset of scenarios (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: {QUICK_SEEDS} seeds per scenario",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_operations.json"),
        help="output path (default: BENCH_operations.json at the repo root)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the runtime sanitizer suite installed (ownership races,"
        " clock monotonicity, backpressure deadlock cycles raise loudly)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes for the seed x scenario fan-out"
        " ('auto' = cpu count; default 1 = serial)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-run wall budget in seconds; a hung run is recorded as an"
        " infra failure instead of wedging the campaign",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="requeue budget for runs lost to a worker crash (default 1)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.seeds = min(args.seeds, QUICK_SEEDS)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    def progress(outcome):
        if args.quiet:
            return
        mark = "ok" if outcome.ok else f"{len(outcome.violations)} VIOLATIONS"
        print(f"  {outcome.scenario:<22} seed={outcome.seed:<3} {mark}", flush=True)

    t0 = time.perf_counter()
    report = run_campaign(
        range(args.seeds),
        scenario_names=args.scenarios,
        progress=progress,
        jobs=args.jobs,
        timeout_s=args.run_timeout,
        retries=args.retries,
        sanitize=args.sanitize,
    )
    wall_s = time.perf_counter() - t0

    payload = report.as_dict()
    payload["meta"] = {
        "benchmark": "ops_campaign",
        "seeds": args.seeds,
        "scenarios": args.scenarios or sorted(SCENARIOS),
        "wall_s": round(wall_s, 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if report.pool_stats is not None:
        payload["meta"]["jobs"] = report.pool_stats["jobs"]
        payload["meta"]["wall_s_serial_est"] = report.pool_stats[
            "wall_s_serial_est"
        ]
    if report.sanitizers is not None:
        payload["meta"]["sanitizers"] = report.sanitizers
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(render(payload))
    attempted = len(report.outcomes) + len(report.failures)
    print(f"\nwrote {args.output} ({attempted} runs, {wall_s:.1f}s)")
    if not report.ok:
        if report.total_violations:
            print(
                f"INVARIANT VIOLATIONS: {report.total_violations}", file=sys.stderr
            )
            for violation in payload["violations"]:
                print(f"  {violation}", file=sys.stderr)
        if report.failures:
            print(f"FAILED RUNS: {len(report.failures)}", file=sys.stderr)
            for failure in payload["failures"]:
                print(f"  {failure}", file=sys.stderr)
        if report.infra_failures:
            print(
                f"INFRA FAILURES: {len(report.infra_failures)}", file=sys.stderr
            )
            for failure in payload["infra_failures"]:
                print(f"  {failure}", file=sys.stderr)
        return 1
    print("all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
