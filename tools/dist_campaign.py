#!/usr/bin/env python
"""Run the distributed-fabric fault campaign and record ``BENCH_dist.json``.

Sweeps N seeds across the real-process fault scenarios
(``repro.dist.DIST_SCENARIOS``): a clean distributed run, SIGKILL of a
shard mid-traffic (respawn resumes from its injection ledger above the
store-derived clock floor), SIGKILL of the store (respawn replays the
frame WAL on the same port), a connection partition (sever + refuse,
then heal), and a half-open stall. Every run spawns real OS processes
talking over real localhost TCP; every fault kills a real process or
breaks a real socket, and the payload records the evidence (pid
histories across incarnations, RST / refused-connect counters).

Each run is checked with the PR-3 invariant battery across process
boundaries: exactly-once egress, per-flow ordering, bounded-loss state
and egress against an in-process reference replay of the run's own
injection ledger, no stranded ownership, no flush give-ups, drained
root logs.

Usage::

    PYTHONPATH=src python tools/dist_campaign.py --seeds 10 --jobs 4
    PYTHONPATH=src python tools/dist_campaign.py --quick --jobs 2   # CI smoke
    PYTHONPATH=src python tools/dist_campaign.py --seeds 3 \
        --scenarios shard-kill store-kill

``--jobs N|auto`` fans the (scenario, seed) runs across worker
processes (``repro.parallel``, DESIGN.md §11). Note each run spawns its
own store + shard children, so the process count is jobs x (shards+2).

Exit status is non-zero if any invariant was violated, any fault failed
to produce its real-world evidence, any run raised, or any worker was
lost — the correctness gate the CI ``dist-smoke`` job enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import _bootstrap

_bootstrap.ensure_repro_importable()

REPO_ROOT = _bootstrap.REPO_ROOT


def render(payload: dict) -> str:
    lines = [
        "distributed fabric campaign (real processes, real sockets)",
        f"{'scenario':<12} {'runs':>5} {'ok':>4} {'viol':>5} {'infra':>6}"
        f" {'rexmit':>7} {'resets':>7} {'respawn':>8} {'wall_s':>7}",
    ]
    for name, row in payload["scenarios"].items():
        lines.append(
            f"{name:<12} {row['runs']:>5} {row['ok_runs']:>4}"
            f" {row['violations']:>5} {row['infra_errors']:>6}"
            f" {row['retransmissions']:>7} {row['socket_resets']:>7}"
            f" {row['respawned_children']:>8} {row['duration_s_total']:>7}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    from repro.dist.campaign import DIST_SCENARIOS, run_dist_campaign

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10, help="seeds per scenario")
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(DIST_SCENARIOS),
        default=None,
        help="subset of scenarios (default: all)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="shard processes per run"
    )
    parser.add_argument(
        "--packets", type=int, default=48, help="workload packets per shard"
    )
    parser.add_argument(
        "--flows", type=int, default=4, help="flows per shard workload"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 2 seeds, 24 packets x 3 flows, all scenarios",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_dist.json"),
        help="output path (default: BENCH_dist.json at the repo root)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-run progress"
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes for the seed x scenario fan-out"
        " ('auto' = cpu count; default 1 = serial)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=180.0,
        metavar="S",
        help="per-run wall budget in seconds; a hung run is recorded as an"
        " infra failure instead of wedging the campaign (default 180)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="requeue budget for runs lost to a worker crash (default 1)",
    )
    args = parser.parse_args(argv)
    seeds = args.seeds
    n_packets = args.packets
    n_flows = args.flows
    if args.quick:
        seeds = min(seeds, 2)
        n_packets = 24
        n_flows = 3
    if seeds < 1:
        parser.error("--seeds must be >= 1")

    def progress(outcome):
        if args.quiet:
            return
        if outcome.ok:
            mark = "ok"
        elif outcome.infra_error:
            mark = f"INFRA: {outcome.infra_error}"
        else:
            mark = f"{len(outcome.violations)} VIOLATIONS"
        print(
            f"  {outcome.scenario:<12} seed={outcome.seed:<3}"
            f" {outcome.duration_s:5.1f}s {mark}",
            flush=True,
        )

    t0 = time.perf_counter()
    report = run_dist_campaign(
        range(seeds),
        scenario_names=args.scenarios,
        jobs=args.jobs,
        timeout_s=args.run_timeout,
        retries=args.retries,
        progress=progress,
        n_shards=args.shards,
        n_packets=n_packets,
        n_flows=n_flows,
    )
    wall_s = time.perf_counter() - t0

    payload = report.as_dict()
    payload["meta"] = {
        "benchmark": "dist_campaign",
        "seeds": seeds,
        "scenarios": args.scenarios or sorted(DIST_SCENARIOS),
        "shards": args.shards,
        "packets": n_packets,
        "flows": n_flows,
        "quick": args.quick,
        "wall_s": round(wall_s, 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if report.pool_stats is not None:
        payload["meta"]["jobs"] = report.pool_stats["jobs"]
        payload["meta"]["wall_s_serial_est"] = report.pool_stats[
            "wall_s_serial_est"
        ]
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(render(payload))
    attempted = len(report.outcomes) + len(report.failures)
    print(f"\nwrote {args.output} ({attempted} runs, {wall_s:.1f}s)")
    if not report.ok:
        if report.total_violations:
            print(
                f"INVARIANT VIOLATIONS: {report.total_violations}", file=sys.stderr
            )
            for violation in payload["violations"]:
                print(f"  {violation}", file=sys.stderr)
        if report.fabric_infra_errors:
            print(
                f"FABRIC INFRA ERRORS: {len(report.fabric_infra_errors)}",
                file=sys.stderr,
            )
            for outcome in report.fabric_infra_errors:
                print(
                    f"  {outcome.scenario}/seed={outcome.seed}:"
                    f" {outcome.infra_error}",
                    file=sys.stderr,
                )
        if report.failures:
            print(f"FAILED RUNS: {len(report.failures)}", file=sys.stderr)
            for failure in payload["failures"]:
                print(f"  {failure}", file=sys.stderr)
        if report.infra_failures:
            print(
                f"INFRA FAILURES: {len(report.infra_failures)}", file=sys.stderr
            )
            for failure in payload["infra_failures"]:
                print(f"  {failure}", file=sys.stderr)
        return 1
    print("all invariants held; every fault left real-world evidence")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
