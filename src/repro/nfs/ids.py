"""Signature-counting IDS (the Figure 1 chain's first stage).

Keeps per-flow byte counts (per-flow state) and per-destination-port
packet counters shared across instances (the cross-flow state §2.1 uses
to motivate R3: "per port counts at the IDSes in Figure 1a"). Flows whose
byte count crosses the threshold are steered to the ``suspicious`` edge —
in the Figure 1 chain that edge is consumed by the off-path DPI.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.core.nf_api import NetworkFunction, Output, StateAPI
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import Packet

DEFAULT_SUSPICIOUS_BYTES = 512 * 1024


class Ids(NetworkFunction):
    """See module docstring."""

    name = "ids"

    def __init__(self, suspicious_bytes: int = DEFAULT_SUSPICIOUS_BYTES):
        self.suspicious_bytes = suspicious_bytes

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "flow_bytes": StateObjectSpec(
                "flow_bytes",
                Scope.PER_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                initial_value=0,
            ),
            "port_packets": StateObjectSpec(
                "port_packets",
                Scope.CROSS_FLOW,
                AccessPattern.WRITE_MOSTLY,
                scope_fields=("dst_port",),
                initial_value=0,
            ),
        }

    @staticmethod
    def flow_key(packet: Packet) -> Tuple:
        return packet.five_tuple.canonical().key()

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        yield from state.update(
            "port_packets", (packet.five_tuple.dst_port,), "incr", 1
        )
        flow_bytes = yield from state.update(
            "flow_bytes", self.flow_key(packet), "incr", packet.size_bytes,
            need_result=True,
        )
        outputs = [Output(packet)]
        if flow_bytes is not None and flow_bytes >= self.suspicious_bytes:
            outputs.append(Output(packet.copy(), edge="suspicious"))
        return outputs
