"""Dynamic NAT (§6 "NAT", Table 4).

State objects and their declared scope/access patterns match Table 4:

=====================  ==========  ===============================
object                 scope       access pattern
=====================  ==========  ===============================
``available_ports``    cross-flow  write/read often
``total_tcp_packets``  cross-flow  write mostly, read rarely
``total_packets``      cross-flow  write mostly, read rarely
``port_map``           per-flow    write rarely, read mostly
=====================  ==========  ===============================

On a new connection the NAT obtains a free port by offloading a ``pop``
on the shared port list ("The datastore pops an entry from the list of
available ports on behalf of the NF"), records the per-connection mapping
once, and updates both packet counters on every packet — the access
profile behind the paper's "NAT needs three RTTs on average per packet"
under the no-caching model.

Address rewriting is implemented but off by default in chain experiments
(``rewrite=False``): the evaluation traces carry original endpoints in
both directions, and rewriting would decouple the two directions for
downstream NFs. Unit tests exercise the rewrite path with post-NAT
inbound packets.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.core.nf_api import (
    FastState,
    MatchActionForm,
    NetworkFunction,
    Output,
    StateAPI,
)
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import PROTO_TCP, Packet

DEFAULT_PORT_RANGE = (40_000, 40_512)
INTERNAL_PREFIX = "10."


class NatPortsExhausted(RuntimeError):
    """No free external port was available for a new connection."""


class Nat(NetworkFunction):
    """See module docstring."""

    name = "nat"

    def __init__(
        self,
        external_ip: str = "198.51.100.1",
        port_range: Tuple[int, int] = DEFAULT_PORT_RANGE,
        rewrite: bool = False,
        internal_prefix: str = INTERNAL_PREFIX,
    ):
        self.external_ip = external_ip
        self.port_range = port_range
        self.rewrite = rewrite
        self.internal_prefix = internal_prefix
        self.ports_exhausted = 0

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "available_ports": StateObjectSpec(
                "available_ports",
                Scope.CROSS_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                scope_fields=(),
                initial_value=list(range(*self.port_range)),
            ),
            "total_tcp_packets": StateObjectSpec(
                "total_tcp_packets",
                Scope.CROSS_FLOW,
                AccessPattern.WRITE_MOSTLY,
                scope_fields=(),
                initial_value=0,
            ),
            "total_packets": StateObjectSpec(
                "total_packets",
                Scope.CROSS_FLOW,
                AccessPattern.WRITE_MOSTLY,
                scope_fields=(),
                initial_value=0,
            ),
            "port_map": StateObjectSpec(
                "port_map",
                Scope.PER_FLOW,
                AccessPattern.READ_HEAVY,
                initial_value=None,
            ),
        }

    def custom_operations(self):
        def pop_or_init(value, initial_lo, initial_hi):
            """Pop a free port, lazily initialising the free list."""
            ports = list(value) if value is not None else list(range(initial_lo, initial_hi))
            port = ports.pop(0) if ports else None
            return ports, port

        return {"nat_pop_port": pop_or_init}

    @staticmethod
    def flow_key(packet: Packet) -> Tuple:
        return packet.five_tuple.canonical().key()

    def _is_outbound(self, packet: Packet) -> bool:
        return packet.five_tuple.src_ip.startswith(self.internal_prefix)

    def _is_translated_inbound(self, packet: Packet) -> bool:
        return packet.five_tuple.dst_ip == self.external_ip

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        flow = self.flow_key(packet)

        # Per-packet counters: every packet, write-mostly => non-blocking.
        yield from state.update("total_packets", None, "incr", 1)
        if packet.five_tuple.proto == PROTO_TCP:
            yield from state.update("total_tcp_packets", None, "incr", 1)

        # A SYN starts a new connection: allocate directly, no lookup
        # ("per conn. port mapping" is written exactly once, Table 4).
        mapping = None
        if not packet.is_syn:
            mapping = yield from state.read("port_map", flow)
        if mapping is None and (self._is_outbound(packet) or not self.rewrite):
            # New connection: allocate an external port from the shared
            # list (offloaded pop; the NF needs the result).
            port = yield from state.update(
                "available_ports",
                None,
                "nat_pop_port",
                self.port_range[0],
                self.port_range[1],
                need_result=True,
            )
            if port is None:
                self.ports_exhausted += 1  # chclint: disable=CHC005 — host-local diagnostic counter
                return []
            mapping = (self.external_ip, port)
            yield from state.update("port_map", flow, "set", mapping)

        if self.rewrite and mapping is not None:
            packet = self._translate(packet, mapping)
        return [Output(packet)]

    # -- declarative fast path (§6) -------------------------------------

    def fast_match(self, packet: Packet) -> bool:
        return True  # established flows are served locally; cold state declines

    def fast_action(self, packet: Packet, state: FastState):
        """Mirror of :meth:`process` against locally cached state.

        The counters journal non-blocking; the port allocation applies
        against the exclusively-cached free list (``nat_pop_port`` through
        the same registry the store runs). A cold ``port_map``/free list
        raises NotFast and the general path seeds the caches.
        """
        flow = self.flow_key(packet)
        state.update("total_packets", None, "incr", 1)
        if packet.five_tuple.proto == PROTO_TCP:
            state.update("total_tcp_packets", None, "incr", 1)
        mapping = None
        if not packet.is_syn:
            mapping = state.get("port_map", flow)
        if mapping is None and (self._is_outbound(packet) or not self.rewrite):
            port = state.update(
                "available_ports",
                None,
                "nat_pop_port",
                self.port_range[0],
                self.port_range[1],
                need_result=True,
            )
            if port is None:
                self.ports_exhausted += 1  # chclint: disable=CHC005 — host-local diagnostic counter
                return []
            mapping = (self.external_ip, port)
            state.update("port_map", flow, "set", mapping)
        if self.rewrite and mapping is not None:
            packet = self._translate(packet, mapping)
        return [Output(packet)]

    def match_action_form(self) -> MatchActionForm:
        return MatchActionForm(
            tables=(
                "available_ports",
                "total_tcp_packets",
                "total_packets",
                "port_map",
            ),
            match=self.fast_match,
            action=self.fast_action,
        )

    def _translate(self, packet: Packet, mapping: Tuple[str, int]) -> Packet:
        external_ip, external_port = mapping
        ft = packet.five_tuple
        translated = packet.copy()
        if self._is_outbound(packet):
            translated.five_tuple = type(ft)(
                src_ip=external_ip,
                dst_ip=ft.dst_ip,
                src_port=external_port,
                dst_port=ft.dst_port,
                proto=ft.proto,
            )
        elif self._is_translated_inbound(packet):
            # Reverse translation would consult a port-indexed mapping in a
            # full deployment; here the per-flow mapping suffices because
            # flow keys are canonical (direction-independent).
            translated.five_tuple = ft
        return translated

    def release_port(self, state: StateAPI, port: int) -> Generator:
        """Return a port to the shared free list (connection teardown)."""
        yield from state.update("available_ports", None, "push", port)
