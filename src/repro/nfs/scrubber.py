"""Traffic scrubber (Figure 2's middle stage).

Normalises packets (the real De Carli pipeline scrubs protocol anomalies)
and keeps a per-flow scrubbed-packet counter. Deliberately lightweight:
its role in the R4 experiment is to *be slow* — resource contention at a
scrubber instance delays one protocol's traffic and destroys the arrival
order the downstream trojan detector needs. Slowness is injected by the
experiment via the instance's ``extra_delay`` hook, not by the NF.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.core.nf_api import NetworkFunction, Output, StateAPI
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import Packet


class Scrubber(NetworkFunction):
    """See module docstring."""

    name = "scrubber"

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "scrubbed": StateObjectSpec(
                "scrubbed",
                Scope.PER_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                initial_value=0,
            ),
        }

    @staticmethod
    def flow_key(packet: Packet) -> Tuple:
        return packet.five_tuple.canonical().key()

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        yield from state.update("scrubbed", self.flow_key(packet), "incr", 1)
        return [Output(packet)]
