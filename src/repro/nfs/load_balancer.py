"""Least-connections L4 load balancer (§6, Table 4).

State:

* ``server_conns`` — active connection count per backend, cross-flow,
  write/read often. New connections pick the least-loaded backend via one
  offloaded operation (read + choose + increment, serialized by the
  store), teardown decrements.
* ``server_bytes`` — per-backend byte counter, cross-flow, write mostly:
  updated on **every** packet, non-blocking. This is the object that
  makes the load balancer line-rate-bound under the EO model (one RTT
  per packet, §7.1).
* ``conn_map`` — per-flow backend binding, written once, read per packet.
"""

from __future__ import annotations

from typing import Dict, Generator, Sequence, Tuple

from repro.core.nf_api import (
    FastState,
    MatchActionForm,
    NetworkFunction,
    Output,
    StateAPI,
)
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import Packet

DEFAULT_SERVERS = ("192.168.1.1", "192.168.1.2", "192.168.1.3", "192.168.1.4")


class LoadBalancer(NetworkFunction):
    """See module docstring."""

    name = "lb"

    def __init__(self, servers: Sequence[str] = DEFAULT_SERVERS, rewrite: bool = False):
        if not servers:
            raise ValueError("load balancer needs at least one backend")
        self.servers = tuple(servers)
        self.rewrite = rewrite

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "server_conns": StateObjectSpec(
                "server_conns",
                Scope.CROSS_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                scope_fields=(),
                initial_value=None,
            ),
            "server_bytes": StateObjectSpec(
                "server_bytes",
                Scope.CROSS_FLOW,
                AccessPattern.WRITE_MOSTLY,
                scope_fields=(),
                initial_value=0,
            ),
            "conn_map": StateObjectSpec(
                "conn_map",
                Scope.PER_FLOW,
                AccessPattern.READ_HEAVY,
                initial_value=None,
            ),
        }

    def custom_operations(self):
        def pick_least_loaded(value, servers):
            """Choose the backend with the fewest active connections and
            increment its count — one serialized store-side operation, so
            two instances can never double-book the same slot."""
            loads = dict(value) if value else {}
            chosen = min(servers, key=lambda s: (loads.get(s, 0), s))
            loads[chosen] = loads.get(chosen, 0) + 1
            return loads, chosen

        def release_conn(value, server):
            loads = dict(value) if value else {}
            if loads.get(server, 0) > 0:
                loads[server] -= 1
            return loads, loads.get(server, 0)

        return {"pick_least_loaded": pick_least_loaded, "release_conn": release_conn}

    @staticmethod
    def flow_key(packet: Packet) -> Tuple:
        return packet.five_tuple.canonical().key()

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        flow = self.flow_key(packet)
        backend = yield from state.read("conn_map", flow)

        if backend is None:
            if not packet.is_syn:
                # Mid-flow packet for an unknown connection (e.g. arrived
                # before its SYN after reordering): pass through unbalanced.
                yield from state.update("server_bytes", None, "incr", packet.size_bytes)
                return [Output(packet)]
            backend = yield from state.update(
                "server_conns", None, "pick_least_loaded", self.servers, need_result=True
            )
            yield from state.update("conn_map", flow, "set", backend)

        yield from state.update("server_bytes", None, "incr", packet.size_bytes)

        if packet.is_fin or packet.is_rst:
            yield from state.update("server_conns", None, "release_conn", backend)

        out = packet
        if self.rewrite:
            out = packet.copy()
            ft = packet.five_tuple
            out.five_tuple = type(ft)(ft.src_ip, backend, ft.src_port, ft.dst_port, ft.proto)
        return [Output(out)]

    # -- declarative fast path (§6) -------------------------------------

    def fast_match(self, packet: Packet) -> bool:
        return True  # bound connections are served locally; cold state declines

    def fast_action(self, packet: Packet, state: FastState):
        """Mirror of :meth:`process` against locally cached state."""
        flow = self.flow_key(packet)
        backend = state.get("conn_map", flow)
        if backend is None:
            if not packet.is_syn:
                state.update("server_bytes", None, "incr", packet.size_bytes)
                return [Output(packet)]
            backend = state.update(
                "server_conns", None, "pick_least_loaded", self.servers,
                need_result=True,
            )
            state.update("conn_map", flow, "set", backend)
        state.update("server_bytes", None, "incr", packet.size_bytes)
        if packet.is_fin or packet.is_rst:
            state.update("server_conns", None, "release_conn", backend)
        out = packet
        if self.rewrite:
            out = packet.copy()
            ft = packet.five_tuple
            out.five_tuple = type(ft)(ft.src_ip, backend, ft.src_port, ft.dst_port, ft.proto)
        return [Output(out)]

    def match_action_form(self) -> MatchActionForm:
        return MatchActionForm(
            tables=("server_conns", "server_bytes", "conn_map"),
            match=self.fast_match,
            action=self.fast_action,
        )
