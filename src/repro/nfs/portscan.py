"""Portscan detector (§6, after Schechter, Jung & Berger [26]).

Threshold-random-walk style detection: for each (internal) host the
detector tracks the likelihood of being a scanner. Every *failed*
connection attempt (SYN answered by RST) multiplies the likelihood up,
every successful one (SYN answered by SYN-ACK) multiplies it down; a host
is flagged once the likelihood crosses the threshold.

State (Table 4):

* ``likelihood`` — per host, cross-flow, write/read often. This is the
  object the Figure 9 experiment watches: cached (cheap) while one
  instance handles the host, blocking (one store RTT per connection
  event) when the traffic split shares the host across instances.
* ``pending`` — per flow, the outstanding connection attempt and its
  logical-clock timestamp.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.nf_api import NetworkFunction, Output, StateAPI
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import Packet

LIKELIHOOD_UP = 2.0      # failed attempt multiplier
LIKELIHOOD_DOWN = 0.5    # successful attempt multiplier
DEFAULT_THRESHOLD = 16.0


class PortscanDetector(NetworkFunction):
    """See module docstring."""

    name = "portscan"

    def __init__(self, threshold: float = DEFAULT_THRESHOLD):
        self.threshold = threshold
        self.flagged: Dict[str, float] = {}      # host -> detection "time" (clock)
        self.conn_events = 0
        self.duplicate_conn_events = 0
        self._event_clocks: Set[Tuple[int, str]] = set()

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "likelihood": StateObjectSpec(
                "likelihood",
                Scope.CROSS_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                scope_fields=("src_ip",),
                initial_value=1.0,
            ),
            "pending": StateObjectSpec(
                "pending",
                Scope.PER_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                initial_value=None,
            ),
        }

    def custom_operations(self):
        def mul_clamp(value, factor, lo=1e-6, hi=1e9):
            new = min(max((value if value is not None else 1.0) * factor, lo), hi)
            return new, new

        return {"mul_clamp": mul_clamp}

    @staticmethod
    def flow_key(packet: Packet) -> Tuple:
        return packet.five_tuple.canonical().key()

    def _note_event(self, packet: Packet, host: str) -> None:
        self.conn_events += 1  # chclint: disable=CHC005 — host-local diagnostic counter
        if packet.clock:
            key = (packet.clock, host)
            if key in self._event_clocks:
                # A spurious duplicate connection event reached the NF —
                # exactly what Table 5 counts when suppression is disabled.
                self.duplicate_conn_events += 1  # chclint: disable=CHC005 — Table-5 diagnostic counter
            self._event_clocks.add(key)

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        outputs: List[Output] = [Output(packet)]
        flow = self.flow_key(packet)

        if packet.is_syn:
            initiator = packet.five_tuple.src_ip
            yield from state.update("pending", flow, "set", (initiator, packet.clock))
            return outputs

        verdict: Optional[bool] = None  # True = success, False = refused
        if packet.is_syn_ack:
            verdict = True
        elif packet.is_rst:
            verdict = False
        if verdict is None:
            return outputs

        pending = yield from state.read("pending", flow)
        if pending is None:
            return outputs  # RST/SYN-ACK without an attempt we saw
        initiator, _attempt_clock = pending
        yield from state.update("pending", flow, "set", None)
        self._note_event(packet, initiator)

        factor = LIKELIHOOD_DOWN if verdict else LIKELIHOOD_UP
        likelihood = yield from state.update(
            "likelihood", (initiator,), "mul_clamp", factor, need_result=True
        )
        if likelihood is not None and likelihood >= self.threshold:
            if initiator not in self.flagged:
                self.flagged[initiator] = packet.clock or 0
                alert = packet.copy()
                alert.payload = f"portscan:{initiator}"
                outputs.append(Output(alert, edge="alert"))
        return outputs
