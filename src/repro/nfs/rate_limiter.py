"""Per-host rate limiter (the Figure 1 chain's tail stage).

A deterministic windowed limiter: at most ``limit`` packets per host per
``window`` of logical clock values (logical clocks are per-packet, so a
window of W clocks is a window of W chain-input packets — deterministic
under replay, unlike wall-clock token buckets, which is why the paper's
Appendix A pushes non-deterministic inputs into the store).
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.core.nf_api import (
    FastState,
    MatchActionForm,
    NetworkFunction,
    Output,
    StateAPI,
)
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import Packet


class RateLimiter(NetworkFunction):
    """See module docstring."""

    name = "ratelimiter"

    def __init__(self, limit: int = 64, window: int = 256):
        if limit <= 0 or window <= 0:
            raise ValueError("limit and window must be positive")
        self.limit = limit
        self.window = window
        self.dropped = 0

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "bucket": StateObjectSpec(
                "bucket",
                Scope.CROSS_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                scope_fields=("src_ip",),
                initial_value=None,
            ),
        }

    def custom_operations(self):
        window = self.window

        def rate_probe(value, when, limit):
            """Count packets within the current clock window; returns
            whether this packet is admitted."""
            window_start, count = value if value else (0, 0)
            if when - window_start >= window:
                window_start, count = when, 0
            admitted = count < limit
            if admitted:
                count += 1
            return (window_start, count), admitted

        return {"rate_probe": rate_probe}

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        host = packet.five_tuple.src_ip
        admitted = yield from state.update(
            "bucket", (host,), "rate_probe", packet.clock, self.limit, need_result=True
        )
        if not admitted:
            self.dropped += 1  # chclint: disable=CHC005 — host-local diagnostic counter
            return []
        return [Output(packet)]

    # -- declarative fast path (§6) -------------------------------------

    def fast_match(self, packet: Packet) -> bool:
        return True  # probe applies to warm buckets; cold hosts decline

    def fast_action(self, packet: Packet, state: FastState):
        """Mirror of :meth:`process`: one ``rate_probe`` on the host's
        (exclusively cached) bucket. A cold bucket raises NotFast."""
        host = packet.five_tuple.src_ip
        admitted = state.update(
            "bucket", (host,), "rate_probe", packet.clock, self.limit,
            need_result=True,
        )
        if not admitted:
            self.dropped += 1  # chclint: disable=CHC005 — host-local diagnostic counter
            return []
        return [Output(packet)]

    def match_action_form(self) -> MatchActionForm:
        return MatchActionForm(
            tables=("bucket",), match=self.fast_match, action=self.fast_action
        )
