"""DPI engine (the §4.1 scope-partitioning example, Figure 1b).

Carries exactly the two state objects the paper uses to explain
scope-aware partitioning:

* "records of whether a connection is successful or not" — scope is the
  full 5-tuple (per-flow);
* "the number of connections per host" — scope is src IP (cross-flow).

So ``.scope()`` returns ``[5-tuple, (src_ip,)]``, finest first, and the
framework first tries to split DPI traffic by src IP (no shared state at
all), refining toward the 5-tuple only when load is uneven — the exact
walk §4.1 describes.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

from repro.core.nf_api import NetworkFunction, Output, StateAPI
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import Packet


class Dpi(NetworkFunction):
    """See module docstring."""

    name = "dpi"

    def __init__(self, conns_per_host_alert: int = 64):
        self.conns_per_host_alert = conns_per_host_alert

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "conn_success": StateObjectSpec(
                "conn_success",
                Scope.PER_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                initial_value=None,
            ),
            "conns_per_host": StateObjectSpec(
                "conns_per_host",
                Scope.CROSS_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                scope_fields=("src_ip",),
                initial_value=0,
            ),
        }

    @staticmethod
    def flow_key(packet: Packet) -> Tuple:
        return packet.five_tuple.canonical().key()

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        outputs: List[Output] = []
        if packet.is_syn:
            count = yield from state.update(
                "conns_per_host", (packet.five_tuple.src_ip,), "incr", 1,
                need_result=True,
            )
            if count is not None and count >= self.conns_per_host_alert:
                alert = packet.copy()
                alert.payload = f"dpi-many-conns:{packet.five_tuple.src_ip}"
                outputs.append(Output(alert, edge="alert"))
        if packet.is_syn_ack:
            yield from state.update("conn_success", self.flow_key(packet), "set", True)
        elif packet.is_rst:
            yield from state.update("conn_success", self.flow_key(packet), "set", False)
        return outputs
