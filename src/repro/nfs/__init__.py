"""Network functions reimplemented atop CHC (§6, Table 4).

The four NFs the paper evaluates:

* :class:`~repro.nfs.nat.Nat` — dynamic NAT: shared free-port list,
  per-connection port mapping, L3/L4 packet counters.
* :class:`~repro.nfs.portscan.PortscanDetector` — TRW-style scan detector
  (Schechter et al. [26]): per-host maliciousness likelihood, per-flow
  pending-connection state.
* :class:`~repro.nfs.trojan_detector.TrojanDetector` — the off-path
  sequence detector of De Carli et al. [12]: per-host SSH→FTP→IRC
  activity ordering, reasoned over logical clocks (R4).
* :class:`~repro.nfs.load_balancer.LoadBalancer` — least-connections L4
  balancer: per-server active connections and byte counters,
  per-connection server binding.

Plus the chain NFs the paper's scenarios use (Figures 1–2):
firewall, scrubber, IDS, rate limiter, and DPI.
"""

from repro.nfs.dpi import Dpi
from repro.nfs.firewall import Firewall, FirewallRule
from repro.nfs.ids import Ids
from repro.nfs.load_balancer import LoadBalancer
from repro.nfs.nat import Nat
from repro.nfs.portscan import PortscanDetector
from repro.nfs.rate_limiter import RateLimiter
from repro.nfs.scrubber import Scrubber
from repro.nfs.trojan_detector import TrojanDetector

__all__ = [
    "Dpi",
    "Firewall",
    "FirewallRule",
    "Ids",
    "LoadBalancer",
    "Nat",
    "PortscanDetector",
    "RateLimiter",
    "Scrubber",
    "TrojanDetector",
]
