"""Stateful firewall (Figure 2's chain head).

Rule-based admission plus connection tracking: outbound connections
punch a per-flow hole so return traffic is admitted even when no rule
matches it (standard stateful-firewall behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.core.nf_api import (
    FastState,
    MatchActionForm,
    NetworkFunction,
    Output,
    StateAPI,
)
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import Packet


@dataclass(frozen=True)
class FirewallRule:
    """First match wins. ``None`` fields are wildcards."""

    action: str  # "allow" | "deny"
    src_prefix: Optional[str] = None
    dst_prefix: Optional[str] = None
    dst_port: Optional[int] = None
    proto: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        ft = packet.five_tuple
        if self.src_prefix is not None and not ft.src_ip.startswith(self.src_prefix):
            return False
        if self.dst_prefix is not None and not ft.dst_ip.startswith(self.dst_prefix):
            return False
        if self.dst_port is not None and ft.dst_port != self.dst_port:
            return False
        if self.proto is not None and ft.proto != self.proto:
            return False
        return True


DEFAULT_RULES = (
    FirewallRule(action="allow", src_prefix="10."),       # outbound from campus
    FirewallRule(action="allow", src_prefix="172.16."),   # lab subnets
    FirewallRule(action="allow", src_prefix="52."),       # EC2 return paths
)


class Firewall(NetworkFunction):
    """See module docstring."""

    name = "firewall"

    def __init__(self, rules: Tuple[FirewallRule, ...] = DEFAULT_RULES, default_action: str = "deny"):
        self.rules = tuple(rules)
        self.default_action = default_action
        self.denied = 0

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "conn_allowed": StateObjectSpec(
                "conn_allowed",
                Scope.PER_FLOW,
                AccessPattern.READ_HEAVY,
                initial_value=False,
            ),
            "denied_count": StateObjectSpec(
                "denied_count",
                Scope.CROSS_FLOW,
                AccessPattern.WRITE_MOSTLY,
                scope_fields=(),
                initial_value=0,
            ),
        }

    @staticmethod
    def flow_key(packet: Packet) -> Tuple:
        return packet.five_tuple.canonical().key()

    def _static_action(self, packet: Packet) -> str:
        for rule in self.rules:
            if rule.matches(packet):
                return rule.action
        return self.default_action

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        flow = self.flow_key(packet)
        allowed = yield from state.read("conn_allowed", flow)
        if allowed:
            return [Output(packet)]
        if self._static_action(packet) == "allow":
            if packet.is_syn:
                # Punch the per-flow hole: return traffic is admitted even
                # when no static rule matches it.
                yield from state.update("conn_allowed", flow, "set", True)
            return [Output(packet)]
        self.denied += 1  # chclint: disable=CHC005 — host-local diagnostic counter
        yield from state.update("denied_count", None, "incr", 1)
        return []

    # -- declarative fast path (§6) -------------------------------------

    def fast_match(self, packet: Packet) -> bool:
        return True  # all firewall logic is expressible; cold flows decline dynamically

    def fast_action(self, packet: Packet, state: FastState):
        """Mirror of :meth:`process` against locally cached state."""
        flow = self.flow_key(packet)
        allowed = state.get("conn_allowed", flow)
        if allowed:
            return [Output(packet)]
        if self._static_action(packet) == "allow":
            if packet.is_syn:
                state.update("conn_allowed", flow, "set", True)
            return [Output(packet)]
        self.denied += 1  # chclint: disable=CHC005 — host-local diagnostic counter
        state.update("denied_count", None, "incr", 1)
        return []

    def match_action_form(self) -> MatchActionForm:
        return MatchActionForm(
            tables=("conn_allowed", "denied_count"),
            match=self.fast_match,
            action=self.fast_action,
        )
