"""Off-path trojan detector (§2.1, §6, after De Carli et al. [12]).

Flags a host that performs, **in this order**: (1) open an SSH
connection, (2) transfer files over FTP, (3) generate IRC activity. A
different order does not indicate the trojan.

Chain-wide ordering (R4) is exactly what this NF needs: it reasons about
the *true arrival order at the network input*, which intervening NFs may
have destroyed by the time the copy reaches it. With ``use_clocks=True``
(CHC) the detector orders events by the packets' logical clocks — earliest
activity per kind is a clock minimum, so late/reordered arrival does not
change the verdict. With ``use_clocks=False`` (what any framework without
chain-wide clocks can offer) it falls back to local arrival order and can
both miss trojans and flag decoys, which is the §7.3 R4 result.

State (Table 4): per-host arrival time of SSH, FTP and IRC activity —
cross-flow, write/read often, updated via a custom offloaded operation.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.nf_api import NetworkFunction, Output, StateAPI
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import PORT_FTP, PORT_IRC, PORT_SSH, Packet

ACTIVITY_PORTS = {PORT_SSH: "ssh", PORT_FTP: "ftp", PORT_IRC: "irc"}


class TrojanDetector(NetworkFunction):
    """See module docstring."""

    name = "trojan"

    def __init__(self, use_clocks: bool = True):
        self.use_clocks = use_clocks
        self.detections: Dict[str, float] = {}  # host -> detection time
        self._arrival_counter = 0

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        return {
            "host_activity": StateObjectSpec(
                "host_activity",
                Scope.CROSS_FLOW,
                AccessPattern.READ_WRITE_OFTEN,
                scope_fields=("src_ip",),
                initial_value=None,
            ),
        }

    def custom_operations(self):
        def record_activity(value, activity, when):
            """Keep the earliest observed time per activity kind."""
            record = dict(value) if value else {}
            if activity not in record or when < record[activity]:
                record[activity] = when
            return record, record

        return {"record_activity": record_activity}

    def _activity_of(self, packet: Packet) -> Optional[str]:
        port = packet.five_tuple.dst_port
        kind = ACTIVITY_PORTS.get(port)
        if kind is None:
            return None
        # Activity is recorded at connection granularity (the signature is
        # a sequence of *connections* [12]); per-packet recording would add
        # a state op to every FTP/IRC data packet for no extra signal.
        return kind if packet.is_syn else None

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        self._arrival_counter += 1  # chclint: disable=CHC005 — host-local diagnostic counter
        activity = self._activity_of(packet)
        if activity is None:
            return []  # off-path: no forwarding, nothing to record

        host = packet.five_tuple.src_ip
        when = packet.clock if (self.use_clocks and packet.clock) else self._arrival_counter
        record = yield from state.update(
            "host_activity", (host,), "record_activity", activity, when, need_result=True
        )
        if record and self._matches_signature(record):
            if host not in self.detections:
                self.detections[host] = when
                alert = packet.copy()
                alert.payload = f"trojan:{host}"
                return [Output(alert, edge="alert")]
        return []

    @staticmethod
    def _matches_signature(record: Dict[str, float]) -> bool:
        if not all(kind in record for kind in ("ssh", "ftp", "irc")):
            return False
        return record["ssh"] < record["ftp"] < record["irc"]
