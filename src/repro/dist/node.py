"""Shared scaffolding for fabric child processes (shard and store node).

Both child kinds follow the same shape: parse a config JSON from argv,
dial the coordinator's control port, announce themselves with a HELLO, and
then run a *paced* event loop that advances their discrete-event simulator
against real wall-clock time.

Pacing is the bridge between the two time domains. Inside a process the
engine is still the deterministic :class:`~repro.simnet.engine.Simulator`;
across processes, messages travel on real sockets with real latencies and
real failures. The :class:`Pacer` maps wall-clock to virtual microseconds
at a fixed ``time_scale`` (real microseconds per virtual microsecond), and
the loop only runs the simulator up to the current virtual time. That
keeps virtual timeouts meaningful against real-world delays: at the
default scale of 20, the store client's ~56 virtual-ms blocking retry
budget spans more than a real second — enough to ride out a SIGKILL'd
store node being respawned, which is exactly the fidelity the fabric is
built to exercise.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.dist.transport import Connection, control_frame

#: Real microseconds per virtual microsecond. 20x dilation keeps the
#: engine's hardcoded virtual budgets (root clock persist at 200 virtual
#: us, blocking store retries totalling ~56 virtual ms) comfortably above
#: real socket RTTs and fault windows of a few hundred real ms.
DEFAULT_TIME_SCALE = 20.0

#: Upper bound on one select() sleep: even with an idle simulator the loop
#: wakes often enough to notice control commands and reconnect deadlines.
MAX_IDLE_WAIT_S = 0.002


class Pacer:
    """Maps monotonic wall-clock time onto virtual simulator time."""

    def __init__(self, time_scale: float = DEFAULT_TIME_SCALE) -> None:
        self.time_scale = time_scale
        self._start_real = time.perf_counter()

    def now_real(self) -> float:
        """Seconds since the pacer started (monotonic)."""
        return time.perf_counter() - self._start_real

    def virtual_now(self) -> float:
        """The virtual time (us) the simulator is allowed to reach."""
        return self.now_real() * 1e6 / self.time_scale

    def real_wait_for(self, virtual_due: Optional[float]) -> float:
        """Seconds to sleep until ``virtual_due`` is reachable (bounded)."""
        if virtual_due is None:
            return MAX_IDLE_WAIT_S
        ahead_virtual = virtual_due - self.virtual_now()
        if ahead_virtual <= 0:
            return 0.0
        return min(MAX_IDLE_WAIT_S, ahead_virtual * self.time_scale / 1e6)


class ControlLink:
    """The child's side of the coordinator's control channel.

    A reconnecting :class:`Connection` that replays its HELLO after every
    (re)connect, splits inbound control frames into command dicts, and
    offers a ``reply`` helper that echoes the command's ``cmd_id`` so the
    fabric can match responses to requests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        role: str,
        name: str,
        seed: int = 0,
        extra_hello: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.role = role
        self.name = name
        self._hello_extra = dict(extra_hello or {})
        self.conn = Connection(
            host,
            port,
            seed=seed,
            label=f"control:{name}",
            on_connect=self._send_hello,
        )

    def _send_hello(self, conn: Connection) -> None:
        body = {
            "type": "hello",
            "role": self.role,
            "name": self.name,
            "pid": os.getpid(),
        }
        body.update(self._hello_extra)
        conn.send_obj(control_frame(body))

    def set_hello_extra(self, **fields: Any) -> None:
        """Update HELLO fields replayed on future reconnects (and announce
        them now if currently connected)."""
        self._hello_extra.update(fields)
        if self.conn.connected:
            self._send_hello(self.conn)

    def poll(self, now_real: float) -> List[Dict[str, Any]]:
        """Pump the socket; return inbound control command bodies."""
        commands: List[Dict[str, Any]] = []
        for frame in self.conn.pump(now_real):
            if isinstance(frame, dict) and frame.get("k") == "c":
                commands.append(frame["b"])
        return commands

    def reply(self, command: Dict[str, Any], body: Dict[str, Any]) -> None:
        self.conn.send_obj(
            control_frame(
                {"type": "reply", "cmd_id": command.get("cmd_id"), "body": body}
            )
        )

    def notify(self, kind: str, **fields: Any) -> None:
        """Unsolicited event toward the fabric (no cmd_id)."""
        body: Dict[str, Any] = {"type": kind}
        body.update(fields)
        self.conn.send_obj(control_frame(body))

    def fileno(self) -> Optional[int]:
        return self.conn.fileno()

    def close(self) -> None:
        self.conn.close()


def load_config() -> Dict[str, Any]:
    """Child-process config: a single JSON object as argv[1]."""
    if len(sys.argv) < 2:
        raise SystemExit(f"usage: {sys.argv[0]} '<config json>'")
    config = json.loads(sys.argv[1])
    if not isinstance(config, dict):
        raise SystemExit("config must be a JSON object")
    # post-mortem hook: the fabric (or a human) can SIGUSR1 a wedged child
    # to get a stack dump in its log file without killing it
    import faulthandler
    import signal

    faulthandler.register(signal.SIGUSR1)
    return config
