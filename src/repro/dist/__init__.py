"""repro.dist — real-process shard fabric over real sockets (DESIGN.md §13).

The in-process simulator (everything under ``repro.core`` / ``repro.simnet``)
proves the chain-correctness protocols against *simulated* failures. This
package re-hosts the same engine, unchanged, across OS process boundaries:

* :mod:`repro.dist.transport` — length-prefixed frames over localhost TCP
  with an explicit tagged-union codec and seeded-backoff reconnect. The
  **only** module in the repo allowed to touch raw sockets (chclint CHC008).
* :mod:`repro.dist.shard` — a worker process hosting one chain replica's
  engine loop; its store-client traffic is bridged onto the transport, so
  the RPC retransmission / ``RpcGaveUp`` path and the store's dedup log
  absorb real socket loss exactly as they absorb simulated loss.
* :mod:`repro.dist.store_node` — the shared store-cluster process: a
  :class:`~repro.store.datastore.DatastoreInstance` behind a listening
  socket, with a frame write-ahead log replayed on restart.
* :mod:`repro.dist.fabric` — the coordinator: spawns the processes, injects
  real faults (SIGKILL, severed/refused connections, half-open stalls),
  restarts victims, and runs the PR-3 invariant checkers across process
  boundaries at quiescence.

``tools/dist_campaign.py`` sweeps seeds x scenarios on the §11 CampaignPool
conventions and writes ``BENCH_dist.json``.
"""

from repro.dist.transport import (  # noqa: F401
    CodecError,
    Connection,
    FrameDecoder,
    Listener,
    TransportCounters,
    decode_body,
    decode_value,
    encode_frame,
    encode_value,
)

__all__ = [
    "CodecError",
    "Connection",
    "FrameDecoder",
    "Listener",
    "TransportCounters",
    "decode_body",
    "decode_value",
    "encode_frame",
    "encode_value",
]
