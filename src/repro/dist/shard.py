"""A shard process: one chain replica's engine loop behind real sockets.

Each shard hosts an unmodified :class:`~repro.core.chain_runtime.ChainRuntime`
— entry/exit NF instances, a root with its packet log and clock, the real
:class:`~repro.store.client.StoreClient` machinery — and bridges every
store-bound message onto a framed-TCP connection to the shared store node.
The bridge is deliberately dumb: it moves envelopes, nothing else. All
delivery semantics (RPC retransmission and :class:`RpcGaveUp`, flush
retransmission against the dedup log, commit-signal accounting) come from
the in-process protocol stack, now absorbing *real* socket loss instead of
simulated loss.

Durable identity across SIGKILL: the shard appends every injected packet
to an injection ledger and every egressed packet to an egress ledger
(flushed line-JSON) **before/as** the event happens. A respawned
incarnation reads its own injection ledger and resumes each flow at the
last injected sequence + 1 — packets that were in flight when the process
died are simply lost (bounded, provable loss: the fabric checks final
state *trails* the reference by at most the window, never exceeds it, and
egress stays exactly-once because no identity is ever injected twice).
Its root resumes above the clock floor the store derived from the dead
incarnation's traces, so reissued clocks never collide in the dedup log.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.campaign import EntryCounterNF, SinkCounterNF
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.dist.node import ControlLink, Pacer, load_config
from repro.dist.transport import Connection, data_frame, wait_readable
from repro.simnet.engine import Simulator
from repro.simnet.network import Envelope, Network
from repro.store.cluster import StoreCluster
from repro.store.operations import default_registry
from repro.traffic.packet import FiveTuple, Packet

#: Injection window: at most this many packets in flight (injected, not
#: yet egressed) per shard. Bounds what a SIGKILL can lose — the fabric's
#: loss allowance is derived from it.
INJECT_WINDOW = 16

#: Prune wire types the bridge holds back while flushes are un-ACKed (see
#: :meth:`ShardWorker._bridge_out`).
_PRUNE_TYPES = ("PruneRequest", "BatchedPruneRequest")


class RemoteStoreHandle:
    """Stand-in for a store instance that lives in another process.

    Carries exactly what the local routing layer needs — a name for the
    cluster map and an operation registry for custom-op registration. All
    actual traffic to it is bridged over the socket by :class:`ShardWorker`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.registry = default_registry()
        self.alive = True
        self.lame_duck = False


def build_shard_chain(prefix: str) -> LogicalChain:
    """The campaign workload chain with shard-prefixed vertex names, so
    several shards can share one store without key collisions."""
    chain = LogicalChain(f"dist-{prefix}")
    chain.add_vertex(f"{prefix}-entry", EntryCounterNF, entry=True)
    chain.add_vertex(f"{prefix}-exit", SinkCounterNF)
    chain.add_edge(f"{prefix}-entry", f"{prefix}-exit")
    return chain


def build_shard_runtime(
    sim: Simulator,
    prefix: str,
    shard_index: int,
    seed: int,
    remote_store: Optional[str] = None,
    root_clock_resume: Optional[int] = None,
    **overrides: Any,
) -> ChainRuntime:
    """A shard's runtime: local engine, root ``root{shard_index}``, and —
    when ``remote_store`` is given — a store cluster of one remote handle.

    The fabric's in-process reference runs call this too, with
    ``remote_store=None``: identical chain, identical params, local store.
    """
    params = dict(seed=seed, root_id_base=shard_index, root_clock_resume=root_clock_resume)
    params.update(overrides)
    cluster = None
    if remote_store is not None:
        cluster = StoreCluster([RemoteStoreHandle(remote_store)])  # type: ignore[list-item]
    return ChainRuntime(
        sim,
        build_shard_chain(prefix),
        params=RuntimeParams(**params),
        store_cluster=cluster,
    )


def workload_order(
    prefix: str, n_packets: int, n_flows: int
) -> List[Tuple[int, int, str]]:
    """The full injection order: (flow, seq, payload) triples, round-robin
    across flows, payloads stamped with the shard prefix so identities are
    globally unique across the fabric."""
    order: List[Tuple[int, int, str]] = []
    seq_per_flow = [0] * n_flows
    for index in range(n_packets):
        flow = index % n_flows
        seq_per_flow[flow] += 1
        order.append((flow, seq_per_flow[flow], f"{prefix}:f{flow}-{seq_per_flow[flow]}"))
    return order


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Line-JSON ledger entries; a torn last line (SIGKILL mid-write) is
    skipped, matching the WAL's torn-tail rule."""
    entries: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return entries


class ShardWorker:
    """One shard process: runtime + bridge + ledgers + control plane."""

    def __init__(self, config: Dict[str, Any]) -> None:
        self.config = config
        self.prefix = config["prefix"]
        self.shard_index = int(config["shard_index"])
        self.seed = int(config.get("seed", 0))
        self.store_name = config.get("store_name", "store0")
        self.n_packets = int(config.get("n_packets", 80))
        self.n_flows = int(config.get("n_flows", 6))
        self.inject_window = int(config.get("inject_window", INJECT_WINDOW))
        self.injection_ledger_path = config["injection_ledger"]
        self.egress_ledger_path = config["egress_ledger"]

        self.sim = Simulator()
        self.pacer = Pacer(float(config.get("time_scale", 20.0)))
        self.runtime = build_shard_runtime(
            self.sim,
            self.prefix,
            self.shard_index,
            self.seed,
            remote_store=self.store_name,
            root_clock_resume=config.get("root_clock_resume"),
            **config.get("runtime_overrides", {}),
        )
        self.network: Network = self.runtime.network
        self.network.default_route = self._bridge_out
        self.bridge_tx = 0
        self.bridge_rx = 0

        # resume: skip everything the previous incarnation already injected
        already = read_ledger(self.injection_ledger_path)
        last_seq: Dict[int, int] = {}
        for entry in already:
            flow = int(entry["flow"])
            last_seq[flow] = max(last_seq.get(flow, 0), int(entry["seq"]))
        self._order = [
            item
            for item in workload_order(self.prefix, self.n_packets, self.n_flows)
            if item[1] > last_seq.get(item[0], 0)
        ]
        self._order_pos = 0
        self.injected = 0  # this incarnation
        self.egressed = 0  # this incarnation
        self._egress_drained = 0  # index into runtime.egress._items
        self.started = bool(config.get("autostart", False))
        self.running = True
        self._store_recovered_pending = False
        self._held_prunes: List[Any] = []
        self._inj_fh = open(self.injection_ledger_path, "a", encoding="utf-8")
        self._egr_fh = open(self.egress_ledger_path, "a", encoding="utf-8")

        self.store_conn = Connection(
            config["store_host"],
            int(config["store_port"]),
            seed=self.seed ^ (self.shard_index << 8),
            label=f"{self.prefix}->{self.store_name}",
            on_connect=self._store_hello,
        )
        self.control = ControlLink(
            config["control_host"],
            int(config["control_port"]),
            role="shard",
            name=self.prefix,
            seed=self.seed ^ (self.shard_index << 8) ^ 1,
        )

    # -- bridging ------------------------------------------------------

    def _local_endpoints(self) -> List[str]:
        return list(self.network._inboxes) + list(self.network._callbacks)

    def _store_hello(self, conn: Connection) -> None:
        """Replayed after every (re)connect: announce every local endpoint
        name so the store node can route replies and commit signals here —
        including ``root{k}``, which may never send anything itself."""
        conn.send_obj(
            {"k": "c", "b": {"type": "hello", "names": self._local_endpoints()}}
        )

    def _bridge_out(self, envelope: Envelope) -> bool:
        if envelope.dst != self.store_name:
            return False
        frame = data_frame(envelope.src, envelope.dst, envelope.payload)
        inner = getattr(envelope.payload, "payload", None)
        if type(inner).__name__ in _PRUNE_TYPES and self._pending_flushes() > 0:
            # The race this guards: the store's commit signal (store->root)
            # and its flush ACK (store->client) travel independently, and a
            # broken socket can lose the ACK but not the signal. The root
            # then sees a full commit vector and prunes the clock — wiping
            # the store's dedup record — while the client is *still
            # retransmitting* that clock's op because the ACK never came.
            # The retransmission would re-apply. So prunes wait at the
            # bridge until every pending flush has been (re-)ACKed; they
            # are one-way fire-and-forget messages, so delaying them is
            # invisible to the root.
            self._held_prunes.append(frame)
            self.bridge_tx += 1
            return True
        self.store_conn.send_obj(frame)
        self.bridge_tx += 1
        return True

    def _release_held_prunes(self) -> None:
        if self._held_prunes and self._pending_flushes() == 0:
            for frame in self._held_prunes:
                self.store_conn.send_obj(frame)
            self._held_prunes.clear()

    def _handle_store_frame(self, frame: Any) -> None:
        if not isinstance(frame, dict) or frame.get("k") != "d":
            return
        self.bridge_rx += 1
        self.network.send(frame["s"], frame["t"], frame["p"])

    # -- workload ------------------------------------------------------

    def _inject_some(self) -> None:
        while (
            self._order_pos < len(self._order)
            and self.injected - self.egressed < self.inject_window
        ):
            flow, seq, payload = self._order[self._order_pos]
            self._order_pos += 1
            # ledger first: once a packet identity is on disk it is never
            # injected again by any future incarnation
            self._inj_fh.write(
                json.dumps({"flow": flow, "seq": seq, "payload": payload}) + "\n"
            )
            self._inj_fh.flush()
            self.runtime.inject(
                Packet(
                    FiveTuple("10.0.0.1", "52.0.0.1", 1000 + flow, 80, 6),
                    payload=payload,
                )
            )
            self.injected += 1

    def _drain_egress(self) -> None:
        items = self.runtime.egress._items
        while self._egress_drained < len(items):
            _vertex, packet = items[self._egress_drained]
            self._egress_drained += 1
            self.egressed += 1
            self._egr_fh.write(
                json.dumps({"payload": packet.payload, "clock": packet.clock}) + "\n"
            )
            self._egr_fh.flush()

    @property
    def workload_done(self) -> bool:
        return self._order_pos >= len(self._order)

    # -- control plane -------------------------------------------------

    def _pending_flushes(self) -> int:
        pending = 0
        for instance in self.runtime.instances.values():
            if not instance.alive:
                continue
            for event, _request in instance.client._pending_acks.values():
                if not event.triggered:
                    pending += 1
        return pending

    def _status(self) -> Dict[str, Any]:
        return {
            "pid": os.getpid(),
            "virtual_now": self.sim.now,
            "injected": self.injected,
            "egressed": self.egressed,
            "in_flight": self.injected - self.egressed,
            "workload_done": self.workload_done,
            "pending_flushes": self._pending_flushes(),
            "root_log": sum(len(root.log) for root in self.runtime.roots),
            "rpc": {
                "retries": self.network.rpc_retries,
                "timeouts": self.network.rpc_timeouts,
                "gaveups": self.network.rpc_gaveups,
            },
            "store_conn": self.store_conn.counters.as_dict(),
            "bridge_tx": self.bridge_tx,
            "bridge_rx": self.bridge_rx,
        }

    def _snapshot(self) -> Dict[str, Any]:
        """Serializable inputs for the cross-process invariant checkers."""
        return {
            "prefix": self.prefix,
            "alive_instances": [
                instance_id
                for instance_id, instance in self.runtime.instances.items()
                if instance.alive
            ],
            "gaveups": {
                instance.instance_id: instance.client.stats.flushes_gave_up
                for instance in self.runtime.instances.values()
                if instance.alive
            },
            "root_logs": {
                root.name: len(root.log)
                for root in self.runtime.roots
                if root.alive
            },
            "retransmissions": sum(
                instance.client.stats.retransmissions
                for instance in self.runtime.instances.values()
                if instance.alive
            ),
        }

    def _handle_command(self, command: Dict[str, Any]) -> None:
        kind = command.get("type")
        if kind == "start":
            self.started = True
            self.control.reply(command, {"ok": True})
        elif kind == "status":
            self.control.reply(command, self._status())
        elif kind == "snapshot":
            self.control.reply(command, self._snapshot())
        elif kind == "store_recovered":
            # Deferred on purpose. Marking log entries vector-unreliable
            # lets them drain on copies-processed alone, and a drained
            # entry is pruned — which wipes the store's dedup record for
            # that clock. Any flush whose ACK died with the old store is
            # still retransmitting that very clock, and a re-apply after
            # the prune would double-count it. Only once every pending
            # flush has been re-ACKed (dedup-emulated against the replayed
            # log) is it safe to let prunes fire.
            self._store_recovered_pending = True
            self.control.reply(command, {"pending_flushes": self._pending_flushes()})
        elif kind == "shutdown":
            self.control.reply(command, {"ok": True})
            self.running = False
        else:
            self.control.reply(command, {"error": f"unknown command {kind!r}"})

    # -- main loop -----------------------------------------------------

    def run(self) -> None:
        while self.running:
            now_real = self.pacer.now_real()
            for frame in self.store_conn.pump(now_real):
                self._handle_store_frame(frame)
            for command in self.control.poll(now_real):
                self._handle_command(command)
            if self.started:
                self._inject_some()
            self.sim.run(until=max(self.sim.now, self.pacer.virtual_now()))
            self._drain_egress()
            if self._store_recovered_pending and self._pending_flushes() == 0:
                self._store_recovered_pending = False
                for root in self.runtime.roots:
                    if root.alive:
                        root.note_store_recovered()
            self._release_held_prunes()
            if self.started:
                self._inject_some()
            # flush whatever the engine emitted toward the store / fabric
            now_real = self.pacer.now_real()
            for frame in self.store_conn.pump(now_real):
                self._handle_store_frame(frame)
            for command in self.control.poll(now_real):
                self._handle_command(command)
            wait_readable(
                [self.store_conn, self.control],
                self.pacer.real_wait_for(self.sim.next_event_time()),
            )
        self._inj_fh.close()
        self._egr_fh.close()
        self.store_conn.close()
        self.control.close()


def main() -> None:
    ShardWorker(load_config()).run()


if __name__ == "__main__":
    main()
