"""Campaign sweep over the distributed fabric's fault scenarios.

Fans (scenario, seed) pairs across worker processes with the same
:class:`~repro.parallel.CampaignPool` conventions every other campaign
uses (DESIGN.md §11): submission-order merge, the three-way failure
taxonomy (invariant violation / :class:`~repro.parallel.RunFailure` /
:class:`~repro.parallel.InfraFailure`), per-run timeout and crash
quarantine. Each work item is heavyweight — one fabric run spawns a
store process and N shard processes of its own — so job counts here
multiply OS processes, not just Python interpreters.

One honest deviation from §11: fabric runs measure *real* elapsed time
and real socket behaviour, so per-run ``duration_s`` and transport
counters vary run to run. The merge is still deterministic in structure
and order (submission order, key-sorted aggregates); only those measured
fields differ between repetitions, exactly like the wall-clock ``meta``
fields of the other campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.dist.fabric import DIST_SCENARIOS, DistOutcome, run_dist_scenario
from repro.parallel import CampaignPool, InfraFailure, RunFailure

__all__ = [
    "DistCampaignReport",
    "run_dist_campaign",
]


@dataclass
class _DistItem:
    scenario: str
    seed: int
    n_shards: int
    n_packets: int
    n_flows: int
    deadline_s: float

    def __repr__(self) -> str:  # shows up in InfraFailure payload entries
        return f"dist:{self.scenario}/seed={self.seed}"


def _campaign_work(item: _DistItem) -> Tuple[str, Union[DistOutcome, RunFailure]]:
    """Pool work function: run one fabric item, never raise.

    :class:`~repro.dist.fabric.FabricError` is already folded into
    ``DistOutcome.infra_error`` by the fabric itself; anything else
    escaping is a harness bug recorded as a ``RunFailure``.
    """
    try:
        outcome = run_dist_scenario(
            item.scenario,
            item.seed,
            n_shards=item.n_shards,
            n_packets=item.n_packets,
            n_flows=item.n_flows,
            deadline_s=item.deadline_s,
        )
        return ("outcome", outcome)
    except Exception as exc:
        return (
            "failure",
            RunFailure(
                scenario=item.scenario,
                seed=item.seed,
                error=f"{type(exc).__name__}: {exc}",
            ),
        )


@dataclass
class DistCampaignReport:
    """Merged results of one distributed-fabric sweep."""

    outcomes: List[DistOutcome] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    infra_failures: List[InfraFailure] = field(default_factory=list)
    pool_stats: Optional[Dict[str, Any]] = None

    @property
    def total_violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    @property
    def fabric_infra_errors(self) -> List[DistOutcome]:
        return [o for o in self.outcomes if o.infra_error is not None]

    @property
    def ok(self) -> bool:
        return (
            self.total_violations == 0
            and not self.fabric_infra_errors
            and not self.failures
            and not self.infra_failures
        )

    def as_dict(self) -> Dict[str, Any]:
        scenarios: Dict[str, Dict[str, Any]] = {}
        for outcome in self.outcomes:
            row = scenarios.setdefault(
                outcome.scenario,
                {
                    "runs": 0,
                    "ok_runs": 0,
                    "violations": 0,
                    "infra_errors": 0,
                    "retransmissions": 0,
                    "socket_resets": 0,
                    "respawned_children": 0,
                    "duration_s_total": 0.0,
                },
            )
            row["runs"] += 1
            row["ok_runs"] += 1 if outcome.ok else 0
            row["violations"] += len(outcome.violations)
            row["infra_errors"] += 1 if outcome.infra_error else 0
            row["duration_s_total"] = round(
                row["duration_s_total"] + outcome.duration_s, 3
            )
            for shard in outcome.per_shard.values():
                row["retransmissions"] += shard.get("retransmissions", 0)
            for conn in outcome.evidence.get("socket_faults", {}).values():
                row["socket_resets"] += conn.get("resets", 0)
            for pids in outcome.evidence.get("pids", {}).values():
                row["respawned_children"] += max(0, len(set(pids)) - 1)
        return {
            "scenarios": {name: scenarios[name] for name in sorted(scenarios)},
            "runs": [outcome.as_dict() for outcome in self.outcomes],
            "violations": [
                {
                    "scenario": outcome.scenario,
                    "seed": outcome.seed,
                    **violation.as_dict(),
                }
                for outcome in self.outcomes
                for violation in outcome.violations
            ],
            "failures": [failure.as_dict() for failure in self.failures],
            "infra_failures": [
                failure.as_dict() for failure in self.infra_failures
            ],
        }


def run_dist_campaign(
    seeds: Sequence[int],
    scenario_names: Optional[Sequence[str]] = None,
    jobs: Union[int, str, None] = "1",
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[DistOutcome], None]] = None,
    n_shards: int = 2,
    n_packets: int = 48,
    n_flows: int = 4,
    deadline_s: float = 90.0,
) -> DistCampaignReport:
    """Sweep ``seeds`` x the named fault scenarios (default: all)."""
    names = list(scenario_names) if scenario_names else sorted(DIST_SCENARIOS)
    for name in names:
        if name not in DIST_SCENARIOS:
            raise ValueError(f"unknown dist scenario {name!r}")
    items = [
        _DistItem(
            scenario=name,
            seed=seed,
            n_shards=n_shards,
            n_packets=n_packets,
            n_flows=n_flows,
            deadline_s=deadline_s,
        )
        for name in names
        for seed in seeds
    ]
    pool = CampaignPool(jobs=jobs, timeout_s=timeout_s, retries=retries)

    def on_result(result) -> None:
        if progress is not None and result.value[0] == "outcome":
            progress(result.value[1])

    pooled = pool.map(_campaign_work, items, progress=on_result)
    report = DistCampaignReport(
        infra_failures=list(pooled.infra_failures),
        pool_stats=pooled.stats(),
    )
    for result in pooled.results:  # submission order == serial order
        kind, payload = result.value
        if kind == "outcome":
            report.outcomes.append(payload)
        else:
            report.failures.append(payload)
    return report
