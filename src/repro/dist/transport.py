"""Framed-TCP transport for the distributed shard fabric (DESIGN.md §13).

This is the **only** module in the repository allowed to import ``socket``
(enforced by chclint CHC008): every byte that crosses a process boundary
goes through the codec and framing below, so the wire format is explicit,
versionable, and — unlike bare pickle — cannot execute anything on decode.

Wire format
-----------

A *frame* is a 4-byte big-endian length followed by a UTF-8 JSON body. The
body is a tagged-union encoding of plain data:

* scalars (``None``/bool/int/float/str) encode as themselves,
* lists as JSON arrays,
* tuples as ``{"__t__": [...]}``,
* dicts as ``{"__d__": [[k, v], ...]}`` (key order preserved, non-string
  keys allowed),
* registered message classes (the store wire protocol, the RPC ``_Wire``
  envelope, packets) as ``{"__c__": "<Name>", "a": [field values...]}``.

Anything else is a :class:`CodecError` — an unserializable payload is a bug
in the sender, not something to smuggle through with pickle.

Connections
-----------

:class:`Connection` is the client side (shard → store, child → fabric):
non-blocking, with a bounded send queue and seeded-backoff reconnect. A
torn connection is *not* an error surfaced to the engine — frames buffer
(and overflow is counted, never silently dropped) while the transport
reconnects; the simulation-level RPC retransmission and flush dedup are
what guarantee delivery semantics end to end, exactly as they do against
simulated loss. :class:`Listener`/:class:`Peer` are the server side, with
the fault hooks the fabric scripts use: refuse-accepts windows, read
stalls (half-open emulation), and hard resets (``SO_LINGER 0`` → RST).
"""

from __future__ import annotations

import dataclasses
import errno
import json
import random
import select
import socket
import struct
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.root import BatchedDeleteRequest, DeleteRequest
from repro.simnet.rpc import _Wire
from repro.store import protocol as _proto
from repro.traffic.packet import FiveTuple, Packet

MAX_FRAME_BYTES = 16 * 1024 * 1024
_LEN = struct.Struct(">I")

#: Reconnect backoff (real seconds): base * 1.6^attempt + seeded jitter,
#: capped. Small enough that a restarted store node is re-reached well
#: inside the engine's retransmission budget at the default time scale.
RECONNECT_BASE_S = 0.02
RECONNECT_CAP_S = 0.25


class CodecError(TypeError):
    """Payload not representable in the explicit wire codec."""


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------

_BY_NAME: Dict[str, Tuple[type, Tuple[str, ...]]] = {}
_BY_TYPE: Dict[type, Tuple[str, Tuple[str, ...]]] = {}


def register_message(cls: type, fields: Optional[Tuple[str, ...]] = None) -> type:
    """Register a message class for codec transport (idempotent)."""
    if fields is None:
        fields = tuple(f.name for f in dataclasses.fields(cls))
    _BY_NAME[cls.__name__] = (cls, fields)
    _BY_TYPE[cls] = (cls.__name__, fields)
    return cls


def _register_protocol() -> None:
    for name in (
        "OpRequest",
        "OpResult",
        "BatchedOpRequest",
        "Overloaded",
        "ReadRequest",
        "ReadResult",
        "WriteRequest",
        "OwnerRequest",
        "BulkOwnerMove",
        "CloneRegistration",
        "TakeoverRequest",
        "WatchRequest",
        "UnwatchRequest",
        "LockReadRequest",
        "WriteUnlockRequest",
        "CallbackMessage",
        "CommitSignal",
        "BatchedCommitSignal",
        "PruneRequest",
        "BatchedPruneRequest",
        "NonDetRequest",
        "SnapshotRequest",
        "CheckpointControl",
    ):
        register_message(getattr(_proto, name))
    register_message(DeleteRequest)
    register_message(BatchedDeleteRequest)
    register_message(FiveTuple)
    register_message(Packet)
    register_message(_Wire, fields=("kind", "request_id", "payload", "ok"))


_register_protocol()


def encode_value(obj: Any) -> Any:
    """Lower ``obj`` into the JSON-safe tagged-union form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, list):
        return [encode_value(item) for item in obj]
    if isinstance(obj, tuple):
        return {"__t__": [encode_value(item) for item in obj]}
    if isinstance(obj, dict):
        return {"__d__": [[encode_value(k), encode_value(v)] for k, v in obj.items()]}
    entry = _BY_TYPE.get(type(obj))
    if entry is not None:
        name, fields = entry
        return {"__c__": name, "a": [encode_value(getattr(obj, f)) for f in fields]}
    raise CodecError(
        f"type {type(obj).__name__!r} is not wire-encodable; register it or "
        "send plain data (bare pickle is banned on the wire, CHC008)"
    )


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, list):
        return [decode_value(item) for item in obj]
    if isinstance(obj, dict):
        if "__t__" in obj:
            return tuple(decode_value(item) for item in obj["__t__"])
        if "__d__" in obj:
            return {decode_value(k): decode_value(v) for k, v in obj["__d__"]}
        if "__c__" in obj:
            name = obj["__c__"]
            entry = _BY_NAME.get(name)
            if entry is None:
                raise CodecError(f"unknown wire message type {name!r}")
            cls, fields = entry
            values = [decode_value(item) for item in obj["a"]]
            return cls(**dict(zip(fields, values)))
        raise CodecError(f"untagged dict on the wire: {sorted(obj)!r}")
    return obj


def encode_frame(body: Any) -> bytes:
    """Length-prefixed frame bytes for one codec value."""
    payload = json.dumps(encode_value(body), separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return _LEN.pack(len(payload)) + payload


def decode_body(payload: bytes) -> Any:
    return decode_value(json.loads(payload.decode("utf-8")))


def data_frame(src: str, dst: str, payload: Any) -> Any:
    """A simulation envelope crossing a process boundary."""
    return {"k": "d", "s": src, "t": dst, "p": payload}


def control_frame(body: Dict[str, Any]) -> Any:
    """A fabric/control-plane message (plain data, no sim payloads)."""
    return {"k": "c", "b": body}


class FrameDecoder:
    """Incremental length-prefixed frame reassembly from a byte stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Any]:
        """Append raw bytes; return every now-complete decoded frame body."""
        self._buffer.extend(data)
        frames: List[Any] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"incoming frame of {length} bytes exceeds limit")
            if len(self._buffer) < _LEN.size + length:
                return frames
            payload = bytes(self._buffer[_LEN.size:_LEN.size + length])
            del self._buffer[:_LEN.size + length]
            frames.append(decode_body(payload))


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class TransportCounters:
    """Socket-level evidence the fabric records per scenario: a partition
    shows up as ``connect_failures``/``resets``, a heal as ``reconnects``,
    a half-open stall as ``resets`` after silence. These are the "a real
    socket actually broke" witnesses the acceptance criteria require."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    connects: int = 0
    reconnects: int = 0
    connect_failures: int = 0
    resets: int = 0
    tx_dropped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


_RETRYABLE_ERRNOS = {errno.EAGAIN, errno.EWOULDBLOCK, errno.EINPROGRESS}


# ---------------------------------------------------------------------------
# client side: reconnecting connection
# ---------------------------------------------------------------------------


class Connection:
    """Outbound framed-TCP connection with seeded-backoff reconnect.

    ``send_obj`` never blocks and never raises on a torn socket: frames
    queue (bounded; overflow counted in ``tx_dropped``) and drain once
    :meth:`pump` re-establishes the connection. ``on_connect`` fires after
    every successful (re)connect — callers use it to replay their HELLO.
    """

    def __init__(
        self,
        host: str,
        port: int,
        seed: int = 0,
        label: str = "",
        on_connect: Optional[Callable[["Connection"], None]] = None,
        max_queue: int = 65536,
        connect_timeout_s: float = 0.25,
    ) -> None:
        self.host = host
        self.port = port
        self.label = label
        self.on_connect = on_connect
        self.counters = TransportCounters()
        self._rng = random.Random(seed ^ 0x7D157)
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._txq: Deque[bytes] = deque()
        # the frame currently being written: the complete frame bytes
        # (re-queued whole after a reconnect — a half-sent frame cannot be
        # resumed on a fresh connection, the peer's decoder saw none of it)
        # and the yet-unsent tail on the *current* socket
        self._tx_inflight = b""
        self._tx_partial = b""
        self._max_queue = max_queue
        self._connect_timeout_s = connect_timeout_s
        self._next_attempt_real = 0.0
        self._attempt = 0
        self._closed = False

    # -- state ---------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def fileno(self) -> Optional[int]:
        return self._sock.fileno() if self._sock is not None else None

    def close(self) -> None:
        self._closed = True
        self._drop_socket(count_reset=False)

    # -- sending -------------------------------------------------------

    def send_obj(self, body: Any) -> None:
        frame = encode_frame(body)
        if len(self._txq) >= self._max_queue:
            self._txq.popleft()
            self.counters.tx_dropped += 1
        self._txq.append(frame)

    # -- pumping -------------------------------------------------------

    def pump(self, now_real: float) -> List[Any]:
        """Progress connect/flush/read; return decoded inbound frames."""
        if self._closed:
            return []
        if self._sock is None:
            if now_real < self._next_attempt_real:
                return []
            if not self._try_connect():
                self._schedule_retry(now_real)
                return []
        self._flush()
        if self._sock is None:  # flush hit a reset
            self._schedule_retry(now_real)
            return []
        frames = self._read()
        if self._sock is None:
            self._schedule_retry(now_real)
        return frames

    def _try_connect(self) -> bool:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(self._connect_timeout_s)
            sock.connect((self.host, self.port))
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            sock.close()
            self.counters.connect_failures += 1
            return False
        self._sock = sock
        self._decoder = FrameDecoder()
        if self._tx_inflight:
            # a frame was mid-send when the old connection died: replay it
            # from the first byte on the new one
            self._txq.appendleft(self._tx_inflight)
            self._tx_inflight = b""
        self._tx_partial = b""
        self.counters.connects += 1
        if self.counters.connects > 1:
            self.counters.reconnects += 1
        self._attempt = 0
        if self.on_connect is not None:
            self.on_connect(self)
        return True

    def _schedule_retry(self, now_real: float) -> None:
        delay = min(RECONNECT_CAP_S, RECONNECT_BASE_S * (1.6 ** self._attempt))
        delay *= 1.0 + 0.25 * self._rng.random()
        self._attempt += 1
        self._next_attempt_real = now_real + delay

    def _drop_socket(self, count_reset: bool = True) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            if count_reset:
                self.counters.resets += 1

    def _flush(self) -> None:
        sock = self._sock
        if sock is None:
            return
        while self._tx_partial or self._txq:
            if not self._tx_partial:
                self._tx_inflight = self._txq.popleft()
                self._tx_partial = self._tx_inflight
            chunk = self._tx_partial
            try:
                sent = sock.send(chunk)
            except OSError as exc:
                if exc.errno in _RETRYABLE_ERRNOS:
                    return  # tail stays queued for this same socket
                # connection died mid-frame: _tx_inflight holds the whole
                # frame and _try_connect re-queues it after reconnect
                self._drop_socket()
                return
            if sent == len(chunk):
                self._tx_partial = b""
                self._tx_inflight = b""
                self.counters.frames_sent += 1
                self.counters.bytes_sent += sent
            else:
                self._tx_partial = chunk[sent:]
                self.counters.bytes_sent += sent

    def _read(self) -> List[Any]:
        sock = self._sock
        if sock is None:
            return []
        frames: List[Any] = []
        while True:
            try:
                data = sock.recv(65536)
            except OSError as exc:
                if exc.errno in _RETRYABLE_ERRNOS:
                    return frames
                self._drop_socket()
                return frames
            if not data:  # orderly EOF: peer closed — treat as reset
                self._drop_socket()
                return frames
            self.counters.bytes_received += len(data)
            decoded = self._decoder.feed(data)
            self.counters.frames_received += len(decoded)
            frames.extend(decoded)


# ---------------------------------------------------------------------------
# server side: listener + accepted peers
# ---------------------------------------------------------------------------


class Peer:
    """One accepted connection on the server side."""

    def __init__(self, sock: socket.socket, address: Tuple[str, int]) -> None:
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock: Optional[socket.socket] = sock
        self.address = address
        self._decoder = FrameDecoder()
        self._txq: Deque[bytes] = deque()
        self._tx_partial = b""
        #: Half-open fault hook: while True the server never reads this
        #: peer — bytes pile up in kernel buffers exactly as they would
        #: toward a host that silently went away.
        self.stalled = False
        self.counters = TransportCounters()

    @property
    def alive(self) -> bool:
        return self._sock is not None

    def fileno(self) -> Optional[int]:
        return self._sock.fileno() if self._sock is not None else None

    def send_obj(self, body: Any) -> None:
        if self._sock is None:
            return
        self._txq.append(encode_frame(body))

    def pump(self) -> List[Any]:
        """Flush pending writes and read inbound frames (unless stalled)."""
        self._flush()
        if self._sock is None or self.stalled:
            return []
        frames: List[Any] = []
        while self._sock is not None:
            try:
                data = self._sock.recv(65536)
            except OSError as exc:
                if exc.errno in _RETRYABLE_ERRNOS:
                    break
                self._close(count_reset=True)
                break
            if not data:
                self._close(count_reset=True)
                break
            self.counters.bytes_received += len(data)
            decoded = self._decoder.feed(data)
            self.counters.frames_received += len(decoded)
            frames.extend(decoded)
        return frames

    def _flush(self) -> None:
        sock = self._sock
        if sock is None:
            return
        while self._tx_partial or self._txq:
            chunk = self._tx_partial or self._txq.popleft()
            try:
                sent = sock.send(chunk)
            except OSError as exc:
                if exc.errno in _RETRYABLE_ERRNOS:
                    self._tx_partial = chunk
                    return
                self._close(count_reset=True)
                return
            if sent == len(chunk):
                self._tx_partial = b""
                self.counters.frames_sent += 1
                self.counters.bytes_sent += sent
            else:
                self._tx_partial = chunk[sent:]
                self.counters.bytes_sent += sent

    def _close(self, count_reset: bool) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None
        if count_reset:
            self.counters.resets += 1

    def close(self, reset: bool = False) -> None:
        """Close; ``reset=True`` sets SO_LINGER 0 so the peer sees RST —
        the fabric's 'sever' fault, a real ECONNRESET, not a polite FIN."""
        if self._sock is None:
            return
        if reset:
            try:
                self._sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
            except OSError:
                pass
        self._close(count_reset=False)


class Listener:
    """Non-blocking accept socket with a refuse-window fault hook."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 64) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._sock.setblocking(False)
        self.host = host
        self.accepted = 0
        self.refused = 0
        #: While real-time is before this deadline, every incoming connect
        #: is accepted and immediately reset — the client observes a dead
        #: destination (connection refused/reset), the 'partition' fault.
        self.refuse_until_real = 0.0

    @property
    def port(self) -> int:
        return self._sock.getsockname()[1]

    def fileno(self) -> int:
        return self._sock.fileno()

    def accept_ready(self, now_real: float) -> List[Peer]:
        peers: List[Peer] = []
        while True:
            try:
                sock, address = self._sock.accept()
            except OSError as exc:
                if exc.errno in _RETRYABLE_ERRNOS:
                    return peers
                return peers
            if now_real < self.refuse_until_real:
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                    )
                except OSError:
                    pass
                sock.close()
                self.refused += 1
                continue
            self.accepted += 1
            peers.append(Peer(sock, address))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def wait_readable(objs: List[Any], timeout_s: float) -> None:
    """Sleep until any of ``objs`` (Connections/Peers/Listeners) is readable
    or ``timeout_s`` elapses. Centralised here so no other module needs the
    socket layer to pace its loop."""
    fds = []
    for obj in objs:
        fd = obj.fileno() if not isinstance(obj, int) else obj
        if fd is not None:
            fds.append(fd)
    if not fds:
        time.sleep(timeout_s)
        return
    try:
        select.select(fds, [], [], max(0.0, timeout_s))
    except (OSError, ValueError):
        pass


def make_socketpair() -> Tuple[socket.socket, socket.socket]:
    """A connected AF_UNIX pair for unit tests (satellite: ECONNRESET
    coverage without a full fabric). Exposed here so tests do not need to
    import socket themselves."""
    return socket.socketpair()
