"""The distributed-fabric coordinator: spawn, break, restart, check.

:func:`run_dist_scenario` executes one (scenario, seed) pair:

1. spawn one store-node process and N shard processes (real ``Popen``
   children, real localhost TCP between them),
2. start traffic, wait for ~30% of it to egress, then inject the
   scenario's fault — ``SIGKILL`` a shard, ``SIGKILL`` the store (respawned
   with WAL recovery on the same port), sever + refuse connections
   (partition), or stall reads (half-open) — and restart/heal,
3. poll shards to quiescence (workload done, nothing in flight, no
   pending flushes, root logs drained, egress stable),
4. collect per-shard snapshots, store snapshot, and socket-level evidence,
   then run the PR-3 invariant checkers *across process boundaries*:
   each shard's egress ledger and store-side state slice are compared
   against an in-process reference run that injects exactly the packets
   the shard's injection ledger proves were injected.

The acceptance bar this module exists to clear: every fault scenario
kills a real OS process or breaks a real socket, witnessed by distinct
PIDs across incarnations and non-zero transport fault counters — and the
invariants still hold.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.chaos.invariants import (
    InvariantViolation,
    check_egress_complete,
    check_exactly_once,
    check_flow_ordering,
    check_gaveup_counts,
    check_log_lengths,
    check_loss_free_state,
    check_ownership_map,
    chain_state,
)
from repro.dist.shard import (
    INJECT_WINDOW,
    build_shard_runtime,
    read_ledger,
)
from repro.dist.transport import Listener, Peer, control_frame
from repro.simnet.engine import Simulator

_INTERNAL_MARKERS = ("__root__", "__move__", "__nondet__")


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


@dataclass
class DistScenario:
    """One fault pattern and the invariant profile it must satisfy."""

    name: str
    description: str
    fault: str  # "none" | "shard_kill" | "store_kill" | "partition" | "stall"
    #: counters may trail the reference by this many increments (bounded,
    #: provable loss: the injection window plus flushes the dead client
    #: never got to retransmit), never exceed it
    loss_allowance: int = 0
    expect_log_drained: bool = True
    #: evidence the scenario must produce to count as "really happened"
    requires_distinct_pids: Optional[str] = None  # child name whose pid must change
    requires_socket_faults: bool = False
    fault_window_s: float = 0.25


DIST_SCENARIOS: Dict[str, DistScenario] = {
    spec.name: spec
    for spec in (
        DistScenario(
            "no-fault",
            "clean distributed run; verdicts must match the in-process simulator",
            fault="none",
        ),
        DistScenario(
            "shard-kill",
            "SIGKILL one shard mid-traffic; respawn resumes its flows past "
            "the injection ledger with a clock floor from the store",
            fault="shard_kill",
            loss_allowance=3 * INJECT_WINDOW,
            requires_distinct_pids="s0",
        ),
        DistScenario(
            "store-kill",
            "SIGKILL the store mid-traffic; respawn replays the frame WAL "
            "on the same port; clients retransmit into the dedup log",
            fault="store_kill",
            requires_distinct_pids="store0",
        ),
        DistScenario(
            "partition",
            "sever shard->store connections and refuse reconnects for a "
            "window, then heal; retransmission absorbs the gap",
            fault="partition",
            requires_socket_faults=True,
        ),
        DistScenario(
            "stall",
            "half-open store: stop reading shard connections for a window, "
            "then reset; clients see silence, then reconnect",
            fault="stall",
            requires_socket_faults=True,
        ),
    )
}


@dataclass
class DistOutcome:
    """Everything one fabric run produced, JSON-serializable."""

    scenario: str
    seed: int
    violations: List[InvariantViolation] = field(default_factory=list)
    infra_error: Optional[str] = None
    evidence: Dict[str, Any] = field(default_factory=dict)
    per_shard: Dict[str, Any] = field(default_factory=dict)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.infra_error is None and not self.violations

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
            "infra_error": self.infra_error,
            "evidence": self.evidence,
            "per_shard": self.per_shard,
            "duration_s": round(self.duration_s, 3),
        }


# ---------------------------------------------------------------------------
# child-process bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class Child:
    role: str
    name: str
    proc: Optional[subprocess.Popen] = None
    peer: Optional[Peer] = None
    hellos: List[Dict[str, Any]] = field(default_factory=list)
    pids: List[int] = field(default_factory=list)

    @property
    def hello(self) -> Optional[Dict[str, Any]]:
        return self.hellos[-1] if self.hellos else None


class FabricError(RuntimeError):
    """Infrastructure failure: the fabric itself (not an invariant) broke."""


class Fabric:
    """Process lifecycle + control plane for one scenario run."""

    def __init__(
        self,
        scenario: DistScenario,
        seed: int,
        n_shards: int = 2,
        n_packets: int = 48,
        n_flows: int = 4,
        time_scale: float = 20.0,
        workdir: Optional[str] = None,
        deadline_s: float = 90.0,
        keep_workdir: bool = False,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.n_shards = n_shards
        self.n_packets = n_packets
        self.n_flows = n_flows
        self.time_scale = time_scale
        self.deadline_s = deadline_s
        self.keep_workdir = keep_workdir
        self._own_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-dist-")
        self.listener = Listener(port=0)
        self.peers: List[Peer] = []
        self.children: Dict[str, Child] = {}
        self._replies: Dict[int, Dict[str, Any]] = {}
        self._cmd_seq = 0
        self._t0 = time.monotonic()
        #: runtime knobs shared by shards and their reference runs; the
        #: longer retransmit period widens the real-time budget (100
        #: flush retries x 1ms virtual x scale 20 = 2s real) that must
        #: absorb a store respawn or fault window
        self.runtime_overrides = {"retransmit_timeout_us": 1000.0}

    # -- low-level control plane ---------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _pump(self, wait_s: float = 0.01) -> None:
        deadline = time.monotonic() + wait_s
        while True:
            self.peers.extend(self.listener.accept_ready(self._now()))
            for peer in self.peers:
                for frame in peer.pump():
                    self._route_frame(peer, frame)
            self.peers = [p for p in self.peers if p.alive]
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(0.005, remaining))

    def _route_frame(self, peer: Peer, frame: Any) -> None:
        if not isinstance(frame, dict) or frame.get("k") != "c":
            return
        body = frame.get("b") or {}
        kind = body.get("type")
        if kind == "hello":
            child = self.children.get(body.get("name", ""))
            if child is not None:
                child.peer = peer
                child.hellos.append(body)
                pid = body.get("pid")
                if isinstance(pid, int) and pid not in child.pids:
                    child.pids.append(pid)
        elif kind == "reply":
            cmd_id = body.get("cmd_id")
            if isinstance(cmd_id, int):
                self._replies[cmd_id] = body.get("body") or {}

    def call(
        self, name: str, command: Dict[str, Any], timeout_s: float = 10.0
    ) -> Dict[str, Any]:
        """Send a control command to a child and wait for its reply."""
        child = self.children[name]
        if child.peer is None or not child.peer.alive:
            raise FabricError(f"no live control connection to {name}")
        self._cmd_seq += 1
        cmd_id = self._cmd_seq
        child.peer.send_obj(control_frame(dict(command, cmd_id=cmd_id)))
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            self._pump(0.01)
            if cmd_id in self._replies:
                return self._replies.pop(cmd_id)
        raise FabricError(f"{name} did not answer {command.get('type')!r}")

    # -- spawning ------------------------------------------------------

    def _spawn(self, role: str, name: str, config: Dict[str, Any]) -> Child:
        child = self.children.setdefault(name, Child(role=role, name=name))
        module = "repro.dist.store_node" if role == "store" else "repro.dist.shard"
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        log = open(os.path.join(self.workdir, f"{name}.log"), "ab")
        child.proc = subprocess.Popen(
            [sys.executable, "-m", module, json.dumps(config)],
            stdout=log,
            stderr=log,
            env=env,
        )
        log.close()
        return child

    def _wait_for_hello(self, name: str, generation: int, timeout_s: float = 20.0) -> Dict[str, Any]:
        deadline = time.monotonic() + timeout_s
        child = self.children[name]
        while time.monotonic() < deadline:
            self._pump(0.02)
            if len(child.hellos) >= generation:
                return child.hellos[generation - 1]
            if child.proc is not None and child.proc.poll() is not None:
                raise FabricError(
                    f"{name} exited with {child.proc.returncode} before hello "
                    f"(see {self.workdir}/{name}.log)"
                )
        raise FabricError(f"timed out waiting for hello from {name}")

    def _store_config(self, recover: bool, data_port: int) -> Dict[str, Any]:
        return {
            "name": "store0",
            "control_host": "127.0.0.1",
            "control_port": self.listener.port,
            "data_port": data_port,
            "seed": self.seed,
            "time_scale": self.time_scale,
            "wal_path": os.path.join(self.workdir, "store0.wal"),
            "recover": recover,
        }

    def _shard_config(
        self, index: int, resume_floor: Optional[int], store_port: int
    ) -> Dict[str, Any]:
        prefix = f"s{index}"
        return {
            "prefix": prefix,
            "shard_index": index,
            "seed": self.seed + index,
            "control_host": "127.0.0.1",
            "control_port": self.listener.port,
            "store_host": "127.0.0.1",
            "store_port": store_port,
            "store_name": "store0",
            "n_packets": self.n_packets,
            "n_flows": self.n_flows,
            "time_scale": self.time_scale,
            "injection_ledger": os.path.join(self.workdir, f"{prefix}.inj"),
            "egress_ledger": os.path.join(self.workdir, f"{prefix}.egr"),
            "root_clock_resume": resume_floor,
            "autostart": resume_floor is not None,  # respawns resume at once
            "runtime_overrides": self.runtime_overrides,
        }

    # -- scenario steps ------------------------------------------------

    def _shard_names(self) -> List[str]:
        return [f"s{i}" for i in range(self.n_shards)]

    def _statuses(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: self.call(name, {"type": "status"}) for name in self._shard_names()
        }

    def _total_egressed(self) -> int:
        total = 0
        for name in self._shard_names():
            total += len(read_ledger(os.path.join(self.workdir, f"{name}.egr")))
        return total

    def _wait_for_progress(self, fraction: float, timeout_s: float = 45.0) -> None:
        target = max(1, int(fraction * self.n_shards * self.n_packets))
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._total_egressed() >= target:
                return
            self._pump(0.05)
        raise FabricError(
            f"traffic never reached {target} egressed packets "
            f"(got {self._total_egressed()})"
        )

    def _inject_fault(self, store_port: int) -> None:
        fault = self.scenario.fault
        window = self.scenario.fault_window_s
        if fault == "none":
            return
        if fault == "shard_kill":
            victim = self.children["s0"]
            assert victim.proc is not None
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.wait()
            # clock floor: highest sequence the store can prove the dead
            # incarnation's root reached — the respawn resumes above it
            floor = int(
                self.call("store0", {"type": "clock_floor", "root_id": 0})["floor"]
            )
            generation = len(victim.hellos) + 1
            self._spawn("shard", "s0", self._shard_config(0, floor, store_port))
            self._wait_for_hello("s0", generation)
        elif fault == "store_kill":
            victim = self.children["store0"]
            assert victim.proc is not None
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.wait()
            generation = len(victim.hellos) + 1
            # same port: shard Connections reconnect to the recovered store
            self._spawn("store", "store0", self._store_config(True, store_port))
            self._wait_for_hello("store0", generation)
            for name in self._shard_names():
                self.call(name, {"type": "store_recovered"})
        elif fault == "partition":
            self.call("store0", {"type": "refuse", "duration_s": window})
            self.call("store0", {"type": "sever"})
            time.sleep(window + 0.1)
            self._pump(0.1)
            # commit signals dropped inside the window are gone for good
            # (one-way, unretransmitted): release the parity requirement
            for name in self._shard_names():
                self.call(name, {"type": "store_recovered"})
        elif fault == "stall":
            self.call("store0", {"type": "stall", "duration_s": window})
            time.sleep(window + 0.1)
            self._pump(0.1)
            for name in self._shard_names():
                self.call(name, {"type": "store_recovered"})
        else:  # pragma: no cover - registry is closed
            raise FabricError(f"unknown fault {fault!r}")

    def _wait_for_quiescence(self, timeout_s: float) -> Dict[str, Dict[str, Any]]:
        deadline = time.monotonic() + timeout_s
        last_egressed = -1
        while time.monotonic() < deadline:
            statuses = self._statuses()
            settled = all(
                s["workload_done"]
                and s["in_flight"] == 0
                and s["pending_flushes"] == 0
                and s["root_log"] == 0
                for s in statuses.values()
            )
            egressed = self._total_egressed()
            if settled and egressed == last_egressed:
                return statuses
            last_egressed = egressed if settled else -1
            self._pump(0.15)
        raise FabricError(
            "quiescence not reached: "
            + json.dumps({k: v for k, v in self._statuses().items()})[:500]
        )

    # -- verification --------------------------------------------------

    def _reference_snapshot(
        self, index: int
    ) -> Tuple[Dict[str, Any], List[Tuple[Optional[str], int]]]:
        """In-process reference: inject exactly the ledgered packets."""
        from repro.traffic.packet import FiveTuple, Packet

        prefix = f"s{index}"
        ledger = read_ledger(os.path.join(self.workdir, f"{prefix}.inj"))
        sim = Simulator()
        runtime = build_shard_runtime(
            sim, prefix, index, self.seed + index, **self.runtime_overrides
        )

        def source():
            for entry in ledger:
                runtime.inject(
                    Packet(
                        FiveTuple(
                            "10.0.0.1", "52.0.0.1", 1000 + int(entry["flow"]), 80, 6
                        ),
                        payload=entry["payload"],
                    )
                )
                yield sim.timeout(3.0)

        sim.process(source(), name=f"{prefix}-reference-source")
        sim.run()
        state = chain_state(runtime)
        egress = [
            (packet.payload, packet.clock) for _v, packet in runtime.egress._items
        ]
        return state, egress

    def _check_shard(
        self,
        index: int,
        store_snapshot: Dict[str, Any],
        shard_snapshot: Dict[str, Any],
    ) -> List[InvariantViolation]:
        prefix = f"s{index}"
        allowance = self.scenario.loss_allowance
        ref_state, ref_egress = self._reference_snapshot(index)
        egress = [
            (entry["payload"], int(entry["clock"]))
            for entry in read_ledger(os.path.join(self.workdir, f"{prefix}.egr"))
        ]
        dist_state = {
            key: value
            for key, value in store_snapshot["data"].items()
            if key.startswith(f"{prefix}-")
            and not any(marker in key for marker in _INTERNAL_MARKERS)
        }
        owners = {
            key: owner
            for key, owner in store_snapshot["owners"].items()
            if key.startswith(f"{prefix}-")
        }
        violations: List[InvariantViolation] = []
        violations += check_exactly_once(egress)
        violations += check_flow_ordering(egress)
        violations += check_egress_complete(egress, ref_egress, allowance)
        violations += check_loss_free_state(dist_state, ref_state, allowance)
        violations += check_ownership_map(
            owners, shard_snapshot["alive_instances"], store_name="store0"
        )
        violations += check_gaveup_counts(shard_snapshot["gaveups"])
        if self.scenario.expect_log_drained:
            violations += check_log_lengths(shard_snapshot["root_logs"])
        return violations

    def _check_evidence(
        self,
        statuses: Dict[str, Dict[str, Any]],
        store_status: Dict[str, Any],
    ) -> Tuple[Dict[str, Any], List[InvariantViolation]]:
        evidence: Dict[str, Any] = {
            "pids": {name: child.pids for name, child in self.children.items()},
            "store_counters": store_status.get("counters", {}),
            "shard_conn": {
                name: status.get("store_conn", {}) for name, status in statuses.items()
            },
        }
        problems: List[InvariantViolation] = []
        needs_pid = self.scenario.requires_distinct_pids
        if needs_pid is not None:
            pids = self.children[needs_pid].pids
            if len(set(pids)) < 2:
                problems.append(
                    InvariantViolation(
                        "fault-evidence",
                        f"{needs_pid} was supposed to be killed and respawned "
                        f"but its pid history is {pids}",
                    )
                )
        if self.scenario.requires_socket_faults:
            faults = 0
            for status in statuses.values():
                conn = status.get("store_conn", {})
                faults += conn.get("resets", 0) + conn.get("connect_failures", 0)
            store_counters = store_status.get("counters", {})
            faults += store_counters.get("refused", 0)
            if faults == 0:
                problems.append(
                    InvariantViolation(
                        "fault-evidence",
                        "scenario requires broken sockets but no resets, "
                        "connect failures, or refused connects were counted",
                    )
                )
        evidence["socket_faults"] = {
            name: {
                "resets": status.get("store_conn", {}).get("resets", 0),
                "reconnects": status.get("store_conn", {}).get("reconnects", 0),
                "connect_failures": status.get("store_conn", {}).get(
                    "connect_failures", 0
                ),
            }
            for name, status in statuses.items()
        }
        return evidence, problems

    # -- lifecycle -----------------------------------------------------

    def _shutdown_children(self) -> None:
        for child in self.children.values():
            if child.proc is None or child.proc.poll() is not None:
                continue
            try:
                if child.peer is not None and child.peer.alive:
                    self.call(child.name, {"type": "shutdown"}, timeout_s=2.0)
            except FabricError:
                pass
        deadline = time.monotonic() + 3.0
        for child in self.children.values():
            if child.proc is None:
                continue
            while child.proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.02)
            if child.proc.poll() is None:
                child.proc.kill()
                child.proc.wait()

    def run(self) -> DistOutcome:
        started = time.monotonic()
        outcome = DistOutcome(scenario=self.scenario.name, seed=self.seed)
        try:
            self._spawn("store", "store0", self._store_config(False, 0))
            store_hello = self._wait_for_hello("store0", 1)
            store_port = int(store_hello["data_port"])
            for index in range(self.n_shards):
                self._spawn(
                    "shard", f"s{index}", self._shard_config(index, None, store_port)
                )
            for index in range(self.n_shards):
                self._wait_for_hello(f"s{index}", 1)
            for name in self._shard_names():
                self.call(name, {"type": "start"})

            if self.scenario.fault != "none":
                self._wait_for_progress(0.3)
                self._inject_fault(store_port)

            statuses = self._wait_for_quiescence(self.deadline_s)
            store_status = self.call("store0", {"type": "status"})
            store_snapshot = self.call("store0", {"type": "snapshot"})
            shard_snapshots = {
                name: self.call(name, {"type": "snapshot"})
                for name in self._shard_names()
            }

            evidence, problems = self._check_evidence(statuses, store_status)
            outcome.evidence = evidence
            outcome.violations.extend(problems)
            for index in range(self.n_shards):
                shard_violations = self._check_shard(
                    index, store_snapshot, shard_snapshots[f"s{index}"]
                )
                outcome.violations.extend(shard_violations)
                outcome.per_shard[f"s{index}"] = {
                    "injected": len(
                        read_ledger(os.path.join(self.workdir, f"s{index}.inj"))
                    ),
                    "egressed": len(
                        read_ledger(os.path.join(self.workdir, f"s{index}.egr"))
                    ),
                    "violations": len(shard_violations),
                    "retransmissions": shard_snapshots[f"s{index}"].get(
                        "retransmissions", 0
                    ),
                }
        except FabricError as exc:
            outcome.infra_error = str(exc)
        finally:
            try:
                self._shutdown_children()
            finally:
                self.listener.close()
                if self._own_workdir and not self.keep_workdir:
                    shutil.rmtree(self.workdir, ignore_errors=True)
        outcome.duration_s = time.monotonic() - started
        return outcome


def run_dist_scenario(
    scenario_name: str,
    seed: int,
    n_shards: int = 2,
    n_packets: int = 48,
    n_flows: int = 4,
    time_scale: float = 20.0,
    deadline_s: float = 90.0,
    workdir: Optional[str] = None,
    keep_workdir: bool = False,
) -> DistOutcome:
    """Run one (scenario, seed) pair end to end; see module docstring."""
    scenario = DIST_SCENARIOS[scenario_name]
    fabric = Fabric(
        scenario,
        seed,
        n_shards=n_shards,
        n_packets=n_packets,
        n_flows=n_flows,
        time_scale=time_scale,
        deadline_s=deadline_s,
        workdir=workdir,
        keep_workdir=keep_workdir,
    )
    return fabric.run()


def main() -> None:  # pragma: no cover - debug entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scenario", choices=sorted(DIST_SCENARIOS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--packets", type=int, default=48)
    parser.add_argument("--keep-workdir", action="store_true")
    args = parser.parse_args()
    outcome = run_dist_scenario(
        args.scenario,
        args.seed,
        n_shards=args.shards,
        n_packets=args.packets,
        keep_workdir=args.keep_workdir,
    )
    print(json.dumps(outcome.as_dict(), indent=2))
    raise SystemExit(0 if outcome.ok else 1)


if __name__ == "__main__":
    main()
