"""The shared datastore process of the distributed shard fabric.

Hosts one real :class:`~repro.store.datastore.DatastoreInstance` — the
exact engine the in-process simulator uses, unchanged — behind a listening
socket. Shard processes bridge their store-client traffic here; replies,
commit signals, and watch callbacks flow back over the same connections.

Durability model (matches the paper's recovery assumptions): every
*mutating* inbound frame is appended to a frame write-ahead log **before**
it is dispatched into the engine. When the fabric SIGKILLs this process
and respawns it with ``recover: true``, the new process replays the log
into a fresh instance with its RPC output muted, which rebuilds ``_data``,
the ownership map, the clock-keyed dedup log, and the recorded
non-deterministic values. Replay is idempotent against torn tails: a
mutation whose frame hit the log but whose ACK never reached the client is
retransmitted by the client and suppressed by the dedup log, exactly the
emulation path of §5.3.

Fault hooks (driven by the fabric over the control channel) break *real*
sockets: ``sever`` RST-closes live shard connections, ``refuse`` makes the
listener reset every new connect for a window (a partition, from the
shard's point of view), and ``stall`` stops reading from peers while
keeping the sockets open (a half-open host).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.clock import clock_root, clock_sequence
from repro.core.root import Root
from repro.dist.node import ControlLink, Pacer, load_config
from repro.dist.transport import (
    FrameDecoder,
    Listener,
    Peer,
    data_frame,
    encode_frame,
    wait_readable,
)
from repro.simnet.engine import Simulator
from repro.simnet.network import Envelope, Link, Network
from repro.store.datastore import DatastoreInstance

#: Wire payload types whose effects change store state — these (and only
#: these) are WAL-logged. Reads and snapshots are harmless to lose.
#: Prunes are deliberately NOT logged: they only reclaim dedup-log memory,
#: and replaying one would wipe the (key, clock) dedup entry that a
#: retransmitted duplicate logged *after* it in the WAL still needs — the
#: replay would then re-apply the duplicate. Skipping them keeps replay
#: idempotent at the cost of retaining pruned entries until the next prune.
_MUTATING_TYPES = (
    "OpRequest",
    "BatchedOpRequest",
    "WriteRequest",
    "OwnerRequest",
    "BulkOwnerMove",
    "CloneRegistration",
    "TakeoverRequest",
    "WatchRequest",
    "UnwatchRequest",
    "LockReadRequest",
    "WriteUnlockRequest",
    "NonDetRequest",
)


def _is_mutating(payload: Any) -> bool:
    wire_payload = getattr(payload, "payload", None)
    return type(wire_payload).__name__ in _MUTATING_TYPES


class FrameWAL:
    """Append-only log of encoded frames, replayable across process death.

    No fsync: the crash model is process kill, not host power loss, and a
    torn tail (a frame cut mid-write by SIGKILL) is simply skipped on
    replay — the client never saw an ACK for it and retransmits.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.appended = 0
        self._fh = open(path, "ab")

    def append(self, frame_bytes: bytes) -> None:
        self._fh.write(frame_bytes)
        self._fh.flush()
        self.appended += 1

    def close(self) -> None:
        self._fh.close()

    @staticmethod
    def read_frames(path: str) -> List[Any]:
        if not os.path.exists(path):
            return []
        decoder = FrameDecoder()
        with open(path, "rb") as fh:
            data = fh.read()
        # feed in one chunk; an incomplete tail simply never completes
        return decoder.feed(data)


class StoreNode:
    """One store process: engine + listener + WAL + fault hooks."""

    def __init__(self, config: Dict[str, Any]) -> None:
        self.config = config
        self.name = config.get("name", "store0")
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            Link(latency_us=float(config.get("local_link_us", 2.0))),
            seed=int(config.get("seed", 0)),
        )
        self.store = DatastoreInstance(
            self.sim,
            self.network,
            self.name,
            n_threads=int(config.get("store_threads", 4)),
            op_service_us=float(config.get("store_op_service_us", 0.196)),
            root_endpoint="root{root_id}",
            dedup_enabled=True,
            seed=int(config.get("seed", 0)),
            inflight_limit=config.get("store_inflight_limit"),
        )
        self.pacer = Pacer(float(config.get("time_scale", 20.0)))
        self.listener = Listener(port=int(config.get("data_port", 0)))
        self.peers: List[Peer] = []
        self.routes: Dict[str, Peer] = {}
        self.wal = FrameWAL(config["wal_path"])
        self.network.default_route = self._bridge_out
        self.bridge_tx = 0
        self.bridge_rx = 0
        self.stall_until_real: Optional[float] = None
        self.running = True
        self.control = ControlLink(
            config["control_host"],
            int(config["control_port"]),
            role="store",
            name=self.name,
            seed=int(config.get("seed", 0)),
            extra_hello={"data_port": self.listener.port},
        )

    # -- bridging ------------------------------------------------------

    def _bridge_out(self, envelope: Envelope) -> bool:
        """Engine → socket: replies and signals to remote shard endpoints."""
        peer = self.routes.get(envelope.dst)
        if peer is None or not peer.alive:
            # no live route: drop, exactly like a network loss — the
            # client-side retransmission machinery owns recovery
            return False
        peer.send_obj(data_frame(envelope.src, envelope.dst, envelope.payload))
        self.bridge_tx += 1
        return True

    def _handle_peer_frame(self, peer: Peer, frame: Any) -> None:
        if not isinstance(frame, dict):
            return
        if frame.get("k") == "c":
            body = frame.get("b") or {}
            if body.get("type") == "hello":
                for endpoint_name in body.get("names", ()):
                    self.routes[endpoint_name] = peer
            return
        if frame.get("k") != "d":
            return
        src, dst, payload = frame["s"], frame["t"], frame["p"]
        self.routes[src] = peer  # passive route learning
        if _is_mutating(payload):
            self.wal.append(encode_frame(data_frame(src, dst, payload)))
        self.bridge_rx += 1
        self.network.send(src, dst, payload)

    # -- recovery ------------------------------------------------------

    def recover(self) -> int:
        """Replay the WAL into the fresh engine with output muted."""
        frames = FrameWAL.read_frames(self.wal.path)
        self.store.endpoint.mute_output = True
        saved_limit = self.store.inflight_limit
        self.store.inflight_limit = None
        for frame in frames:
            if isinstance(frame, dict) and frame.get("k") == "d":
                self.network.send(frame["s"], frame["t"], frame["p"])
        self.sim.run()
        self.store.endpoint.mute_output = False
        self.store.inflight_limit = saved_limit
        return len(frames)

    # -- control commands ----------------------------------------------

    def _clock_floor(self, root_id: int) -> int:
        """Highest clock sequence this store has any trace of for a root.

        A restarted shard resumes its clock above this floor so reissued
        clocks can never collide with dedup-log entries left by its dead
        incarnation (the distributed analogue of footnote 5's skip-ahead).
        """
        floor = 0
        persisted = self.store._data.get(Root.recovered_clock_key(root_id))
        if isinstance(persisted, int):
            floor = max(floor, persisted)
        for clock in self.store._log_clocks:
            if clock_root(clock) == root_id:
                floor = max(floor, clock_sequence(clock))
        for per_key in self.store._ts.values():
            for clock in per_key.values():
                if clock_root(clock) == root_id:
                    floor = max(floor, clock_sequence(clock))
        for clock, _purpose in self.store._nondet:
            if clock_root(clock) == root_id:
                floor = max(floor, clock_sequence(clock))
        return floor

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "data": dict(self.store._data),
            "owners": dict(self.store._owners),
            "update_log_entries": len(self.store._update_log),
            "stats": {
                "ops_applied": self.store.stats.ops_applied,
                "ops_emulated": self.store.stats.ops_emulated,
                "overload_rejections": self.store.stats.overload_rejections,
            },
        }

    def _counters(self) -> Dict[str, Any]:
        totals: Dict[str, int] = {}
        for peer in self.peers:
            for field_name, value in peer.counters.as_dict().items():
                totals[field_name] = totals.get(field_name, 0) + value
        return {
            "peer_totals": totals,
            "accepted": self.listener.accepted,
            "refused": self.listener.refused,
            "bridge_tx": self.bridge_tx,
            "bridge_rx": self.bridge_rx,
            "wal_appended": self.wal.appended,
        }

    def _handle_command(self, command: Dict[str, Any]) -> None:
        kind = command.get("type")
        now_real = self.pacer.now_real()
        if kind == "status":
            self.control.reply(
                command,
                {
                    "pid": os.getpid(),
                    "virtual_now": self.sim.now,
                    "counters": self._counters(),
                    "stats": self._snapshot()["stats"],
                },
            )
        elif kind == "snapshot":
            self.control.reply(command, self._snapshot())
        elif kind == "clock_floor":
            self.control.reply(
                command, {"floor": self._clock_floor(int(command["root_id"]))}
            )
        elif kind == "sever":
            severed = 0
            for peer in self.peers:
                if peer.alive:
                    peer.close(reset=True)
                    severed += 1
            self.control.reply(command, {"severed": severed})
        elif kind == "refuse":
            self.listener.refuse_until_real = now_real + float(
                command.get("duration_s", 0.3)
            )
            self.control.reply(command, {"until": self.listener.refuse_until_real})
        elif kind == "stall":
            self.stall_until_real = now_real + float(command.get("duration_s", 0.3))
            stalled = 0
            for peer in self.peers:
                if peer.alive:
                    peer.stalled = True
                    stalled += 1
            self.control.reply(command, {"stalled": stalled})
        elif kind == "shutdown":
            self.control.reply(command, {"ok": True})
            self.running = False
        else:
            self.control.reply(command, {"error": f"unknown command {kind!r}"})

    # -- main loop -----------------------------------------------------

    def _end_stall(self) -> None:
        """Stall window over: RST every stalled peer so clients reconnect."""
        for peer in self.peers:
            if peer.stalled:
                peer.stalled = False
                if peer.alive:
                    peer.close(reset=True)
        self.stall_until_real = None

    def run(self) -> None:
        if self.config.get("recover"):
            replayed = self.recover()
            self.control.set_hello_extra(recovered_frames=replayed)
        while self.running:
            now_real = self.pacer.now_real()
            if self.stall_until_real is not None and now_real >= self.stall_until_real:
                self._end_stall()
            self.peers.extend(self.listener.accept_ready(now_real))
            for peer in self.peers:
                for frame in peer.pump():
                    self._handle_peer_frame(peer, frame)
            for command in self.control.poll(now_real):
                self._handle_command(command)
            self.sim.run(until=max(self.sim.now, self.pacer.virtual_now()))
            # flush anything the engine just emitted (and handle any command
            # that raced in — poll() results must never be discarded)
            for peer in self.peers:
                for frame in peer.pump():
                    self._handle_peer_frame(peer, frame)
            for command in self.control.poll(self.pacer.now_real()):
                self._handle_command(command)
            self.peers = [p for p in self.peers if p.alive or p.stalled]
            # stalled peers are deliberately not waited on: their readable
            # bytes must sit unread for the whole half-open window
            wait_on: List[Any] = [
                self.listener,
                self.control,
                *[p for p in self.peers if not p.stalled],
            ]
            wait_readable(wait_on, self.pacer.real_wait_for(self.sim.next_event_time()))
        self.control.close()
        self.listener.close()
        self.wal.close()


def main() -> None:
    StoreNode(load_config()).run()


if __name__ == "__main__":
    main()
