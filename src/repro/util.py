"""Small shared utilities."""

from __future__ import annotations

import zlib
from typing import Tuple


def stable_hash(value) -> int:
    """A deterministic hash, stable across processes and runs.

    Python's built-in ``hash`` for strings is salted per process
    (``PYTHONHASHSEED``), which would make traffic partitioning and store
    sharding non-reproducible. CRC32 over the repr is plenty for load
    spreading and is identical everywhere.
    """
    if isinstance(value, bytes):
        data = value
    elif isinstance(value, str):
        data = value.encode()
    else:
        data = repr(value).encode()
    return zlib.crc32(data)


def fields_subset(partition_fields: Tuple[str, ...], scope_fields: Tuple[str, ...]) -> bool:
    """True when partitioning on ``partition_fields`` confines each
    ``scope_fields``-keyed state object to a single instance.

    Partitioning on a subset of the object's scope fields means all packets
    sharing the object's key land on one instance (the partition key is a
    function of the scope key).
    """
    return set(partition_fields) <= set(scope_fields)
