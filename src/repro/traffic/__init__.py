"""Traffic substrate: packets, flows, and synthetic traces.

The paper evaluates with two packet traces captured between a campus and
AWS EC2 (Trace1: 3.8M packets / 1.7K connections, median 368B; Trace2:
6.4M packets / 199K connections, median 1434B). Those traces are not
public, so this package generates **synthetic analogues** with matching
summary statistics — flow counts, packet-size medians, TCP/UDP mix, and
heavy-tailed flow lengths — under a seeded RNG so every experiment is
deterministic. Experiments in the paper depend only on these statistics
and on controllable event ordering (e.g. where trojan signatures sit in
the stream), all of which the generators reproduce.
"""

from repro.traffic.packet import (
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    Packet,
    SYN,
    ACK,
    FIN,
    RST,
)
from repro.traffic.flows import Flow, FlowSpec, flow_packets
from repro.traffic.trace import Trace, TraceStats, make_trace, make_trace1, make_trace2
from repro.traffic.trojan import TrojanScenario, inject_trojan_signatures
from repro.traffic.workload import ReplaySource, load_interval_us

__all__ = [
    "ACK",
    "FIN",
    "FiveTuple",
    "Flow",
    "FlowSpec",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "RST",
    "ReplaySource",
    "SYN",
    "Trace",
    "TraceStats",
    "TrojanScenario",
    "flow_packets",
    "inject_trojan_signatures",
    "load_interval_us",
    "make_trace",
    "make_trace1",
    "make_trace2",
]
