"""Trace replay at a controlled offered load.

Experiments replay a trace at "30% load" / "50% load" of the 10G line rate
(Table 5, Figures 12–13) or open-loop at full rate (Figure 10). The
:class:`ReplaySource` is a process that feeds packets to a sink callback at
the inter-arrival times that realise the requested load.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from repro.simnet.engine import Simulator
from repro.traffic.packet import Packet

LINE_RATE_GBPS = 10.0


def load_interval_us(size_bits: int, load_fraction: float, line_rate_gbps: float = LINE_RATE_GBPS) -> float:
    """Inter-arrival time that sends ``size_bits`` packets at the given load."""
    if load_fraction <= 0:
        raise ValueError("load fraction must be positive")
    rate_bits_per_us = line_rate_gbps * 1_000.0 * load_fraction
    return size_bits / rate_bits_per_us


class ReplaySource:
    """Replays packets into ``sink`` at a load fraction of line rate.

    ``sink(packet)`` is called once per packet at its arrival instant. At
    ``load=1.0`` with 1434B packets that is one packet every ~1.15µs.
    ``done`` fires when the last packet has been injected.
    """

    def __init__(
        self,
        sim: Simulator,
        packets: Iterable[Packet],
        sink: Callable[[Packet], None],
        load_fraction: float = 0.5,
        line_rate_gbps: float = LINE_RATE_GBPS,
        name: str = "source",
    ):
        self.sim = sim
        self.packets: List[Packet] = list(packets)
        self.sink = sink
        self.load_fraction = load_fraction
        self.line_rate_gbps = line_rate_gbps
        self.name = name
        self.injected = 0
        self.done = sim.event(name=f"{name}-done")
        sim.process(self._run(), name=name)

    def _run(self):
        for packet in self.packets:
            packet.ingress_time = self.sim.now
            self.sink(packet)
            self.injected += 1
            yield self.sim.timeout(
                load_interval_us(packet.size_bits, self.load_fraction, self.line_rate_gbps)
            )
        self.done.succeed(self.injected)
