"""Synthetic trace generation (campus→EC2 analogues).

:func:`make_trace1` and :func:`make_trace2` produce scaled-down analogues of
the paper's two evaluation traces, preserving the statistics experiments
depend on:

* Trace1: few (1.7K), very long connections; median packet size 368B.
* Trace2: many (199K) shorter connections; median packet size 1434B.

``scale`` shrinks packet counts (a Python discrete-event simulation cannot
usefully chew through 6.4M packets per experiment) while keeping
packets-per-connection ratios and size mixes intact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.traffic.flows import FlowSpec, flow_packets, interleave
from repro.traffic.packet import FiveTuple, PROTO_TCP, PROTO_UDP, Packet


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics, comparable to the paper's trace description."""

    n_packets: int
    n_connections: int
    median_packet_size: float
    total_bytes: int

    def __str__(self) -> str:
        return (
            f"{self.n_packets} pkts, {self.n_connections} conns, "
            f"median {self.median_packet_size:.0f}B, {self.total_bytes} bytes"
        )


@dataclass
class Trace:
    """An ordered packet stream plus reference arrival times."""

    packets: List[Packet]
    times: List[float]
    name: str = "trace"

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self):
        return iter(self.packets)

    def stats(self) -> TraceStats:
        sizes = [p.size_bytes for p in self.packets]
        conns = {p.five_tuple.canonical() for p in self.packets}
        return TraceStats(
            n_packets=len(self.packets),
            n_connections=len(conns),
            median_packet_size=float(np.median(sizes)) if sizes else 0.0,
            total_bytes=sum(sizes),
        )

    def slice(self, start: int, stop: Optional[int] = None) -> "Trace":
        return Trace(self.packets[start:stop], self.times[start:stop], name=self.name)


def _client_ip(rng: random.Random, n_hosts: int) -> str:
    host = rng.randrange(n_hosts)
    return f"10.0.{host // 250}.{host % 250 + 1}"


def _server_ip(rng: random.Random, n_servers: int) -> str:
    server = rng.randrange(n_servers)
    return f"52.10.{server // 250}.{server % 250 + 1}"


def make_trace(
    n_packets: int,
    n_connections: int,
    data_size_choices: Sequence[Tuple[int, float]],
    seed: int = 0,
    n_hosts: int = 200,
    n_servers: int = 40,
    udp_fraction: float = 0.05,
    server_ports: Sequence[int] = (80, 443, 22, 21),
    name: str = "trace",
) -> Trace:
    """Generate a trace of roughly ``n_packets`` over ``n_connections`` flows.

    ``data_size_choices`` is a ``[(size_bytes, weight), ...]`` mixture for
    data segments; flow lengths are heavy-tailed (lognormal) normalised so
    the totals come out right. Deterministic for a given seed.
    """
    if n_connections <= 0 or n_packets <= 0:
        raise ValueError("need positive packet and connection counts")
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)

    # Heavy-tailed packets-per-flow, normalised to the requested total.
    raw = nprng.lognormal(mean=0.0, sigma=1.2, size=n_connections)
    per_flow = np.maximum(2, (raw / raw.sum() * n_packets).astype(int))

    sizes, weights = zip(*data_size_choices)
    weights = np.asarray(weights, dtype=float)
    weights = weights / weights.sum()

    flows: List[List[Tuple[float, Packet]]] = []
    span_us = max(float(n_packets), 1000.0)  # flows start spread over this window
    for count in per_flow:
        proto = PROTO_UDP if rng.random() < udp_fraction else PROTO_TCP
        ft = FiveTuple(
            src_ip=_client_ip(rng, n_hosts),
            dst_ip=_server_ip(rng, n_servers),
            src_port=rng.randrange(1024, 65535),
            dst_port=rng.choice(list(server_ports)),
            proto=proto,
        )
        spec = FlowSpec(
            five_tuple=ft,
            n_packets=int(count),
            data_size_bytes=int(nprng.choice(sizes, p=weights)),
            start_us=rng.random() * span_us,
            gap_us=0.5 + rng.random() * 2.0,
        )
        flows.append(flow_packets(spec, rng))

    stream = interleave(flows)
    return Trace(packets=[p for _t, p in stream], times=[t for t, _p in stream], name=name)


def make_trace1(scale: float = 0.01, seed: int = 1) -> Trace:
    """Trace1 analogue: few, long connections; small median packet (368B).

    At ``scale=1`` this would be 3.8M packets / 1.7K connections; the
    default generates ~38K packets over ~17 connections-per-1.7K ratio
    preserved (min 20 connections so the mix stays interesting).
    """
    n_packets = max(int(3_800_000 * scale), 2_000)
    n_connections = max(int(1_700 * scale), 20)
    return make_trace(
        n_packets=n_packets,
        n_connections=n_connections,
        data_size_choices=[(368, 0.70), (120, 0.15), (1434, 0.15)],
        seed=seed,
        name="trace1",
    )


def make_trace2(scale: float = 0.01, seed: int = 2) -> Trace:
    """Trace2 analogue: many connections; large median packet (1434B)."""
    n_packets = max(int(6_400_000 * scale), 2_000)
    n_connections = max(int(199_000 * scale), 50)
    return make_trace(
        n_packets=n_packets,
        n_connections=n_connections,
        data_size_choices=[(1434, 0.88), (368, 0.08), (60, 0.04)],
        seed=seed,
        name="trace2",
    )
