"""Packet and five-tuple models.

A :class:`Packet` carries everything CHC's metadata machinery needs:

* the five-tuple and TCP flags the NFs inspect,
* the **logical clock** stamped by the root (§5),
* first/last markers used by the handover protocol (§5.1, Figure 4),
* replay/clone markers used by straggler mitigation (§5.3),
* the 32-bit XOR **bit vector** of (instance ID || object ID) pairs used by
  the non-blocking-update recovery protocol (§5.4, Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

PROTO_TCP = 6
PROTO_UDP = 17

# TCP flag bits
FIN = 0x01
SYN = 0x02
RST = 0x04
ACK = 0x10

# Well-known application ports used by chain scenarios (Figure 2).
PORT_FTP = 21
PORT_SSH = 22
PORT_HTTP = 80
PORT_IRC = 6667


@dataclass(frozen=True)
class FiveTuple:
    """(src IP, dst IP, src port, dst port, protocol) — the finest state scope."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: int = PROTO_TCP

    def reversed(self) -> "FiveTuple":
        """The opposite direction of the same connection."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.proto)

    def canonical(self) -> "FiveTuple":
        """Direction-independent form (both directions map to one key)."""
        forward = (self.src_ip, self.src_port)
        backward = (self.dst_ip, self.dst_port)
        if forward <= backward:
            return self
        return self.reversed()

    def key(self) -> Tuple[str, str, int, int, int]:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)


_packet_ids = iter(range(1, 1 << 62))


@dataclass
class Packet:
    """A simulated packet plus CHC metadata.

    ``clock`` is 0 until the root stamps it. ``size_bytes`` drives both
    NIC serialisation time and throughput accounting.
    """

    five_tuple: FiveTuple
    size_bytes: int = 1434
    flags: int = ACK
    payload: Optional[str] = None
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))

    # --- CHC metadata ---------------------------------------------------
    clock: int = 0                      # logical clock stamped by the root (§5)
    mark_last: bool = False             # handover: last packet to old instance
    mark_first: bool = False            # handover: first packet to new instance
    replayed: bool = False              # straggler mitigation / recovery replay
    replay_target: Optional[str] = None # clone instance ID carried by replays (§5.3)
    replay_end: bool = False            # root's "last replayed packet" marker
    replay_total: Optional[int] = None  # marker only: size of the replay generation
    bitvector: int = 0                  # 32-bit XOR vector (§5.4, Figure 6)
    generation: int = 0                 # root replay pass this copy belongs to
    control: Optional[object] = None    # in-band framework control (move markers)
    priority: int = 0                   # shed policy: lower sheds first (§8)

    # --- measurement ----------------------------------------------------
    ingress_time: float = 0.0           # when the packet entered the chain
    queued_at: float = 0.0              # when it reached the current NF's queue

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN) and not bool(self.flags & ACK)

    @property
    def is_syn_ack(self) -> bool:
        return bool(self.flags & SYN) and bool(self.flags & ACK)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    def copy(self) -> "Packet":
        """A distinct packet object with the same contents (same pkt_id)."""
        return replace(self)

    def flow_key(self) -> Tuple[str, str, int, int, int]:
        return self.five_tuple.key()

    def __repr__(self) -> str:  # compact, for test failure readability
        ft = self.five_tuple
        return (
            f"Packet(#{self.pkt_id} clk={self.clock} {ft.src_ip}:{ft.src_port}->"
            f"{ft.dst_ip}:{ft.dst_port}/{ft.proto} {self.size_bytes}B flags={self.flags:#x})"
        )


def scope_fields(five_tuple: FiveTuple, fields: Tuple[str, ...]) -> Tuple:
    """Project a five-tuple onto a scope (a subset of header fields).

    Scopes are how ``.scope()`` declares state granularity (§4.1); e.g. a
    per-source-host object has scope ``("src_ip",)``.
    """
    return tuple(getattr(five_tuple, name) for name in fields)
