"""Trojan-signature scenario construction (§2.1, §7.3 R4).

The off-path trojan detector (De Carli et al. [12]) flags a host that, in
this order: (1) opens an SSH connection, (2) transfers files over FTP,
(3) generates IRC activity. The R4 experiment injects the signature at 11
points in the trace and checks the detector finds all of them when it can
reason about true arrival order (CHC logical clocks), but misses some when
upstream NFs delay/reorder traffic and no chain-wide ordering exists.

Decoy hosts perform the same three activities in a *different* order — a
correct detector must not flag them (false-positive check).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.traffic.flows import FlowSpec, flow_packets
from repro.traffic.packet import FiveTuple, PORT_FTP, PORT_IRC, PORT_SSH, Packet
from repro.traffic.trace import Trace

SIGNATURE_ORDER = (PORT_SSH, PORT_FTP, PORT_IRC)


@dataclass
class TrojanScenario:
    """A trace with injected signatures and the ground truth to score against."""

    trace: Trace
    infected_hosts: List[str]
    decoy_hosts: List[str]
    injection_points: List[int] = field(default_factory=list)


def _activity_flow(
    host: str,
    server: str,
    port: int,
    rng: random.Random,
    n_packets: int = 6,
) -> List[Packet]:
    spec = FlowSpec(
        five_tuple=FiveTuple(
            src_ip=host,
            dst_ip=server,
            src_port=rng.randrange(20000, 60000),
            dst_port=port,
        ),
        n_packets=n_packets,
        data_size_bytes=400,
        gap_us=0.5,
    )
    return [p for _t, p in flow_packets(spec, rng)]


def inject_trojan_signatures(
    base: Trace,
    n_signatures: int = 11,
    n_decoys: int = 8,
    seed: int = 7,
    separation: int = 40,
) -> TrojanScenario:
    """Insert ``n_signatures`` in-order signatures and shuffled decoys.

    Each signature is three short flows (SSH, then FTP, then IRC) from a
    fresh infected host, with the three flows ``separation`` packets apart
    in the stream so intervening traffic interleaves them. Decoys use a
    non-signature permutation of the same ports.
    """
    if len(base) < (n_signatures + n_decoys) * separation * 3 + 10:
        raise ValueError(
            f"trace too short ({len(base)} pkts) for {n_signatures} signatures "
            f"+ {n_decoys} decoys at separation {separation}"
        )
    rng = random.Random(seed)
    packets = list(base.packets)

    infected = [f"172.16.0.{i + 1}" for i in range(n_signatures)]
    decoys = [f"172.16.1.{i + 1}" for i in range(n_decoys)]
    server = "52.99.0.1"

    # (insertion position, packets) — build all insertions, then apply from
    # the back so earlier indices stay valid.
    insertions: List[Tuple[int, List[Packet]]] = []
    usable = len(packets) - 3 * separation - 1
    points: List[int] = []

    def plan(host: str, order: Sequence[int]) -> int:
        anchor = rng.randrange(1, usable)
        for step, port in enumerate(order):
            flow = _activity_flow(host, server, port, rng)
            insertions.append((anchor + step * separation, flow))
        return anchor

    for host in infected:
        points.append(plan(host, SIGNATURE_ORDER))
    non_signature_orders = [
        (PORT_FTP, PORT_SSH, PORT_IRC),
        (PORT_IRC, PORT_FTP, PORT_SSH),
        (PORT_SSH, PORT_IRC, PORT_FTP),
    ]
    for i, host in enumerate(decoys):
        plan(host, non_signature_orders[i % len(non_signature_orders)])

    for position, flow in sorted(insertions, key=lambda item: item[0], reverse=True):
        packets[position:position] = flow

    times = list(range(len(packets)))  # uniform reference spacing after insertion
    return TrojanScenario(
        trace=Trace(packets=packets, times=[float(t) for t in times], name=base.name + "+trojan"),
        infected_hosts=infected,
        decoy_hosts=decoys,
        injection_points=points,
    )
