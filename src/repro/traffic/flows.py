"""Flow-level traffic construction.

A :class:`FlowSpec` describes one connection (endpoints, length, packet
sizes, start time, pacing); :func:`flow_packets` expands it into the packet
sequence a well-formed TCP connection produces (SYN, SYN-ACK, data both
directions, FIN or RST). Traces are built by interleaving many flows by
arrival time (:mod:`repro.traffic.trace`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.traffic.packet import ACK, FIN, FiveTuple, PROTO_UDP, Packet, RST, SYN

HANDSHAKE_SIZE = 60        # bytes of a bare SYN / SYN-ACK / FIN / RST segment
MIN_SEGMENT = 60
MAX_SEGMENT = 1500


@dataclass
class FlowSpec:
    """One connection's shape.

    ``n_packets`` counts all packets including handshake/teardown.
    ``reset`` ends the flow with RST instead of FIN (portscan probes to
    closed ports are modelled as SYN answered by RST).
    """

    five_tuple: FiveTuple
    n_packets: int
    data_size_bytes: int = 1434
    start_us: float = 0.0
    gap_us: float = 1.0
    reset: bool = False
    refused: bool = False  # SYN answered by RST from the server (scan probe)

    def duration_us(self) -> float:
        return self.gap_us * max(self.n_packets - 1, 0)


@dataclass
class Flow:
    """A realised flow: its spec plus generated packets (time-ordered)."""

    spec: FlowSpec
    packets: List[Tuple[float, Packet]] = field(default_factory=list)


def flow_packets(spec: FlowSpec, rng: Optional[random.Random] = None) -> List[Tuple[float, Packet]]:
    """Expand a spec into ``(arrival_time_us, Packet)`` pairs.

    TCP flows get a 3-packet handshake (SYN, SYN-ACK, ACK) and a closing
    FIN/RST; data packets alternate a forward-heavy direction mix. UDP
    flows are all data. A *refused* flow is just SYN then RST from the
    responder — the portscan detector's negative signal.
    """
    rng = rng or random.Random(0)
    ft = spec.five_tuple
    out: List[Tuple[float, Packet]] = []
    t = spec.start_us

    def emit(tuple_: FiveTuple, flags: int, size: int) -> None:
        nonlocal t
        out.append((t, Packet(five_tuple=tuple_, size_bytes=size, flags=flags)))
        t += spec.gap_us

    if ft.proto == PROTO_UDP:
        for _ in range(max(spec.n_packets, 1)):
            emit(ft, 0, spec.data_size_bytes)
        return out

    if spec.refused:
        emit(ft, SYN, HANDSHAKE_SIZE)
        emit(ft.reversed(), RST | ACK, HANDSHAKE_SIZE)
        return out

    emit(ft, SYN, HANDSHAKE_SIZE)
    emit(ft.reversed(), SYN | ACK, HANDSHAKE_SIZE)
    emit(ft, ACK, HANDSHAKE_SIZE)

    n_data = max(spec.n_packets - 4, 0)
    for i in range(n_data):
        # roughly 4:1 forward:reverse data mix, deterministic per index
        direction = ft if (i % 5) != 4 else ft.reversed()
        size = spec.data_size_bytes
        if direction is not ft:
            size = max(MIN_SEGMENT, min(size, 120))  # ACK-ish reverse segments
        emit(direction, ACK, size)

    closing = RST | ACK if spec.reset else FIN | ACK
    emit(ft, closing, HANDSHAKE_SIZE)
    return out


def interleave(flows: List[List[Tuple[float, Packet]]]) -> List[Tuple[float, Packet]]:
    """Merge per-flow packet lists into one arrival-time-ordered stream.

    Ties break by generation order, which keeps the stream deterministic.
    """
    merged: List[Tuple[float, int, Packet]] = []
    seq = 0
    for flow in flows:
        for t, pkt in flow:
            merged.append((t, seq, pkt))
            seq += 1
    merged.sort(key=lambda item: (item[0], item[1]))
    return [(t, pkt) for t, _seq, pkt in merged]
