"""NF-instance and root failover (§5.4).

NF failover: a replacement instance takes the failed instance's place —
the datastore manager associates the replacement's ID with the relevant
state (one metadata takeover, no state copy), the splitter swaps the
routing slot, and the root replays all logged packets targeted at the
replacement (bringing per-flow state up to speed with the in-transit
packets the crash lost). Duplicate state updates and upstream processing
are suppressed exactly as during cloning.

Root failover: the new root reads the last persisted clock from the
datastore, resumes the clock *past* the unpersisted window (footnote 5),
queries downstream instances for the current flow allocation, and adopts
the predecessor's input channel — packets that arrived while the root was
down were buffered there and are processed first. A locally-logged packet
log dies with the root: those in-flight packets are "dropped by the
network" (Theorem B.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.core.clock import LogicalClock
from repro.core.root import Root
from repro.simnet.rpc import RpcEndpoint
from repro.store.keys import StateKey
from repro.store.protocol import ReadRequest, SnapshotRequest, TakeoverRequest

# Retransmissions per recovery-protocol RPC before giving up. Recovery must
# make progress over the same lossy links that caused the failure, so every
# blocking call below retries with backoff when the runtime has a
# retransmission timeout configured (RuntimeParams.retransmit_timeout_us).
RECOVERY_RETRY_BUDGET = 12


def _recovery_call(runtime, endpoint: RpcEndpoint, dst, payload) -> Generator:
    """Blocking RPC used by the recovery protocols (bounded retransmission)."""
    timeout = getattr(runtime.params, "retransmit_timeout_us", None)
    if timeout is None:
        result = yield endpoint.call_event(dst() if callable(dst) else dst, payload)
        return result
    result = yield from endpoint.call(
        dst, payload, timeout_us=timeout, max_retries=RECOVERY_RETRY_BUDGET, backoff=1.5
    )
    return result


def replay_all_roots(runtime, target_instance: str) -> Generator:
    """Replay every root's packet log at ``target_instance`` (§5.3, §5.4).

    With multiple roots, each holds the log for its traffic share; the
    replay-end marker rides the last root that has anything to replay, so
    the target's live-traffic buffer is released only after every replayed
    packet has been processed. Returns the list of replayed clocks.
    """
    roots_with_logs = [root for root in runtime.roots if root.log]
    replayed: List[int] = []
    for index, root in enumerate(roots_with_logs):
        is_last = index == len(roots_with_logs) - 1
        replayed += yield from root.replay(
            target_instance, mark_end=is_last, prior_replayed=len(replayed)
        )
    return replayed


@dataclass
class NFRecoveryResult:
    failed_id: str
    new_id: str
    started_at: float
    finished_at: float
    replayed: int
    state_keys_taken: int

    @property
    def duration_us(self) -> float:
        return self.finished_at - self.started_at


def fail_over_nf(runtime, failed_id: str, suffix: Optional[str] = None) -> Generator:
    """Recover a crashed NF instance (process body; returns the result).

    Assumes the failure was already detected (fail-stop model: detection is
    immediate) and, per §7.3 R6, that the replacement container launches
    immediately — what is measured is CHC's state recovery.
    """
    sim = runtime.sim
    started_at = sim.now
    failed = runtime.instance(failed_id)
    if failed.alive:
        raise RuntimeError(f"{failed_id} has not failed; refusing to fail over")
    vertex = failed.vertex_name
    suffix = suffix or f"{failed_id.split('-', 1)[1]}r"

    replacement = runtime.add_instance(
        vertex, suffix, start_buffering=True, join_splitter=False
    )

    # 1. Associate the failover instance's ID with the failed instance's
    #    state (bulk metadata update at the vertex's store instance).
    state_key = StateKey(vertex, "_").storage_key()
    taken = yield from _recovery_call(
        runtime,
        replacement.client.endpoint,
        lambda: runtime.store.endpoint_for_key(state_key),
        TakeoverRequest(old_instance=failed_id, new_instance=replacement.instance_id),
    )

    # 2. Take over routing: same hash slot, so no flows remap.
    runtime.splitter(vertex).replace_instance(failed_id, replacement.instance_id)
    runtime.splitter(vertex).add_instance(replacement.instance_id)
    runtime.vertex_instances[vertex] = [
        replacement.instance_id if i == failed_id else i
        for i in runtime.vertex_instances[vertex]
    ]

    # 3. Replay logged packets through the chain at the replacement.
    replayed = yield from replay_all_roots(runtime, replacement.instance_id)
    if not replayed:
        replacement.stop_buffering()

    return NFRecoveryResult(
        failed_id=failed_id,
        new_id=replacement.instance_id,
        started_at=started_at,
        finished_at=sim.now,
        replayed=len(replayed),
        state_keys_taken=taken,
    )


@dataclass
class RootRecoveryResult:
    new_root: Root
    started_at: float
    finished_at: float
    resumed_sequence: int
    allocations: int

    @property
    def duration_us(self) -> float:
        return self.finished_at - self.started_at


def fail_over_root(runtime, root: Optional[Root] = None) -> Generator:
    """Recover a failed root (process body; returns the result).

    Costs: one store RTT to read the persisted clock, plus one (parallel)
    query round to downstream instances for the flow allocation — the §7.3
    "< 41.2µs" path. ``root`` selects which root instance failed in a
    multi-root deployment (defaults to the first).
    """
    sim = runtime.sim
    old_root = root or runtime.root
    if old_root.alive:
        raise RuntimeError("root has not failed; refusing to fail over")
    started_at = sim.now

    bootstrap = RpcEndpoint(sim, runtime.network, f"{old_root.name}-recovery-{int(sim.now)}")
    store_endpoint = old_root.store_endpoint or runtime.stores[0].name
    read = yield from _recovery_call(
        runtime,
        bootstrap,
        store_endpoint,
        ReadRequest(key=Root.recovered_clock_key(old_root.root_id)),
    )
    persisted = read.value or 0
    log_snapshot = {}
    if old_root.log_in_store:
        # the store-kept packet log survives the root (§7.2's trade-off)
        log_snapshot = yield from _recovery_call(
            runtime,
            bootstrap,
            store_endpoint,
            SnapshotRequest(prefix=Root.log_key_prefix(old_root.root_id)),
        )

    # Query the entry vertex's instances for their flow allocation, in
    # parallel (the recovering root must partition subsequent traffic the
    # same way, §5.4 "Root"). Each query is its own process so its retry
    # loop runs concurrently with the others.
    entry_instances = runtime.instances_of(runtime.chain.entry)
    queries = [
        sim.process(
            _recovery_call(runtime, bootstrap, instance.instance_id, "allocation"),
            name=f"root-recovery-alloc({instance.instance_id})",
        )
        for instance in entry_instances
        if instance.alive
    ]
    allocations = []
    if queries:
        allocations = yield sim.all_of(queries)
    bootstrap.fail()

    clock = LogicalClock.resume_from(
        old_root.root_id, persisted, old_root.persist_every
    )
    new_root = Root(
        sim,
        runtime.network,
        old_root.name,  # adopt the same address: commit signals keep flowing
        forward=runtime._forward_from_root,
        store_endpoint=old_root.store_endpoint,
        root_id=old_root.root_id,
        persist_every=old_root.persist_every,
        log_in_store=old_root.log_in_store,
        local_log_cost_us=old_root.local_log_cost_us,
        log_threshold=old_root.log_threshold,
        store_endpoints_for_prune=old_root.store_endpoints_for_prune,
        clock=clock,
        input_channel=old_root.input,
    )
    new_root.on_deleted.append(runtime._on_packet_deleted)
    if log_snapshot:
        new_root.restore_log(log_snapshot)
    runtime.root = new_root  # the setter slots it by root_id

    return RootRecoveryResult(
        new_root=new_root,
        started_at=started_at,
        finished_at=sim.now,
        resumed_sequence=clock.last_issued_sequence,
        allocations=len(allocations),
    )
