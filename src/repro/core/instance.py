"""The NF instance runtime (§4.2, §6).

One :class:`NFInstance` models a multi-threaded NF process: a receive loop
pulls from the framework-managed input queue and shards packets across
worker threads by flow (per-flow order is preserved; cross-flow updates may
interleave, exactly as in the C++ prototype). Each worker charges the NF's
per-packet CPU cost, runs the vertex program (whose state accesses go
through the store client and consume simulated RTTs per Table 1), records
the per-packet processing time, and hands outputs back to the runtime.

The instance also implements the receive-side halves of the correctness
protocols:

* **handover (new instance)** — on a ``mark_first`` packet it checks state
  ownership and buffers the moved flow until the old instance releases it
  (Figure 4 steps 3–7);
* **handover (old instance)** — a ``mark_last`` control marker is treated
  as a barrier across workers; once every already-queued packet has
  drained, cached state is flushed and ownership released (step 5);
* **replay buffering** — a freshly created clone/failover instance
  processes replayed traffic first and buffers live traffic until the
  packet marked ``replay_end`` has been processed (§5.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.analysis import runtime as _sanitize
from repro.core.nf_api import NetworkFunction, StateAPI
from repro.core.splitter import MoveMarker
from repro.simnet.engine import Channel, Process, Simulator
from repro.simnet.monitor import LatencyRecorder, ThroughputMeter
from repro.store.client import StoreClient
from repro.traffic.packet import Packet, scope_fields
from repro.util import stable_hash

# Overload policies for bounded instance queues (§8). BLOCK parks the
# producer (hop-by-hop backpressure through the NIC ring), DROP tail-drops
# with ledger accounting, SHED evicts the lowest-priority queued packet
# first so high-priority flows survive a burst.
POLICY_BLOCK = "block"
POLICY_DROP = "drop"
POLICY_SHED = "shed"
OVERLOAD_POLICIES = (POLICY_BLOCK, POLICY_DROP, POLICY_SHED)

# Drop-ledger causes (folded into Network.drops via ChainRuntime.note_shed)
SHED_CAUSE_QUEUE = "overload_queue"
SHED_CAUSE_NIC = "nic_ring"


class CHCStateAPI(StateAPI):
    """StateAPI bound to one packet's context.

    One is created per packet being processed: worker threads handle
    packets concurrently, and clock/sequence context must never leak
    between them.
    """

    def __init__(self, client: StoreClient, ctx):
        self.client = client
        self.ctx = ctx

    def read(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        return (yield from self.client.read(obj_name, flow_key, ctx=self.ctx))

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Generator:
        return (
            yield from self.client.update(
                obj_name, flow_key, op, *args, need_result=need_result, ctx=self.ctx
            )
        )

    def nondet(self, purpose: str, kind: str = "random") -> Generator:
        return (yield from self.client.nondet(purpose, kind, ctx=self.ctx))


@dataclass
class InstanceStats:
    processed: int = 0
    duplicates_seen: int = 0
    dropped: int = 0
    control_markers: int = 0
    buffered: int = 0
    shed: int = 0


class NFInstance:
    """One running instance of a vertex. See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        runtime,  # ChainRuntime (duck-typed to avoid an import cycle)
        vertex_name: str,
        instance_id: str,
        nf: NetworkFunction,
        client: StoreClient,
        n_workers: int = 8,
        proc_time_us: float = 2.0,
        extra_delay: Optional[Callable[[], float]] = None,
        start_buffering: bool = False,
        queue_capacity: Optional[int] = None,
        worker_capacity: Optional[int] = None,
        overload_policy: str = POLICY_BLOCK,
        fastpath_enabled: bool = False,
        fastpath_batch: int = 16,
    ):
        if overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(f"unknown overload policy {overload_policy!r}")
        self.sim = sim
        self.runtime = runtime
        self.vertex_name = vertex_name
        self.instance_id = instance_id
        self.nf = nf
        self.client = client
        self.n_workers = n_workers
        self.proc_time_us = proc_time_us
        self.extra_delay = extra_delay
        self.queue_capacity = queue_capacity
        self.overload_policy = overload_policy
        # BLOCK bounds the input channel itself (the NIC parks on its space
        # event) and each worker queue (the receive loop parks, filling the
        # input). DROP/SHED leave channels unbounded and enforce the bound
        # on total depth at enqueue, where the shed decision is made.
        input_capacity = queue_capacity if overload_policy == POLICY_BLOCK else None
        if overload_policy == POLICY_BLOCK and queue_capacity is not None:
            if worker_capacity is None:
                worker_capacity = max(1, queue_capacity // n_workers)
        else:
            worker_capacity = None
        self.worker_capacity = worker_capacity

        self.input = Channel(
            sim, name=f"{instance_id}-input", capacity=input_capacity
        )
        # recorder: pure per-packet processing time (Figure 8's metric);
        # sojourn: arrival-at-NF to completion, queueing included (what
        # Figures 12/13 plot — stalls and recovery show up as queue wait).
        self.recorder = LatencyRecorder(name=instance_id)
        self.sojourn = LatencyRecorder(name=f"{instance_id}-sojourn")
        self.throughput = ThroughputMeter(name=instance_id)
        self.stats = InstanceStats()

        self._alive = True
        self._buffering = start_buffering
        self._live_buffer: List[Packet] = []
        self._replay_seen = 0           # replayed packets this target processed
        self._replay_release: Optional[int] = None  # generation size, from marker
        self._pending_moves: Dict[int, MoveMarker] = {}  # inbound, incomplete
        self._completed_moves: Set[int] = set()
        self._seen_clocks: Set[int] = set()
        self._barrier_counts: Dict[int, int] = {}

        # Fast-path flow latch (§6): packets of a flow in flight towards or
        # queued inside this instance. Counted at _deliver time (covers the
        # NIC/link window), decremented when processing completes; fused
        # dispatch into this instance requires the flow's count to be zero,
        # so a fused packet can never overtake a general-path one.
        self._inflight_flows: Dict[Tuple, int] = {}
        self._track_inflight = fastpath_enabled
        self._fastpath = None
        if fastpath_enabled and extra_delay is None:
            from repro.core.fastpath import install_fastpath

            self._fastpath = install_fastpath(self, fastpath_batch)

        self._worker_queues = [
            Channel(sim, name=f"{instance_id}-w{i}", capacity=worker_capacity)
            for i in range(n_workers)
        ]
        worker_body = (
            self._fastpath.worker_loop if self._fastpath is not None
            else self._worker_loop
        )
        self._processes: List[Process] = [
            sim.process(worker_body(q), name=f"{instance_id}-w{i}")
            for i, q in enumerate(self._worker_queues)
        ]
        self._processes.append(sim.process(self._receive_loop(), name=f"{instance_id}-rx"))
        self._processes.append(sim.process(self._query_loop(), name=f"{instance_id}-queries"))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def queue_depth(self) -> int:
        return len(self.input) + sum(len(q) for q in self._worker_queues)

    @property
    def queue_depth_peak(self) -> int:
        """Highest depth any of this instance's queues ever reached."""
        peak = self.input.depth_peak
        for queue in self._worker_queues:
            if queue.depth_peak > peak:
                peak = queue.depth_peak
        return peak

    def fail(self) -> None:
        """Fail-stop: internal state, queued and in-flight packets vanish."""
        if not self._alive:
            return
        self._alive = False
        for process in self._processes:
            process.kill()
        self.client.fail()
        self.input.clear()
        for queue in self._worker_queues:
            queue.clear()
        self._live_buffer.clear()
        self._pending_moves.clear()
        self._inflight_flows.clear()

    def stop_buffering(self) -> None:
        """Replay finished (or was empty): release buffered live traffic."""
        if not self._buffering:
            return
        self._buffering = False
        pending, self._live_buffer = self._live_buffer, []
        for packet in pending:
            self._dispatch(packet)

    def _maybe_stop_buffering(self) -> None:
        """Release once the replay-end marker AND the full generation landed."""
        if self._replay_release is not None and self._replay_seen >= self._replay_release:
            self.stop_buffering()

    # ------------------------------------------------------------------
    # fast-path flow latch (§6)
    # ------------------------------------------------------------------

    def _count_inflight(self, packet: Packet) -> None:
        """One more packet of this flow is bound for this instance.

        Called by the runtime when a copy is dispatched here (before the
        NIC/link delay, so the in-flight window is covered). No-op unless
        the fast path is on — the latch only exists to keep fused dispatch
        from overtaking general-path packets of the same flow.
        """
        if not self._track_inflight or packet.mark_last:
            return
        key = packet.five_tuple.canonical().key()
        self._inflight_flows[key] = self._inflight_flows.get(key, 0) + 1

    def _uncount(self, packet: Packet) -> None:
        """The packet's journey through this instance ended (processed,
        shed, evicted, or ring-dropped). Floored at zero: packets injected
        directly in tests never went through the counting side."""
        if not self._track_inflight or packet.mark_last:
            return
        key = packet.five_tuple.canonical().key()
        count = self._inflight_flows.get(key, 0)
        if count <= 1:
            self._inflight_flows.pop(key, None)
        else:
            self._inflight_flows[key] = count - 1

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Admit ``packet`` to the input queue.

        Returns ``True`` when the packet was taken (admitted, or shed with
        accounting — either way the sender is done with it) and ``False``
        only under the BLOCK policy when the bounded input is full: the
        delivering NIC then parks on ``input.space_event()`` and retries,
        which is what propagates backpressure upstream.
        """
        packet.queued_at = self.sim.now
        if self.queue_capacity is None:
            self.input.put(packet)
            return True
        if (
            packet.control is not None
            or packet.mark_first
            or packet.replayed
            or packet.replay_end
        ):
            # Control-plane and recovery traffic is never refused or shed:
            # losing a barrier/replay marker wedges handover or replay.
            self.input.put_forced(packet)
            return True
        policy = self.overload_policy
        if policy == POLICY_BLOCK:
            return self.input.put(packet)
        if self.queue_depth < self.queue_capacity:
            self.input.put(packet)
            return True
        victim = packet
        if policy == POLICY_SHED:
            evicted = self._evict_lower_priority(packet)
            if evicted is not None:
                victim = evicted
                self.input.put(packet)
        self.stats.shed += 1
        self._uncount(victim)
        self.runtime.note_shed(self, victim, SHED_CAUSE_QUEUE)
        return True

    def _evict_lower_priority(self, incoming: Packet) -> Optional[Packet]:
        """Find and remove the lowest-priority queued data packet that is
        strictly lower priority than ``incoming``; None if there is none."""
        best_queue = None
        best_index = -1
        best_priority = incoming.priority
        for queue in (self.input, *self._worker_queues):
            for index, queued in enumerate(queue._items):
                if (
                    queued.control is not None
                    or queued.mark_first
                    or queued.replayed
                    or queued.replay_end
                ):
                    continue
                if queued.priority < best_priority:
                    best_priority = queued.priority
                    best_queue, best_index = queue, index
        if best_queue is None:
            return None
        victim = best_queue._items[best_index]
        del best_queue._items[best_index]
        return victim

    def _receive_loop(self) -> Generator:
        while self._alive:
            packet: Packet = yield self.input.get()
            if packet.control is not None and packet.mark_last:
                # Handover barrier: every worker must pass it (§5.1 step 5
                # happens only after all queued packets of the flow drain).
                # Forced put: the barrier must reach every worker even when
                # its queue is at capacity.
                self.stats.control_markers += 1
                for queue in self._worker_queues:
                    queue.put_forced(packet)
                continue
            if self._buffering and not packet.replayed:
                self._live_buffer.append(packet)
                self.stats.buffered += 1
                continue
            shard = stable_hash(packet.five_tuple.canonical().key()) % self.n_workers
            queue = self._worker_queues[shard]
            while not queue.put(packet):
                # BLOCK policy: park until the worker drains one; packets
                # meanwhile accumulate in the bounded input, whose fullness
                # pushes back on the delivering NIC.
                suite = _sanitize.ACTIVE
                if suite is not None:
                    suite.wait_edge(
                        self.sim, f"rx:{self.instance_id}", f"wkr:{self.instance_id}"
                    )
                try:
                    yield queue.space_event()
                finally:
                    if suite is not None:
                        suite.release_edge(
                            f"rx:{self.instance_id}", f"wkr:{self.instance_id}"
                        )
                if not self._alive:
                    return

    def _dispatch(self, packet: Packet) -> None:
        shard = stable_hash(packet.five_tuple.canonical().key()) % self.n_workers
        self._worker_queues[shard].put_forced(packet)

    def _worker_loop(self, queue: Channel) -> Generator:
        while self._alive:
            packet: Packet = yield queue.get()
            if packet.control is not None and packet.mark_last:
                yield from self._on_last_marker(packet.control)
                continue
            marker: Optional[MoveMarker] = None
            if packet.mark_first and isinstance(packet.control, MoveMarker):
                marker = packet.control
                # Consume the marker HERE: an NF that forwards the same
                # packet object would otherwise leak it downstream, where
                # the next vertex's worker blocks forever on a handover
                # that isn't for its vertex.
                packet.mark_first = False
                packet.control = None
                if marker.new_instance != self.instance_id:
                    # not our move (e.g. a straggler-clone copy): ordinary
                    # traffic as far as this instance is concerned
                    marker = self._matching_pending_move(packet)
            else:
                marker = self._matching_pending_move(packet)
            if marker is not None:
                yield from self._ensure_moved_in(marker)
            yield from self._process_packet(packet)

    def _matching_pending_move(self, packet: Packet) -> Optional[MoveMarker]:
        if not self._pending_moves:
            return None
        for marker in self._pending_moves.values():
            if scope_fields(packet.five_tuple.canonical(), marker.fields) in marker.scope_keys:
                return marker
        return None

    def _query_loop(self) -> Generator:
        """Serve framework queries addressed to this instance.

        A recovering root queries downstream instances for the current flow
        allocation (§5.4 "Root": "retrieves how to partition traffic by
        querying downstream instances' flow allocation").
        """
        while self._alive:
            request = yield self.client.endpoint.requests.get()
            if request.payload == "allocation":
                allocation = self.runtime.splitter(self.vertex_name).allocation()
                self.client.endpoint.respond(request, allocation)
            else:
                self.client.endpoint.respond(
                    request, RuntimeError("unknown instance query"), ok=False
                )

    # ------------------------------------------------------------------
    # packet processing
    # ------------------------------------------------------------------

    def _process_packet(self, packet: Packet) -> Generator:
        start = self.sim.now
        if packet.clock in self._seen_clocks:
            self.stats.duplicates_seen += 1
        elif packet.clock:
            self._seen_clocks.add(packet.clock)
        api = CHCStateAPI(self.client, self.client.make_context(packet))
        delay = self.proc_time_us
        if self.extra_delay is not None:
            delay += self.extra_delay()
        yield self.sim.timeout(delay)
        outputs = yield from self.nf.process(packet, api)
        if not self._alive:
            return
        self.recorder.record(self.sim.now - start, timestamp=self.sim.now)
        if packet.queued_at:
            self.sojourn.record(self.sim.now - packet.queued_at, timestamp=self.sim.now)
        self.throughput.add(packet.size_bits, self.sim.now)
        self.stats.processed += 1
        if packet.replay_target == self.instance_id:
            # §5.3: "The clone's ID is cleared once it processed the packet"
            # — downstream of the target the copy is ordinary traffic again,
            # so queue-level duplicate suppression applies to it.
            packet.replay_target = None
            packet.replayed = False
            self._replay_seen += 1
            self._maybe_stop_buffering()
        was_replay_end = packet.replay_end
        replay_total = packet.replay_total
        if not outputs:
            self.stats.dropped += 1
        yield from self.runtime.emit(self, packet, outputs or [])
        # Release the flow latch only after the emit completed: a fused
        # packet must not slip past this one while emit is parked on
        # downstream backpressure.
        self._uncount(packet)
        if was_replay_end:
            # The marker can overtake other replayed packets when the
            # upstream path fans across parallel instances (or one of them
            # is mid-handover): release only once the whole generation has
            # been processed, else a buffered live packet beats a replayed
            # same-flow predecessor that is still in flight.
            self._replay_release = replay_total or self._replay_seen
            self._maybe_stop_buffering()

    # ------------------------------------------------------------------
    # handover protocol (Figure 4)
    # ------------------------------------------------------------------

    def _on_last_marker(self, marker: MoveMarker) -> Generator:
        """Old-instance side: barrier across workers, then flush & release."""
        count = self._barrier_counts.get(marker.marker_id, 0) + 1
        self._barrier_counts[marker.marker_id] = count
        if count < self.n_workers:
            return
        del self._barrier_counts[marker.marker_id]
        if marker.old_instance != self.instance_id:
            return
        yield from self._flush_and_release(marker)

    def _flush_and_release(self, marker: MoveMarker) -> Generator:
        """Figure 4 step 5: flush cached state, disassociate ownership.

        Only *operations* are flushed (they were already streamed to the
        store non-blocking; the barrier just waits for their ACKs) — no
        state is serialised or copied, which is why CHC's move is ~35X
        faster than OpenNF's (§7.3 R2). Per-key ownership release is
        delegated to the runtime, which knows the moved keys.
        """
        yield self.client.ack_barrier()
        yield from self.runtime.release_moved_state(self, marker)

    def _ensure_moved_in(self, marker: MoveMarker) -> Generator:
        """New-instance side: Figure 4 steps 3-4, 6-7.

        The moved flow's worker blocks until ownership lands: checking the
        store / registering the callback costs one RTT; the datastore's
        handover notification releases the wait. Blocking the worker (all
        of a flow's packets shard to one worker) *is* the buffering of
        step 4 — packets queue behind this one in FIFO order, so updates
        happen in upstream arrival order (step 8's guarantee).
        """
        if marker.move_id in self._completed_moves:
            return
        self._pending_moves[marker.move_id] = marker
        available = yield from self.runtime.moved_state_available(self, marker)
        if not available:
            yield from self.runtime.wait_for_handover(self, marker)
        self._completed_moves.add(marker.move_id)
        self._pending_moves.pop(marker.move_id, None)

    def __repr__(self) -> str:
        return f"<NFInstance {self.instance_id} of {self.vertex_name}>"
