"""32-bit XOR bit vectors for the non-blocking-update delete protocol
(§5.4, Figure 6).

Each packet carries a 32-bit vector initialised to zero. Whenever
processing the packet induces a state update, the issuing side XORs a
32-bit **tag** — the concatenation of a 16-bit entity ID and a 16-bit state
object ID — into the vector. The store XORs the same tag into the root's
per-packet accumulator when it *commits* the update. The root deletes a
packet's log entry only when the accumulator matches the final vector
carried by the delete request, i.e. every induced update has committed.

The paper concatenates *instance* ID and object ID. We tag with the
**vertex** ID instead: under straggler cloning the same logical update may
be committed by either the original or the clone, and a vertex-level tag
makes those two commits indistinguishable to the XOR check (which is the
desired semantics — the update happened once, whoever issued it).
"""

from __future__ import annotations

from typing import Dict, Tuple

ID_BITS = 16
ID_MASK = (1 << ID_BITS) - 1


def encode_tag(entity_id: int, obj_id: int) -> int:
    """Concatenate two 16-bit IDs into one 32-bit tag."""
    if not 0 <= entity_id <= ID_MASK:
        raise ValueError(f"entity_id {entity_id} exceeds 16 bits")
    if not 0 <= obj_id <= ID_MASK:
        raise ValueError(f"obj_id {obj_id} exceeds 16 bits")
    return (entity_id << ID_BITS) | obj_id


def decode_tag(tag: int) -> Tuple[int, int]:
    return tag >> ID_BITS, tag & ID_MASK


class TagRegistry:
    """Assigns stable 16-bit IDs to vertex names and state object names.

    IDs are assigned in registration order, so a chain built the same way
    always produces the same tags (determinism across runs).
    """

    def __init__(self):
        self._entities: Dict[str, int] = {}
        self._objects: Dict[Tuple[str, str], int] = {}

    def entity_id(self, name: str) -> int:
        if name not in self._entities:
            if len(self._entities) >= ID_MASK:
                raise OverflowError("too many entities for 16-bit IDs")
            self._entities[name] = len(self._entities) + 1
        return self._entities[name]

    def object_id(self, entity: str, obj_name: str) -> int:
        key = (entity, obj_name)
        if key not in self._objects:
            if len(self._objects) >= ID_MASK:
                raise OverflowError("too many state objects for 16-bit IDs")
            self._objects[key] = len(self._objects) + 1
        return self._objects[key]

    def tag(self, entity: str, obj_name: str) -> int:
        """The 32-bit (entity || object) tag for one state object."""
        return encode_tag(self.entity_id(entity), self.object_id(entity, obj_name))

    def tags_for(self, entity: str, obj_names) -> Dict[str, int]:
        """Tag map for all of an entity's state objects."""
        return {name: self.tag(entity, name) for name in obj_names}
