"""Scope-aware traffic partitioning (§4.1) and move marking (Figure 4).

A splitter sits after every NF instance (and at the root) and partitions
that instance's output among the downstream vertex's instances such that:

1. each flow is processed at a single instance,
2. the partition key is as coarse as load allows, so state objects keyed
   by (a superset of) the partition fields are never shared — which is
   what lets the client-side library cache cross-flow state, and
3. load stays balanced (``refine()`` walks to the next finer scope when
   the vertex manager reports imbalance).

The splitter is also where elastic-scaling moves start: ``begin_move``
emits the "last" marker to the old instance and arms "first" marking for
the new one (Figure 4 steps 1–2), and where straggler cloning replicates
traffic to the straggler and its clone (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.store.spec import StateObjectSpec
from repro.traffic.packet import FiveTuple, Packet, scope_fields
from repro.util import fields_subset, stable_hash

FIVE_TUPLE: Tuple[str, ...] = ("src_ip", "dst_ip", "src_port", "dst_port", "proto")


_marker_ids = iter(range(1, 1 << 62))


@dataclass(frozen=True)
class MoveMarker:
    """In-band control payload carried by a ``mark_last`` packet.

    One marker covers a whole *batch* of moved partition keys bound for
    the same (old, new) instance pair — reallocation of thousands of flows
    is one metadata operation, not thousands (§7.3 R2). ``move_id`` is
    unique per vertex (all of its uses are vertex-scoped) so repeated
    moves of the same keys never alias.

    ``marker_id`` is a process-monotonic identity assigned at construction
    and excluded from equality: barrier bookkeeping keys on it instead of
    ``id(marker)``, whose value can be reused after the marker is GC'd and
    silently merge two different barriers (chclint CHC004).
    """

    scope_keys: frozenset
    fields: Tuple[str, ...]
    old_instance: str
    new_instance: str
    move_id: int = 0
    marker_id: int = field(
        default_factory=lambda: next(_marker_ids), compare=False, repr=False
    )


class Splitter:
    """Partitions one traffic stream across a vertex's instances."""

    def __init__(
        self,
        vertex_name: str,
        instances: Sequence[str],
        scopes: Optional[List[Tuple[str, ...]]] = None,
        partition_fields: Optional[Tuple[str, ...]] = None,
    ):
        if not instances:
            raise ValueError(f"splitter for {vertex_name!r} needs >= 1 instance")
        self.vertex_name = vertex_name
        self.instances: List[str] = list(instances)
        # Per-splitter move-id allocation: move ids are only ever used
        # vertex-scoped ((vertex, move_id) tuples, per-instance move sets,
        # the vertex-prefixed move notify key), and the notify key is
        # *hashed* for store shard/thread routing — a process-global
        # counter would make same-seed runs route moves differently.
        self._move_ids = iter(range(1, 1 << 62))
        # Hash-based default routing uses a *stable* member list: instances
        # added later (scale-up, clones) receive traffic only via explicit
        # overrides/moves, so existing flows never silently remap — CHC
        # reallocates flows only through the Figure 4 handover.
        self.hash_members: List[str] = list(instances)
        # scopes, most fine-grained first, as returned by NF.scope(); start
        # partitioning at the *coarsest* and refine only under imbalance.
        self.scopes: List[Tuple[str, ...]] = scopes or [FIVE_TUPLE]
        if partition_fields is None:
            partition_fields = self.scopes[-1] if self.scopes else FIVE_TUPLE
        self.partition_fields: Tuple[str, ...] = partition_fields or FIVE_TUPLE
        self.overrides: Dict[Tuple, str] = {}
        self._pending_first: Dict[Tuple, str] = {}
        self._pending_first_marker: Dict[Tuple, "MoveMarker"] = {}
        self.replicate: Dict[str, str] = {}  # original instance -> clone
        self.routed = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def key_of(self, packet: Packet) -> Tuple:
        # Partition on the canonical tuple so both directions of a flow hit
        # the same instance (rule 1 of §4.1).
        return scope_fields(packet.five_tuple.canonical(), self.partition_fields)

    def route(self, packet: Packet) -> List[str]:
        """Destination instance(s) for this packet.

        Returns more than one destination only while replication to a
        straggler's clone is active. Mutates the packet to apply a pending
        ``mark_first`` (Figure 4 step 2).
        """
        self.routed += 1
        # A replayed packet targeted at one of our instances must reach
        # exactly that instance (§5.3 #3: it carries the clone's ID).
        if packet.replay_target is not None and packet.replay_target in self.instances:
            return [packet.replay_target]

        key = self.key_of(packet)
        primary = self.overrides.get(key)
        if primary is None:
            primary = self.hash_members[stable_hash(key) % len(self.hash_members)]
        if self._pending_first.get(key) == primary:
            packet.mark_first = True
            packet.control = self._pending_first_marker.pop(key, None)
            del self._pending_first[key]
        destinations = [primary]
        clone = self.replicate.get(primary)
        if clone is not None:
            destinations.append(clone)
        return destinations

    # ------------------------------------------------------------------
    # membership & scope control
    # ------------------------------------------------------------------

    def add_instance(self, instance: str, join_hash: bool = False) -> None:
        if instance not in self.instances:
            self.instances.append(instance)
        if join_hash and instance not in self.hash_members:
            self.hash_members.append(instance)

    def remove_instance(self, instance: str) -> None:
        if instance in self.instances:
            self.instances.remove(instance)
        if instance in self.hash_members:
            self.hash_members.remove(instance)
        self.overrides = {k: v for k, v in self.overrides.items() if v != instance}

    def replace_instance(self, old: str, new: str) -> None:
        """Swap a failed instance for its failover in place (same slot, so
        the hash partition is unchanged)."""
        self.instances = [new if i == old else i for i in self.instances]
        self.hash_members = [new if i == old else i for i in self.hash_members]
        for key, value in list(self.overrides.items()):
            if value == old:
                self.overrides[key] = new

    def refine(self) -> bool:
        """Move to the next finer-grained scope (load imbalance response).

        Returns False when already at the finest declared scope.
        """
        ordered = self.scopes  # finest first
        try:
            index = ordered.index(self.partition_fields)
        except ValueError:
            index = len(ordered)
        if index == 0:
            return False
        self.partition_fields = ordered[index - 1] if index <= len(ordered) - 1 else ordered[-1]
        return True

    def grants_exclusive(self, spec: StateObjectSpec) -> bool:
        """Does the current split confine ``spec``'s keys to one instance?

        True when there is a single instance, or when the partition fields
        are a subset of the object's scope fields (§4.3 cross-flow caching
        precondition).
        """
        if len(self.instances) == 1 and not self.replicate:
            return True
        if not spec.scope_fields:
            return False
        return fields_subset(self.partition_fields, spec.scope_fields)

    # ------------------------------------------------------------------
    # moves (Figure 4 steps 1-2)
    # ------------------------------------------------------------------

    def current_instance_for(self, scope_key: Tuple) -> str:
        return self.overrides.get(
            scope_key, self.hash_members[stable_hash(scope_key) % len(self.hash_members)]
        )

    def begin_move(
        self, scope_keys, new_instance: str, current_of: Optional[Dict[Tuple, str]] = None
    ) -> List[Packet]:
        """Reallocate a batch of partition keys to ``new_instance``.

        Returns the ``mark_last`` control packets to enqueue — one per old
        instance currently holding any of the keys (keys already at the
        new instance need no marker). Subsequent packets for each key
        route to the new instance, the first per key carrying
        ``mark_first`` and the move marker (Figure 4 steps 1-2).

        ``current_of`` overrides where each key currently lives — needed
        when the partition granularity itself just changed (a §4.1 scope
        refinement), because the hash under the new fields no longer tells
        us the actual holder.
        """
        by_old: Dict[str, List[Tuple]] = {}
        for scope_key in scope_keys:
            if current_of is not None and scope_key in current_of:
                old = current_of[scope_key]
            else:
                old = self.current_instance_for(scope_key)
            if old == new_instance:
                continue
            by_old.setdefault(old, []).append(scope_key)
            self.overrides[scope_key] = new_instance
            self._pending_first[scope_key] = new_instance
        markers: List[Packet] = []
        for old, keys in sorted(by_old.items()):
            marker = MoveMarker(
                scope_keys=frozenset(keys),
                fields=self.partition_fields,
                old_instance=old,
                new_instance=new_instance,
                move_id=next(self._move_ids),
            )
            control = Packet(
                five_tuple=FiveTuple("0.0.0.0", "0.0.0.0", 0, 0, 0),
                size_bytes=60,
                control=marker,
            )
            control.mark_last = True
            for key in keys:
                self._pending_first_marker[key] = marker
            markers.append(control)
        return markers

    def allocation(self) -> Dict[str, object]:
        """Serialisable view of the current split (root recovery queries
        this from downstream instances, §5.4 "Root")."""
        return {
            "partition_fields": self.partition_fields,
            "instances": list(self.instances),
            "overrides": dict(self.overrides),
        }
