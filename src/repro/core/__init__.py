"""CHC core: the chain framework and its correctness machinery (§3–§5).

This package is the paper's primary contribution:

* :mod:`~repro.core.clock` / :mod:`~repro.core.bitvector` — per-packet
  logical clocks (root instance ID in the high bits) and the 32-bit XOR
  bit-vector identifiers (§5, §5.4).
* :mod:`~repro.core.nf_api` — the vertex programming model: NFs declare
  state objects (scope + access pattern) and implement ``process``.
* :mod:`~repro.core.dag` — logical chains (DAG API, §3) compiled into
  physical chains with per-vertex parallelism.
* :mod:`~repro.core.root` — the entry splitter: clock stamping, packet
  logging, the delete/XOR protocol, replay (§5).
* :mod:`~repro.core.splitter` — scope-aware traffic partitioning (§4.1).
* :mod:`~repro.core.instance` — the NF instance runtime: worker threads,
  framework-managed queues, measurement (§4.2).
* :mod:`~repro.core.chain_runtime` — wires root, instances, splitters,
  store clients, and the egress sink into a running chain.
* :mod:`~repro.core.handover` — cross-instance state handover (Figure 4).
* :mod:`~repro.core.cloning` — straggler mitigation with clone + replay
  and duplicate suppression (§5.3).
* :mod:`~repro.core.recovery` — NF and root failover (§5.4).
* :mod:`~repro.core.supervisor` — failure-notification handling: ordered
  (root → store → NF) recovery dispatch with dependency probing and a
  per-component recovery timeline.
* :mod:`~repro.core.vertex_manager` — statistics aggregation feeding
  operator-supplied scaling/straggler logic (§3).
"""

from repro.core.bitvector import TagRegistry, encode_tag
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.clock import LogicalClock, clock_root, clock_sequence
from repro.core.cloning import CloneController
from repro.core.dag import Edge, LogicalChain, Vertex
from repro.core.handover import move_flows
from repro.core.instance import NFInstance
from repro.core.nf_api import NetworkFunction, Output, StateAPI
from repro.core.recovery import fail_over_nf, fail_over_root
from repro.core.root import Root
from repro.core.splitter import Splitter
from repro.core.supervisor import RecoveryRecord, Supervisor
from repro.core.vertex_manager import VertexManager

__all__ = [
    "ChainRuntime",
    "CloneController",
    "Edge",
    "LogicalChain",
    "LogicalClock",
    "NFInstance",
    "NetworkFunction",
    "Output",
    "RecoveryRecord",
    "Root",
    "RuntimeParams",
    "Splitter",
    "StateAPI",
    "Supervisor",
    "TagRegistry",
    "Vertex",
    "VertexManager",
    "clock_root",
    "clock_sequence",
    "encode_tag",
    "fail_over_nf",
    "fail_over_root",
    "move_flows",
]
