"""The vertex programming model (§3): how NFs are written against CHC.

An NF author subclasses :class:`NetworkFunction`:

* declare state objects (:meth:`state_specs`) — each with a scope (which
  header fields key it) and an access pattern, which together select the
  Table 1 management strategy;
* implement :meth:`process` as a generator that reads/updates state via
  the :class:`StateAPI` (``yield from state.update(...)``) and returns the
  output packets;
* optionally declare custom store operations (:meth:`custom_operations`)
  which CHC loads into the datastore (§4.3).

The same NF code runs unchanged under CHC and under the baseline adapters
(:mod:`repro.baselines`), which substitute a different :class:`StateAPI`
implementation — that is what makes the head-to-head comparisons in the
evaluation apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.store.operations import OperationFn, OperationRegistry, default_registry
from repro.store.spec import StateObjectSpec
from repro.traffic.packet import Packet, scope_fields


@dataclass
class Output:
    """One packet emitted by an NF.

    ``edge`` names the outgoing logical edge (``"out"`` is the default
    main path); NFs with multiple output edges (e.g. an IDS steering
    suspicious traffic to a DPI) label them explicitly.
    """

    packet: Packet
    edge: str = "out"


class StateAPI:
    """What ``process`` sees: state access bound to the current packet.

    All methods are generators (``yield from``); the CHC implementation
    defers to the store client, the traditional baseline answers from a
    local dict with zero simulated delay.
    """

    def read(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        raise NotImplementedError

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Generator:
        """Offload an update; ``need_result=True`` when the NF consumes the
        operation's return value (e.g. a popped port)."""
        raise NotImplementedError

    def nondet(self, purpose: str, kind: str = "random") -> Generator:
        """A non-deterministic value, deterministic under replay (App. A)."""
        raise NotImplementedError


class LocalStateAPI(StateAPI):
    """In-process state, the "traditional NF" discipline (no external store).

    Also reused by unit tests to drive NF logic without a simulation.
    """

    def __init__(self, registry: Optional[OperationRegistry] = None, seed: int = 0):
        self.registry = registry or default_registry()
        self.data: Dict[Tuple[str, Optional[Tuple]], Any] = {}
        self._nondet_counter = seed

    def read(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        return self.data.get((obj_name, flow_key))
        yield  # pragma: no cover - generator protocol

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Generator:
        key = (obj_name, flow_key)
        new_value, return_value = self.registry.apply(op, self.data.get(key), args)
        self.data[key] = new_value
        return return_value
        yield  # pragma: no cover - generator protocol

    def nondet(self, purpose: str, kind: str = "random") -> Generator:
        # Deterministic counter-based source; a traditional NF has no
        # replay to stay consistent with, so any local source would do.
        self._nondet_counter += 1
        return (self._nondet_counter * 2654435761 % 2**32) / 2**32
        yield  # pragma: no cover - generator protocol


class NotFast(Exception):
    """A fast-path state access cannot be served locally.

    Raised by :class:`FastState` implementations when the requested object
    is not warm in the local cache (or its strategy requires a blocking
    store round-trip). The fast-path executor catches it, discards every
    speculative effect of the action, and reruns the packet through the
    general path — so raising it mid-action is always safe.
    """


class FastState:
    """Synchronous, local-only state access for declarative actions.

    The executor binds this to the NF instance's cached state. Accesses
    are **speculative**: updates are journalled against shadow copies and
    only replayed through the real client (WAL, bit-vector tags, sequence
    numbers, flush batching) once the whole action has succeeded. Any
    access that would need a store round-trip raises :class:`NotFast`.
    """

    def get(self, obj_name: str, flow_key: Optional[Tuple]) -> Any:
        raise NotImplementedError

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Any:
        """Apply an operation; returns the op's return value.

        ``need_result=True`` marks ops whose return value the action
        consumes — for strategies where delivering it would require a
        blocking store round-trip, the implementation raises
        :class:`NotFast` instead.
        """
        raise NotImplementedError


@dataclass
class MatchActionForm:
    """An NF's declarative match-action form (§6 "software P4").

    ``tables`` — the state objects the action is allowed to touch. This is
    the fast path's static contract: chclint rule CHC006 rejects actions
    that access (in particular cross-flow) state outside this set, and the
    executor enforces it dynamically by raising :class:`NotFast`.

    ``match`` — a pure predicate over packet **header fields** selecting
    the packets this form can handle (typically established-flow traffic).
    It must not touch state; packets failing it take the general path.

    ``action`` — ``action(packet, state) -> Optional[List[Output]]``.
    Runs synchronously against a :class:`FastState`; returns the outputs
    (``[]`` drops the packet), or ``None`` to decline and fall back. It
    must implement exactly the same per-packet semantics as ``process``
    for every packet that matches and whose state is locally available —
    the batching on/off equivalence tests hold NFs to that.
    """

    tables: Tuple[str, ...]
    match: Callable[[Packet], bool]
    action: Callable[[Packet, FastState], Optional[List[Output]]]


class NetworkFunction:
    """Base class for vertex programs."""

    name: str = "nf"

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        """Declared state objects; keys are object names."""
        return {}

    def scope(self) -> List[Tuple[str, ...]]:
        """Partitioning scopes, most- to least-fine-grained (§4.1).

        Default: the scopes of the declared state objects, finest first.
        """
        scopes = {spec.scope_fields for spec in self.state_specs().values() if spec.scope_fields}
        return sorted(scopes, key=len, reverse=True)

    def custom_operations(self) -> Dict[str, OperationFn]:
        """Developer-loaded store operations (§4.3)."""
        return {}

    def match_action_form(self) -> Optional[MatchActionForm]:
        """The NF's declarative fast-path form, if it has one (§6).

        Default None: the NF only has the general (generator) path. NFs
        that return a form are eligible for batched, fused dispatch; the
        generator path remains the source of truth for packets the form
        declines.
        """
        return None

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        """Handle one packet; returns a list of :class:`Output`.

        Must be a generator (state access uses ``yield from``). Returning
        an empty list drops the packet.
        """
        raise NotImplementedError

    # Convenience for implementations -----------------------------------

    @staticmethod
    def key_for(packet: Packet, fields: Tuple[str, ...]) -> Tuple:
        """Project the packet onto a scope's fields."""
        return scope_fields(packet.five_tuple, fields)

    def coarsest_scope(self) -> Tuple[str, ...]:
        scopes = self.scope()
        if not scopes:
            return ()
        return scopes[-1]

    def __repr__(self) -> str:
        return f"<NF {self.name}>"
