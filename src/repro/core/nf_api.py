"""The vertex programming model (§3): how NFs are written against CHC.

An NF author subclasses :class:`NetworkFunction`:

* declare state objects (:meth:`state_specs`) — each with a scope (which
  header fields key it) and an access pattern, which together select the
  Table 1 management strategy;
* implement :meth:`process` as a generator that reads/updates state via
  the :class:`StateAPI` (``yield from state.update(...)``) and returns the
  output packets;
* optionally declare custom store operations (:meth:`custom_operations`)
  which CHC loads into the datastore (§4.3).

The same NF code runs unchanged under CHC and under the baseline adapters
(:mod:`repro.baselines`), which substitute a different :class:`StateAPI`
implementation — that is what makes the head-to-head comparisons in the
evaluation apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.store.operations import OperationFn, OperationRegistry, default_registry
from repro.store.spec import StateObjectSpec
from repro.traffic.packet import Packet, scope_fields


@dataclass
class Output:
    """One packet emitted by an NF.

    ``edge`` names the outgoing logical edge (``"out"`` is the default
    main path); NFs with multiple output edges (e.g. an IDS steering
    suspicious traffic to a DPI) label them explicitly.
    """

    packet: Packet
    edge: str = "out"


class StateAPI:
    """What ``process`` sees: state access bound to the current packet.

    All methods are generators (``yield from``); the CHC implementation
    defers to the store client, the traditional baseline answers from a
    local dict with zero simulated delay.
    """

    def read(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        raise NotImplementedError

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Generator:
        """Offload an update; ``need_result=True`` when the NF consumes the
        operation's return value (e.g. a popped port)."""
        raise NotImplementedError

    def nondet(self, purpose: str, kind: str = "random") -> Generator:
        """A non-deterministic value, deterministic under replay (App. A)."""
        raise NotImplementedError


class LocalStateAPI(StateAPI):
    """In-process state, the "traditional NF" discipline (no external store).

    Also reused by unit tests to drive NF logic without a simulation.
    """

    def __init__(self, registry: Optional[OperationRegistry] = None, seed: int = 0):
        self.registry = registry or default_registry()
        self.data: Dict[Tuple[str, Optional[Tuple]], Any] = {}
        self._nondet_counter = seed

    def read(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        return self.data.get((obj_name, flow_key))
        yield  # pragma: no cover - generator protocol

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Generator:
        key = (obj_name, flow_key)
        new_value, return_value = self.registry.apply(op, self.data.get(key), args)
        self.data[key] = new_value
        return return_value
        yield  # pragma: no cover - generator protocol

    def nondet(self, purpose: str, kind: str = "random") -> Generator:
        # Deterministic counter-based source; a traditional NF has no
        # replay to stay consistent with, so any local source would do.
        self._nondet_counter += 1
        return (self._nondet_counter * 2654435761 % 2**32) / 2**32
        yield  # pragma: no cover - generator protocol


class NetworkFunction:
    """Base class for vertex programs."""

    name: str = "nf"

    def state_specs(self) -> Dict[str, StateObjectSpec]:
        """Declared state objects; keys are object names."""
        return {}

    def scope(self) -> List[Tuple[str, ...]]:
        """Partitioning scopes, most- to least-fine-grained (§4.1).

        Default: the scopes of the declared state objects, finest first.
        """
        scopes = {spec.scope_fields for spec in self.state_specs().values() if spec.scope_fields}
        return sorted(scopes, key=len, reverse=True)

    def custom_operations(self) -> Dict[str, OperationFn]:
        """Developer-loaded store operations (§4.3)."""
        return {}

    def process(self, packet: Packet, state: StateAPI) -> Generator:
        """Handle one packet; returns a list of :class:`Output`.

        Must be a generator (state access uses ``yield from``). Returning
        an empty list drops the packet.
        """
        raise NotImplementedError

    # Convenience for implementations -----------------------------------

    @staticmethod
    def key_for(packet: Packet, fields: Tuple[str, ...]) -> Tuple:
        """Project the packet onto a scope's fields."""
        return scope_fields(packet.five_tuple, fields)

    def coarsest_scope(self) -> Tuple[str, ...]:
        scopes = self.scope()
        if not scopes:
            return ()
        return scopes[-1]

    def __repr__(self) -> str:
        return f"<NF {self.name}>"
