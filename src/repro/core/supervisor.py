"""Failure supervision: detection notifications -> recovery protocols (§5.4).

The paper's framework "immediately detects the failure" and launches the
matching recovery protocol. :class:`Supervisor` is that control loop: it is
registered as a failure observer (of a
:class:`~repro.simnet.failures.FailureInjector` or a
:class:`~repro.chaos.director.ChaosDirector`), classifies the failed
component, and drives the right protocol as a simulation process:

* a failed :class:`~repro.core.root.Root` -> :func:`fail_over_root`;
* a failed :class:`~repro.core.instance.NFInstance` -> :func:`fail_over_nf`;
* a failed :class:`~repro.store.datastore.DatastoreInstance` ->
  :func:`~repro.store.store_recovery.recover_store_instance` (consulting
  only surviving clients), then re-pointing every root at the replacement.

Recoveries are *serialized* in dependency order — root first, then store,
then NF — matching the correlated-failure protocol (§5.4 "Correlated
failures"): NF failover replays the root's log, so the root must be back
first; the replay's state ops need the store.

Every step is recorded in a
:class:`~repro.simnet.monitor.RecoveryTimeline`, which is what chaos
campaign reports read to build recovery-time distributions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.core.instance import NFInstance
from repro.core.recovery import fail_over_nf, fail_over_root
from repro.core.root import Root
from repro.simnet.engine import Event
from repro.simnet.monitor import RecoveryTimeline
from repro.store.datastore import DatastoreInstance
from repro.store.store_recovery import recover_store_instance

# Recovery dispatch order under correlated failures (lower runs first).
_PRIORITY = {"root": 0, "store": 1, "nf": 2}


@dataclass
class RecoveryRecord:
    """One supervised recovery, successful or not."""

    component: str
    kind: str  # "root" | "store" | "nf"
    detected_at: float
    started_at: float = 0.0
    finished_at: float = 0.0
    result: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    @property
    def duration_us(self) -> float:
        return self.finished_at - self.started_at


class Supervisor:
    """Reacts to failure notifications by running recovery protocols.

    ``recovery_overrides`` maps a kind (``"root"`` / ``"store"`` / ``"nf"``)
    to an alternative generator function with the same signature as the
    default — chaos regression tests inject deliberately broken protocols
    here to prove the invariant checkers catch them.
    """

    def __init__(
        self,
        runtime,
        timeline: Optional[RecoveryTimeline] = None,
        recovery_overrides: Optional[Dict[str, Callable]] = None,
    ):
        self.runtime = runtime
        self.sim = runtime.sim
        self.timeline = timeline or RecoveryTimeline()
        self.records: List[RecoveryRecord] = []
        self._overrides = dict(recovery_overrides or {})
        self._queue: List[Tuple[int, int, str, Any]] = []
        self._seq = 0
        self._wake: Optional[Event] = None
        self._store_seq = 0
        self._in_progress = 0
        # Components already enqueued, held directly (identity semantics).
        # Holding the objects — not id() — keeps a strong reference, so a
        # GC'd component's reused address can never alias a new one
        # (chclint CHC004).
        self._handled: set = set()
        self._runner = self.sim.process(self._run(), name="supervisor")

    # ------------------------------------------------------------------
    # notification side (failure detector callback)
    # ------------------------------------------------------------------

    def component_name(self, component: Any) -> str:
        return getattr(component, "instance_id", None) or getattr(
            component, "name", repr(component)
        )

    def classify(self, component: Any) -> Optional[str]:
        if isinstance(component, Root):
            return "root"
        if isinstance(component, DatastoreInstance):
            return "store"
        if isinstance(component, NFInstance):
            return "nf"
        return None

    def on_failure(self, component: Any) -> None:
        """Failure-detector callback: enqueue the matching recovery."""
        kind = self.classify(component)
        name = self.component_name(component)
        if kind is None:
            self.timeline.record(self.sim.now, "detected", name, handled=False)
            return
        if component in self._handled:
            return  # already enqueued (dependency discovery beat the detector)
        if kind == "nf" and self.runtime.instances.get(
            getattr(component, "instance_id", None)
        ) is not component:
            # Orderly retirement (autoscaler scale-in, §8), not a crash:
            # the instance was already removed from the runtime's routing
            # with its state handed back. Nothing to recover.
            self._handled.add(component)
            self.timeline.record(self.sim.now, "retired", name, component_kind=kind)
            return
        if kind == "store" and component not in self.runtime.stores:
            # Planned store replacement (maintenance director): the node
            # was live-replaced — cluster map, roots and runtime.stores all
            # point at its successor — and then torn down on purpose. Its
            # death is not a failure; recovering it would resurrect a stale
            # copy of the state beside the live one.
            self._handled.add(component)
            self.timeline.record(self.sim.now, "retired", name, component_kind=kind)
            return
        self._handled.add(component)
        # A plain FailureInjector notifies at the crash instant; a
        # ChaosDirector records "failed" itself and notifies later. Record
        # the crash here only if the detector didn't.
        if not any(
            e.component == name and e.kind == "failed" for e in self.timeline.events
        ):
            self.timeline.record(self.sim.now, "failed", name, component_kind=kind)
        self.timeline.record(self.sim.now, "detected", name, component_kind=kind)
        self._seq += 1
        heapq.heappush(self._queue, (_PRIORITY[kind], self._seq, kind, component))
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    # ------------------------------------------------------------------
    # recovery side (one serialized process)
    # ------------------------------------------------------------------

    def _run(self) -> Generator:
        while True:
            if not self._queue:
                self._wake = self.sim.event(name="supervisor-wake")
                yield self._wake
                self._wake = None
                continue
            _priority, _seq, kind, component = heapq.heappop(self._queue)
            if self._discover_dependencies(kind):
                # a dependency is dead but its detection hasn't fired yet:
                # enqueue it (it sorts first) and retry this task after
                heapq.heappush(self._queue, (_priority, _seq, kind, component))
                continue
            self._in_progress += 1
            try:
                yield from self._recover(kind, component)
            finally:
                self._in_progress -= 1

    def _discover_dependencies(self, kind: str) -> int:
        """Probe the components a ``kind``-recovery depends on.

        NF failover replays the root's log and re-executes state ops; store
        recovery's re-executed commit signals target the root. A laggy
        heartbeat detector may not have declared those dead yet — but the
        recovery's first RPC to them would discover it, so model that probe
        here: any dead dependency is enqueued immediately (it outranks the
        dependent task in the priority order). Returns how many were found.
        """
        if kind == "root":
            return 0
        dead = [root for root in self.runtime.roots if not root.alive]
        if kind == "nf":
            dead += [store for store in self.runtime.stores if not store.alive]
        found = 0
        for component in dead:
            if component not in self._handled:
                self.on_failure(component)
                found += 1
        return found

    def _recover(self, kind: str, component: Any) -> Generator:
        name = self.component_name(component)
        record = RecoveryRecord(
            component=name, kind=kind, detected_at=self.sim.now, started_at=self.sim.now
        )
        self.records.append(record)
        self.timeline.record(self.sim.now, "recovery_started", name, component_kind=kind)
        protocol = self._overrides.get(kind) or getattr(self, f"_recover_{kind}")
        try:
            record.result = yield from protocol(self.runtime, component)
        except Exception as exc:  # recovery itself can fail (e.g. RpcGaveUp)
            record.error = exc
            record.finished_at = self.sim.now
            self.timeline.record(
                self.sim.now, "recovery_failed", name, component_kind=kind, error=repr(exc)
            )
            return
        record.finished_at = self.sim.now
        detail: Dict[str, Any] = {"component_kind": kind}
        replacement = getattr(record.result, "new_id", None) or getattr(
            getattr(record.result, "replacement", None), "name", None
        )
        if replacement:
            detail["replacement"] = replacement
        self.timeline.record(self.sim.now, "recovered", name, **detail)

    # --- default protocols -------------------------------------------

    @staticmethod
    def _recover_root(runtime, component: Root) -> Generator:
        result = yield from fail_over_root(runtime, root=component)
        return result

    @staticmethod
    def _recover_nf(runtime, component: NFInstance) -> Generator:
        result = yield from fail_over_nf(runtime, component.instance_id)
        return result

    def _recover_store(self, runtime, component: DatastoreInstance) -> Generator:
        self._store_seq += 1
        # A fresh name, not the old address: in-flight retries against the
        # old endpoint must keep failing until routing swaps to the fully
        # rebuilt replacement, then re-resolve to it via the cluster map.
        new_name = f"{component.name}r{self._store_seq}"
        clients = [i.client for i in runtime.instances.values() if i.alive]
        result = yield from recover_store_instance(
            self.sim, runtime.network, runtime.store, component, clients, new_name
        )
        replacement = result.replacement
        runtime.stores = [
            replacement if s.name == component.name else s for s in runtime.stores
        ]
        for root in runtime.roots:
            if root.store_endpoint == component.name:
                root.store_endpoint = replacement.name
            root.store_endpoints_for_prune = [
                replacement.name if s == component.name else s
                for s in root.store_endpoints_for_prune
            ]
            if root.alive:
                # commit-signal parity is unreliable across the rebuild
                root.note_store_recovered()
        return result

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while recoveries are queued or running."""
        return bool(self._queue) or self._in_progress > 0

    def failed_recoveries(self) -> List[RecoveryRecord]:
        return [record for record in self.records if record.error is not None]
