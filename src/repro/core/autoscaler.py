"""Closed-loop elastic autoscaler (§3, §8).

The paper's vertex managers run operator-supplied scaling logic and emit
decisions; CHC's job is to make the resulting reconfiguration safe. The
seed repo stopped at the decision — this controller closes the loop: it
consumes :class:`~repro.core.vertex_manager.VertexManager` scale events
and *actually* adds or retires instances, moving per-flow state through
the Figure-4 handover so the action is loss-free and order-preserving.

Routing discipline: the controller NEVER mutates ``splitter.hash_members``.
Flipping the hash ring mid-traffic silently remaps flows that are queued
but not yet claimed — their updates would later be rejected by the store's
ownership check (state loss without a crash). Instead, autoscaled
instances join only ``splitter.instances`` and receive traffic exclusively
via the per-key overrides that :func:`~repro.core.handover.move_flows`
installs, which is exactly the splitter's documented contract.

Scale-in is drain-then-retire: the victim's owned keys move back to their
hash homes, its queues and NIC ring empty, the flush ACK fence passes, and
only then does :meth:`ChainRuntime.retire_instance` remove it. If the
drain budget expires the retirement is aborted (the instance keeps
running) rather than risk dropping state — an autoscaler must degrade to
"too many instances", never to "lost flows".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Tuple

from repro.core.handover import move_flows
from repro.util import stable_hash


@dataclass
class ScaleAction:
    """One completed (or aborted) elastic action, for the timeline."""

    kind: str  # "scale_out" | "scale_in"
    vertex: str
    instance: str
    started_at: float
    finished_at: float = 0.0
    keys_moved: int = 0
    ok: bool = True
    note: str = ""


@dataclass
class AutoscaleStats:
    scale_outs: int = 0
    scale_ins: int = 0
    aborted: int = 0
    skipped_cooldown: int = 0
    skipped_busy: int = 0
    skipped_limit: int = 0


class AutoscaleController:
    """Subscribes to vertex-manager scale events and executes them."""

    def __init__(
        self,
        runtime,
        min_instances: int = 1,
        max_instances: int = 4,
        cooldown_us: float = 5_000.0,
        drain_poll_us: float = 200.0,
        drain_budget_us: float = 50_000.0,
    ):
        self.runtime = runtime
        self.sim = runtime.sim
        self.min_instances = min_instances
        self.max_instances = max_instances
        self.cooldown_us = cooldown_us
        self.drain_poll_us = drain_poll_us
        self.drain_budget_us = drain_budget_us
        self.stats = AutoscaleStats()
        self.actions: List[ScaleAction] = []
        self._busy: set = set()  # vertex names with an action in flight
        self._last_done: Dict[str, float] = {}
        self._spawned: Dict[str, List[str]] = {}  # vertex -> autoscaled ids
        self._seq = 0
        for vertex_name, manager in runtime.managers.items():
            self.attach(vertex_name, manager)

    def attach(self, vertex_name: str, manager) -> None:
        """Subscribe to one vertex manager (also called from ctor)."""
        manager.on_scale.append(
            lambda decision, _v=vertex_name: self._on_scale(_v, decision)
        )

    # ------------------------------------------------------------------
    # decision intake
    # ------------------------------------------------------------------

    def _alive_instances(self, vertex_name: str) -> List:
        return [i for i in self.runtime.instances_of(vertex_name) if i.alive]

    def _on_scale(self, vertex_name: str, decision: Any) -> None:
        action = decision.get("action") if isinstance(decision, dict) else decision
        if action not in ("scale_up", "scale_down"):
            return
        if vertex_name in self._busy:
            self.stats.skipped_busy += 1
            return
        if self.sim.now - self._last_done.get(vertex_name, -1e18) < self.cooldown_us:
            self.stats.skipped_cooldown += 1
            return
        n_alive = len(self._alive_instances(vertex_name))
        if action == "scale_up":
            if n_alive >= self.max_instances:
                self.stats.skipped_limit += 1
                return
            self._busy.add(vertex_name)
            self.sim.process(
                self._scale_out(vertex_name), name=f"scale-out-{vertex_name}"
            )
        else:
            victims = [
                i for i in self._spawned.get(vertex_name, [])
                if i in self.runtime.instances
            ]
            if n_alive <= self.min_instances or not victims:
                self.stats.skipped_limit += 1
                return
            self._busy.add(vertex_name)
            self.sim.process(
                self._scale_in(vertex_name, victims[-1]),
                name=f"scale-in-{vertex_name}",
            )

    # ------------------------------------------------------------------
    # scale-out: add an instance, move a fair share of hot flows to it
    # ------------------------------------------------------------------

    def _snapshot_holders(
        self, vertex_name: str
    ) -> Tuple[Dict[Tuple, str], Dict[str, int]]:
        """Current scope-key -> holder map plus per-holder queue depth."""
        splitter = self.runtime.splitter(vertex_name)
        holders: Dict[Tuple, str] = {}
        load: Dict[str, int] = {}
        for instance in self._alive_instances(vertex_name):
            load[instance.instance_id] = instance.queue_depth
            for _sk, (_obj, flow_key) in instance.client.owned_items().items():
                if flow_key is None:
                    continue
                scope_key = self.runtime._project(flow_key, splitter.partition_fields)
                if scope_key is not None:
                    holders[scope_key] = instance.instance_id
        return holders, load

    def _scale_out(self, vertex_name: str) -> Generator:
        self._seq += 1
        started = self.sim.now
        action = ScaleAction("scale_out", vertex_name, "", started)
        try:
            new = self.runtime.add_instance(vertex_name, suffix=f"as{self._seq}")
            action.instance = new.instance_id
            self._spawned.setdefault(vertex_name, []).append(new.instance_id)
            holders, load = self._snapshot_holders(vertex_name)
            n_after = len(self._alive_instances(vertex_name))
            share = len(holders) // n_after if n_after else 0
            if share:
                # heaviest holders shed first; key tiebreak keeps runs
                # deterministic under one seed
                ranked = sorted(
                    holders.items(),
                    key=lambda kv: (-load.get(kv[1], 0), kv[0]),
                )[:share]
                chosen = dict(ranked)
                result = yield from move_flows(
                    self.runtime,
                    vertex_name,
                    list(chosen),
                    new.instance_id,
                    current_of=chosen,
                )
                action.keys_moved = result.n_keys
            yield from self.runtime.notify_split_changed(vertex_name)
            self.stats.scale_outs += 1
        finally:
            action.finished_at = self.sim.now
            self.actions.append(action)
            self._busy.discard(vertex_name)
            self._last_done[vertex_name] = self.sim.now

    # ------------------------------------------------------------------
    # scale-in: move state home, drain, then retire
    # ------------------------------------------------------------------

    def _hash_home(self, splitter, scope_key: Tuple) -> str:
        # The victim never sat in hash_members, so its hash home is always
        # another instance — no self-moves.
        return splitter.hash_members[stable_hash(scope_key) % len(splitter.hash_members)]

    def _victim_keys_by_home(self, splitter, victim) -> Dict[str, Dict[Tuple, str]]:
        by_home: Dict[str, Dict[Tuple, str]] = {}
        for _sk, (_obj, flow_key) in victim.client.owned_items().items():
            if flow_key is None:
                continue
            scope_key = self.runtime._project(flow_key, splitter.partition_fields)
            if scope_key is None:
                continue
            home = self._hash_home(splitter, scope_key)
            by_home.setdefault(home, {})[scope_key] = victim.instance_id
        return by_home

    def _scale_in(self, vertex_name: str, victim_id: str) -> Generator:
        started = self.sim.now
        action = ScaleAction("scale_in", vertex_name, victim_id, started)
        deadline = started + self.drain_budget_us
        splitter = self.runtime.splitter(vertex_name)
        victim = self.runtime.instances[victim_id]
        try:
            while True:
                # 1. hand every owned flow back to its hash home via the
                #    Figure-4 machinery (ownership + buffering, no loss)
                by_home = self._victim_keys_by_home(splitter, victim)
                for home, keys in sorted(by_home.items()):
                    result = yield from move_flows(
                        self.runtime, vertex_name, list(keys), home, current_of=keys
                    )
                    action.keys_moved += result.n_keys
                    # a key now routed to its hash home needs no override
                    for scope_key in keys:
                        if splitter.overrides.get(scope_key) == home:
                            del splitter.overrides[scope_key]

                # 2. drain: queued packets, NIC ring, un-ACK'd flushes
                while self.sim.now < deadline:
                    nic = self.runtime.nics.get(victim_id)
                    if victim.queue_depth == 0 and (nic is None or len(nic._queue) == 0):
                        break
                    yield self.sim.timeout(self.drain_poll_us)
                yield victim.client.ack_barrier()

                # 3. re-check: packets drained in step 2 may have claimed
                #    new ownership (a flow's first packet landed mid-drain)
                if not self._victim_keys_by_home(splitter, victim):
                    break
                if self.sim.now >= deadline:
                    action.ok = False
                    action.note = "drain budget exceeded; retirement aborted"
                    self.stats.aborted += 1
                    return
            self.runtime.retire_instance(victim_id)
            spawned = self._spawned.get(vertex_name, [])
            if victim_id in spawned:
                spawned.remove(victim_id)
            yield from self.runtime.notify_split_changed(vertex_name)
            self.stats.scale_ins += 1
        finally:
            action.finished_at = self.sim.now
            self.actions.append(action)
            self._busy.discard(vertex_name)
            self._last_done[vertex_name] = self.sim.now

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        return {
            "scale_outs": self.stats.scale_outs,
            "scale_ins": self.stats.scale_ins,
            "aborted": self.stats.aborted,
            "skipped": {
                "cooldown": self.stats.skipped_cooldown,
                "busy": self.stats.skipped_busy,
                "limit": self.stats.skipped_limit,
            },
            "actions": [
                {
                    "kind": a.kind,
                    "vertex": a.vertex,
                    "instance": a.instance,
                    "started_at": a.started_at,
                    "finished_at": a.finished_at,
                    "keys_moved": a.keys_moved,
                    "ok": a.ok,
                    "note": a.note,
                }
                for a in self.actions
            ],
        }
