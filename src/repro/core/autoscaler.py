"""Closed-loop elastic autoscaler (§3, §8).

The paper's vertex managers run operator-supplied scaling logic and emit
decisions; CHC's job is to make the resulting reconfiguration safe. The
seed repo stopped at the decision — this controller closes the loop: it
consumes :class:`~repro.core.vertex_manager.VertexManager` scale events
and *actually* adds or retires instances, moving per-flow state through
the Figure-4 handover so the action is loss-free and order-preserving.

Routing discipline: the controller NEVER mutates ``splitter.hash_members``.
Flipping the hash ring mid-traffic silently remaps flows that are queued
but not yet claimed — their updates would later be rejected by the store's
ownership check (state loss without a crash). Instead, autoscaled
instances join only ``splitter.instances`` and receive traffic exclusively
via the per-key overrides that :func:`~repro.core.handover.move_flows`
installs, which is exactly the splitter's documented contract.

Scale-in is drain-then-retire: the victim's owned keys move back to their
hash homes, its queues and NIC ring empty, the flush ACK fence passes, and
only then does :meth:`ChainRuntime.retire_instance` remove it. If the
drain budget expires the retirement is aborted (the instance keeps
running) rather than risk dropping state — an autoscaler must degrade to
"too many instances", never to "lost flows".
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.handover import move_flows
from repro.store.datastore import DatastoreInstance
from repro.store.keys import vertex_of_key
from repro.util import stable_hash


@dataclass
class ScaleAction:
    """One completed (or aborted) elastic action, for the timeline."""

    kind: str  # "scale_out" | "scale_in"
    vertex: str
    instance: str
    started_at: float
    finished_at: float = 0.0
    keys_moved: int = 0
    ok: bool = True
    note: str = ""


@dataclass
class AutoscaleStats:
    scale_outs: int = 0
    scale_ins: int = 0
    aborted: int = 0
    skipped_cooldown: int = 0
    skipped_busy: int = 0
    skipped_limit: int = 0
    store_scale_outs: int = 0
    store_skipped: int = 0


class AutoscaleController:
    """Subscribes to vertex-manager scale events and executes them."""

    def __init__(
        self,
        runtime,
        min_instances: int = 1,
        max_instances: int = 4,
        cooldown_us: float = 5_000.0,
        drain_poll_us: float = 200.0,
        drain_budget_us: float = 50_000.0,
    ):
        self.runtime = runtime
        self.sim = runtime.sim
        self.min_instances = min_instances
        self.max_instances = max_instances
        self.cooldown_us = cooldown_us
        self.drain_poll_us = drain_poll_us
        self.drain_budget_us = drain_budget_us
        self.stats = AutoscaleStats()
        self.actions: List[ScaleAction] = []
        self._busy: set = set()  # vertex names with an action in flight
        self._last_done: Dict[str, float] = {}
        self._spawned: Dict[str, List[str]] = {}  # vertex -> autoscaled ids
        self._seq = 0
        self._store_seq = 0
        for vertex_name, manager in runtime.managers.items():
            self.attach(vertex_name, manager)

    def attach(self, vertex_name: str, manager) -> None:
        """Subscribe to one vertex manager (also called from ctor)."""
        manager.on_scale.append(
            lambda decision, _v=vertex_name: self._on_scale(_v, decision)
        )

    # ------------------------------------------------------------------
    # decision intake
    # ------------------------------------------------------------------

    def _alive_instances(self, vertex_name: str) -> List:
        return [i for i in self.runtime.instances_of(vertex_name) if i.alive]

    def _on_scale(self, vertex_name: str, decision: Any) -> None:
        action = decision.get("action") if isinstance(decision, dict) else decision
        if action not in ("scale_up", "scale_down"):
            return
        if vertex_name in self._busy:
            self.stats.skipped_busy += 1
            return
        if self.sim.now - self._last_done.get(vertex_name, -1e18) < self.cooldown_us:
            self.stats.skipped_cooldown += 1
            return
        n_alive = len(self._alive_instances(vertex_name))
        if action == "scale_up":
            if n_alive >= self.max_instances:
                self.stats.skipped_limit += 1
                return
            self._busy.add(vertex_name)
            self.sim.process(
                self._scale_out(vertex_name), name=f"scale-out-{vertex_name}"
            )
        else:
            victims = [
                i for i in self._spawned.get(vertex_name, [])
                if i in self.runtime.instances
            ]
            if n_alive <= self.min_instances or not victims:
                self.stats.skipped_limit += 1
                return
            self._busy.add(vertex_name)
            self.sim.process(
                self._scale_in(vertex_name, victims[-1]),
                name=f"scale-in-{vertex_name}",
            )

    # ------------------------------------------------------------------
    # scale-out: add an instance, move a fair share of hot flows to it
    # ------------------------------------------------------------------

    def _snapshot_holders(
        self, vertex_name: str
    ) -> Tuple[Dict[Tuple, str], Dict[str, int]]:
        """Current scope-key -> holder map plus per-holder queue depth."""
        splitter = self.runtime.splitter(vertex_name)
        holders: Dict[Tuple, str] = {}
        load: Dict[str, int] = {}
        for instance in self._alive_instances(vertex_name):
            load[instance.instance_id] = instance.queue_depth
            for _sk, (_obj, flow_key) in instance.client.owned_items().items():
                if flow_key is None:
                    continue
                scope_key = self.runtime._project(flow_key, splitter.partition_fields)
                if scope_key is not None:
                    holders[scope_key] = instance.instance_id
        return holders, load

    def _scale_out(self, vertex_name: str) -> Generator:
        self._seq += 1
        started = self.sim.now
        action = ScaleAction("scale_out", vertex_name, "", started)
        try:
            new = self.runtime.add_instance(vertex_name, suffix=f"as{self._seq}")
            action.instance = new.instance_id
            self._spawned.setdefault(vertex_name, []).append(new.instance_id)
            holders, load = self._snapshot_holders(vertex_name)
            n_after = len(self._alive_instances(vertex_name))
            share = len(holders) // n_after if n_after else 0
            if share:
                # heaviest holders shed first; key tiebreak keeps runs
                # deterministic under one seed
                ranked = sorted(
                    holders.items(),
                    key=lambda kv: (-load.get(kv[1], 0), kv[0]),
                )[:share]
                chosen = dict(ranked)
                result = yield from move_flows(
                    self.runtime,
                    vertex_name,
                    list(chosen),
                    new.instance_id,
                    current_of=chosen,
                )
                action.keys_moved = result.n_keys
            yield from self.runtime.notify_split_changed(vertex_name)
            self.stats.scale_outs += 1
        finally:
            action.finished_at = self.sim.now
            self.actions.append(action)
            self._busy.discard(vertex_name)
            self._last_done[vertex_name] = self.sim.now

    # ------------------------------------------------------------------
    # scale-in: move state home, drain, then retire
    # ------------------------------------------------------------------

    def _hash_home(self, splitter, scope_key: Tuple) -> str:
        # The victim never sat in hash_members, so its hash home is always
        # another instance — no self-moves.
        return splitter.hash_members[stable_hash(scope_key) % len(splitter.hash_members)]

    def _victim_keys_by_home(self, splitter, victim) -> Dict[str, Dict[Tuple, str]]:
        by_home: Dict[str, Dict[Tuple, str]] = {}
        for _sk, (_obj, flow_key) in victim.client.owned_items().items():
            if flow_key is None:
                continue
            scope_key = self.runtime._project(flow_key, splitter.partition_fields)
            if scope_key is None:
                continue
            home = self._hash_home(splitter, scope_key)
            by_home.setdefault(home, {})[scope_key] = victim.instance_id
        return by_home

    def _scale_in(self, vertex_name: str, victim_id: str) -> Generator:
        started = self.sim.now
        action = ScaleAction("scale_in", vertex_name, victim_id, started)
        deadline = started + self.drain_budget_us
        splitter = self.runtime.splitter(vertex_name)
        victim = self.runtime.instances[victim_id]
        try:
            while True:
                # 1. hand every owned flow back to its hash home via the
                #    Figure-4 machinery (ownership + buffering, no loss)
                by_home = self._victim_keys_by_home(splitter, victim)
                for home, keys in sorted(by_home.items()):
                    result = yield from move_flows(
                        self.runtime, vertex_name, list(keys), home, current_of=keys
                    )
                    action.keys_moved += result.n_keys
                    # a key now routed to its hash home needs no override
                    for scope_key in keys:
                        if splitter.overrides.get(scope_key) == home:
                            del splitter.overrides[scope_key]

                # 2. drain: queued packets, NIC ring, un-ACK'd flushes
                while self.sim.now < deadline:
                    nic = self.runtime.nics.get(victim_id)
                    if victim.queue_depth == 0 and (nic is None or len(nic._queue) == 0):
                        break
                    yield self.sim.timeout(self.drain_poll_us)
                yield victim.client.ack_barrier()

                # 3. re-check: packets drained in step 2 may have claimed
                #    new ownership (a flow's first packet landed mid-drain)
                if not self._victim_keys_by_home(splitter, victim):
                    break
                if self.sim.now >= deadline:
                    action.ok = False
                    action.note = "drain budget exceeded; retirement aborted"
                    self.stats.aborted += 1
                    return
            self.runtime.retire_instance(victim_id)
            spawned = self._spawned.get(vertex_name, [])
            if victim_id in spawned:
                spawned.remove(victim_id)
            yield from self.runtime.notify_split_changed(vertex_name)
            self.stats.scale_ins += 1
        finally:
            action.finished_at = self.sim.now
            self.actions.append(action)
            self._busy.discard(vertex_name)
            self._last_done[vertex_name] = self.sim.now

    # ------------------------------------------------------------------
    # store-side elasticity: add a datastore replica under overload
    # ------------------------------------------------------------------

    def enable_store_elasticity(
        self,
        rejection_threshold: int = 10,
        window_us: float = 200.0,
        windows_over: int = 3,
        max_stores: int = 2,
    ) -> None:
        """Watch admission-control rejections; scale the store tier out.

        NF-side scaling reacts to queue backlog; the store tier's overload
        signal is different — ``overload_rejections`` from the §8 admission
        budget. Every ``window_us`` the controller samples the cluster-wide
        rejection total; ``windows_over`` consecutive windows each adding
        at least ``rejection_threshold`` rejections (hysteresis: one bursty
        window must not trigger a migration) re-home the hottest vertex of
        the hottest store onto a fresh replica, up to ``max_stores`` store
        instances in total.
        """
        self.sim.process(
            self._store_watch(
                rejection_threshold, window_us, windows_over, max_stores
            ),
            name="store-elasticity",
        )

    def _store_watch(
        self,
        rejection_threshold: int,
        window_us: float,
        windows_over: int,
        max_stores: int,
    ) -> Generator:
        last_total = 0
        streak = 0
        while True:
            yield self.sim.timeout(window_us)
            stores = [s for s in self.runtime.stores if s.alive]
            total = sum(s.stats.overload_rejections for s in stores)
            delta, last_total = total - last_total, total
            streak = streak + 1 if delta >= rejection_threshold else 0
            if streak < windows_over:
                continue
            streak = 0
            if len(stores) >= max_stores:
                self.stats.store_skipped += 1
                continue
            yield from self._store_scale_out()

    def _hot_store(self) -> Optional[DatastoreInstance]:
        alive = [s for s in self.runtime.stores if s.alive]
        if not alive:
            return None
        return max(alive, key=lambda s: (s.stats.overload_rejections, s.name))

    def _vertex_write_load(self, store: DatastoreInstance, vertex: str) -> int:
        """Recent-write proxy: unpruned dedup-log entries for the vertex.

        Log entries are pruned once their packet leaves the chain, so the
        steady-state count tracks write rate x pipeline latency — a far
        better hotness signal than key count (one shared counter key can
        carry most of a store's load).
        """
        return sum(
            len(seqs)
            for (key, _clock), seqs in store._update_log.items()
            if vertex_of_key(key) == vertex
        )

    def _store_scale_out(self) -> Generator:
        """Re-home the hottest vertex of the hottest store onto a replica.

        The mechanics mirror the maintenance director's ``replace_store``
        (DESIGN.md §12), scoped to one vertex: snapshot + routing swap in a
        single sim instant, then a per-vertex lame duck instead of the
        whole-node mute — the hot store keeps serving its remaining
        vertices at full speed while un-ACK'd clients of the migrated one
        retransmit onto the replica.
        """
        runtime = self.runtime
        hot = self._hot_store()
        if hot is None:
            return
        candidates = runtime.store.vertices_assigned_to(hot.name)
        if len(candidates) < 2:
            # a single-tenant store cannot be split: moving its only
            # vertex just relocates the hotspot
            self.stats.store_skipped += 1
            return
        vertex = max(
            candidates, key=lambda v: (self._vertex_write_load(hot, v), v)
        )
        self._store_seq += 1
        started = self.sim.now
        name = f"{hot.name}el{self._store_seq}"
        action = ScaleAction("store_scale_out", vertex, name, started)

        # --- snapshot + routing swap: one sim instant, no yields --------
        replica = DatastoreInstance(
            self.sim,
            runtime.network,
            name,
            n_threads=hot.n_threads,
            op_service_us=hot.op_service_us,
            registry=hot.registry,
            root_endpoint=hot.root_endpoint,
            checkpoint_interval_us=hot.checkpoint_interval_us,
            dedup_enabled=hot.dedup_enabled,
            seed=runtime.params.seed + 7_000 + self._store_seq,
            inflight_limit=hot.inflight_limit,
            overload_retry_after_us=hot.overload_retry_after_us,
        )
        moved = [k for k in hot._data if vertex_of_key(k) == vertex]
        for key in moved:
            replica._data[key] = copy.deepcopy(hot._data[key])
            if key in hot._owners:
                replica._owners[key] = hot._owners[key]
            if key in hot._ts:
                replica._ts[key] = dict(hot._ts[key])
        replica._clones = dict(hot._clones)
        # pruned-clock memory must travel with the state: a retransmission
        # that was in flight across the migration may carry a clock the old
        # node already pruned
        replica._pruned_clocks |= hot._pruned_clocks
        for (key, clock), seqs in hot._update_log.items():
            if vertex_of_key(key) != vertex:
                continue
            for seq, value in seqs.items():
                replica._log_committed(key, clock, seq, value)
        for ours, theirs in (
            (hot._value_watchers, replica._value_watchers),
            (hot._owner_watchers, replica._owner_watchers),
        ):
            for key in moved:
                if key in ours:
                    theirs[key] = set(ours[key])
        runtime.store.add_replica(replica, vertices=[vertex])
        runtime.stores.append(replica)
        for root in runtime.roots:
            root.store_endpoints_for_prune = list(
                root.store_endpoints_for_prune
            ) + [name]
            if root.alive:
                # commit-signal parity is unreliable across the swap: the
                # old node still signals for in-flight ops it commits, and
                # their retransmissions signal again from the replica
                root.note_store_recovered()
        hot.enter_vertex_lame_duck(vertex)
        action.keys_moved = len(moved)
        self.stats.store_scale_outs += 1

        # --- drain, then garbage-collect the dead copies ----------------
        # Wait until no request for the migrated vertex sits in the old
        # node's thread queues (global idleness never comes — the other
        # vertices are still under load), then drop the stale state so
        # audits folding all stores into one map see only the replica's
        # copy. The permanent per-vertex mute keeps any later straggler's
        # phantom writes invisible, so a budget overrun is cosmetic.
        deadline = started + self.drain_budget_us
        quiet = 0
        while quiet < 2 and self.sim.now < deadline:
            yield self.sim.timeout(self.drain_poll_us)
            quiet = quiet + 1 if not self._vertex_pending(hot, vertex) else 0
        if quiet < 2:
            action.ok = False
            action.note = "drain budget exceeded; stale copies GC'd anyway"
        hot.forget_vertex(vertex)
        action.finished_at = self.sim.now
        self.actions.append(action)

    @staticmethod
    def _vertex_pending(store: DatastoreInstance, vertex: str) -> bool:
        """Any queued request on ``store`` touching ``vertex``'s keys?"""
        for queue in store._queues:
            for payload, _request in queue._items:
                entries = getattr(payload, "entries", None)
                if entries is not None:
                    if any(
                        vertex_of_key(e.key) == vertex for e in entries
                    ):
                        return True
                    continue
                key = getattr(payload, "key", None)
                if key is not None and vertex_of_key(key) == vertex:
                    return True
        return False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        return {
            "scale_outs": self.stats.scale_outs,
            "scale_ins": self.stats.scale_ins,
            "store_scale_outs": self.stats.store_scale_outs,
            "store_skipped": self.stats.store_skipped,
            "aborted": self.stats.aborted,
            "skipped": {
                "cooldown": self.stats.skipped_cooldown,
                "busy": self.stats.skipped_busy,
                "limit": self.stats.skipped_limit,
            },
            "actions": [
                {
                    "kind": a.kind,
                    "vertex": a.vertex,
                    "instance": a.instance,
                    "started_at": a.started_at,
                    "finished_at": a.finished_at,
                    "keys_moved": a.keys_moved,
                    "ok": a.ok,
                    "note": a.note,
                }
                for a in self.actions
            ],
        }
