"""The CHC chain runtime: compiles a logical chain and runs it (§3, §4).

``ChainRuntime`` owns everything Figure 3a draws:

* the datastore cluster (one or more instances, vertices pinned to
  instances);
* the root (clock stamping, packet log, delete protocol);
* per-vertex instances, each with its store client, worker threads and a
  line-rate-limited input NIC;
* one splitter per vertex (all upstream producers share the downstream
  vertex's partitioning, as §4.1 requires);
* the per-instance duplicate filters (§5.3) and the packet-copy accounting
  that feeds the root's delete protocol (Figure 6);
* handover rendezvous used by the Figure 4 protocol.

Experiments use it like::

    chain = LogicalChain()
    chain.add_vertex("nat", Nat, parallelism=1, entry=True)
    chain.add_vertex("scan", PortscanDetector)
    chain.add_edge("nat", "scan")
    runtime = ChainRuntime(sim, chain)
    source = ReplaySource(sim, trace.packets, runtime.inject, load_fraction=0.5)
    sim.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.analysis import runtime as _sanitize
from repro.core.bitvector import TagRegistry
from repro.core.clock import LogicalClock, clock_root
from repro.core.dag import LogicalChain
from repro.core.duplicates import DuplicateFilter
from repro.core.instance import (
    NFInstance,
    POLICY_BLOCK,
    SHED_CAUSE_NIC,
    SHED_CAUSE_QUEUE,
)
from repro.core.nf_api import Output
from repro.core.root import DeleteRequest, Root
from repro.core.splitter import FIVE_TUPLE, MoveMarker, Splitter
from repro.core.vertex_manager import VertexManager
from repro.simnet.engine import Channel, Event, Simulator
from repro.simnet.monitor import (
    LatencyRecorder,
    ThroughputMeter,
    channel_depth_peaks,
    engine_counters,
)
from repro.simnet.network import Link, Network
from repro.simnet.nic import Nic
from repro.store.breaker import CircuitBreaker
from repro.store.client import StoreClient
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.traffic.packet import Packet

_FIELD_POSITION = {"src_ip": 0, "dst_ip": 1, "src_port": 2, "dst_port": 3, "proto": 4}


def _is_control_item(item: Any) -> bool:
    """NIC never-drop predicate: in-band control traffic only.

    Losing a handover marker or the replay-end barrier would wedge a
    Figure-4/§5.4 protocol, so those bypass ring bounds. Bulk *replayed*
    data packets do NOT: a replay storm flows through the same bounded
    queues as live traffic (the root paces against entry-ring space, see
    ``Root.replay``), and a copy that still overruns a ring is shed and
    accounted like any other drop — its log entry stays replayable.
    """
    return (
        getattr(item, "control", None) is not None
        or getattr(item, "mark_first", False)
        or getattr(item, "replay_end", False)
    )


@dataclass
class RuntimeParams:
    """Calibrated simulation constants and CHC configuration toggles.

    Latency model (all µs): NF<->store links are ``store_link_us`` one-way
    (RTT ≈ 28µs, matching §7.2's 29µs clock-persist cost); NF->NF hops are
    ``hop_link_us``; the root<->last-NF delete path is ``root_link_us``
    one-way (§7.2 reports a 7.9µs median synchronous delete).

    Model toggles map to §7.1's externalization models:

    * EO        — ``caching_enabled=False, wait_for_acks=True``
    * EO+C      — ``caching_enabled=True,  wait_for_acks=True``
    * EO+C+NA   — ``caching_enabled=True,  wait_for_acks=False`` (default)
    """

    store_link_us: float = 14.0
    hop_link_us: float = 3.0
    root_link_us: float = 4.0
    proc_time_us: float = 2.0
    proc_time_overrides: Dict[str, float] = field(default_factory=dict)
    n_workers: int = 8
    nic_rate_gbps: float = 10.0
    nic_overhead_bits: int = 600
    wait_for_acks: bool = False
    retransmit_timeout_us: Optional[float] = 500.0
    caching_enabled: bool = True
    sync_delete: bool = False
    suppress_duplicates: bool = True
    store_dedup: bool = True
    clock_persist_every: int = 100
    log_in_store: bool = False
    local_log_cost_us: float = 1.0
    log_threshold: int = 500_000
    store_threads: int = 4
    store_op_service_us: float = 0.196
    checkpoint_interval_us: Optional[float] = None
    seed: int = 0

    # --- distributed shard fabric (repro.dist, DESIGN.md §13) -------------
    # ``root_id_base`` offsets this runtime's root IDs so several shard
    # processes share one store without colliding in clock space (shard k
    # owns root{k}, and its clocks carry k in the high bits). A restarted
    # shard passes ``root_clock_resume`` — the highest clock sequence the
    # store has any trace of for its root — so reissued clocks can never
    # collide with the dead incarnation's entries in the dedup log.
    root_id_base: int = 0
    root_clock_resume: Optional[int] = None

    # --- batched match-action fast path (§6 "software P4") ---------------
    # When on, NFs that declare a MatchActionForm run batched worker loops
    # with fused dispatch into adjacent declarative NFs. Off by default:
    # the general path is the semantic baseline the fast path must match
    # byte-for-byte (see tools/determinism_check.py --fastpath-equivalence).
    # Incompatible with wait_for_acks (EO/EO+C models serialize every op).
    fastpath_enabled: bool = False
    fastpath_batch: int = 16

    # --- overload resilience (§8; all defaults preserve seed behaviour) ---
    # Bounded instance queues: total backlog bound per NF instance (None =
    # unbounded, the seed's behaviour) and the policy applied when full.
    instance_queue_capacity: Optional[int] = None
    worker_queue_capacity: Optional[int] = None  # BLOCK: per-worker bound
    overload_policy: str = "block"  # "block" | "drop" | "shed"
    # Finite NIC rings: tail drops are folded into the Network drop ledger
    # and reported to the root so shed packets are never silent loss.
    nic_queue_limit: Optional[int] = None
    # Store admission control: aggregate thread-queue budget per instance.
    store_inflight_limit: Optional[int] = None
    store_overload_retry_us: float = 50.0
    # Client-side circuit breaker over store access.
    breaker_enabled: bool = False
    breaker_failure_threshold: int = 5
    breaker_open_us: float = 2_000.0
    breaker_slow_call_us: Optional[float] = None

    def proc_time_for(self, vertex: str) -> float:
        return self.proc_time_overrides.get(vertex, self.proc_time_us)


class ChainRuntime:
    """See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        chain: LogicalChain,
        params: Optional[RuntimeParams] = None,
        n_store_instances: int = 1,
        n_roots: int = 1,
        start_managers: bool = False,
        store_cluster: Optional[StoreCluster] = None,
    ):
        chain.validate()
        self.sim = sim
        self.chain = chain
        self.params = params or RuntimeParams()
        self.network = Network(
            sim, Link(latency_us=self.params.store_link_us), seed=self.params.seed
        )
        self.tags = TagRegistry()

        # --- datastore cluster ------------------------------------------
        if store_cluster is not None:
            # External store (repro.dist shard mode): the runtime routes all
            # store traffic through the caller's cluster — typically remote
            # handles whose endpoints the shard bridges onto a socket — and
            # builds no local DatastoreInstance.
            self.stores = list(store_cluster.instances)
            self.store = store_cluster
        else:
            self.stores = [
                DatastoreInstance(
                    sim,
                    self.network,
                    f"store{i}",
                    n_threads=self.params.store_threads,
                    op_service_us=self.params.store_op_service_us,
                    root_endpoint="root{root_id}",
                    checkpoint_interval_us=self.params.checkpoint_interval_us,
                    dedup_enabled=self.params.store_dedup,
                    seed=self.params.seed + i,
                    inflight_limit=self.params.store_inflight_limit,
                    overload_retry_after_us=self.params.store_overload_retry_us,
                )
                for i in range(n_store_instances)
            ]
            self.store = StoreCluster(self.stores)

        # --- instances, splitters ---------------------------------------
        self.instances: Dict[str, NFInstance] = {}
        self.vertex_instances: Dict[str, List[str]] = {}
        self.splitters: Dict[str, Splitter] = {}
        self.nics: Dict[str, Nic] = {}
        self.filters: Dict[str, DuplicateFilter] = {}
        self.managers: Dict[str, VertexManager] = {}
        self._sinks: Set[str] = set(chain.sinks())

        for index, (name, vertex) in enumerate(chain.vertices.items()):
            self.store.assign_vertex(name, self.stores[index % n_store_instances].name)
            self.vertex_instances[name] = []
            probe_nf = vertex.nf_factory()
            for op_name, op_fn in probe_nf.custom_operations().items():
                self.store.register_custom_op(op_name, op_fn)
            for k in range(vertex.parallelism):
                self.add_instance(name, suffix=str(k))
            scopes = probe_nf.scope() or [FIVE_TUPLE]
            self.splitters[name] = Splitter(
                name, list(self.vertex_instances[name]), scopes=scopes
            )

        # --- roots ---------------------------------------------------------
        # §4.1/§5: R root instances, statically partitioned input, each
        # stamping clocks carrying its ID in the high bits. root_id_base
        # offsets the IDs (shard k of a distributed fabric owns root IDs
        # starting at k); root_clock_resume restarts the clock above every
        # sequence the store may have seen from a dead incarnation.
        base = self.params.root_id_base
        resume = self.params.root_clock_resume
        self.roots: List[Root] = [
            Root(
                sim,
                self.network,
                f"root{root_id}",
                forward=self._forward_from_root,
                forward_wait=self._entry_hop_wait,
                store_endpoint=self.stores[0].name,
                root_id=root_id,
                persist_every=self.params.clock_persist_every,
                log_in_store=self.params.log_in_store,
                local_log_cost_us=self.params.local_log_cost_us,
                log_threshold=self.params.log_threshold,
                store_endpoints_for_prune=[s.name for s in self.stores],
                clock=(
                    LogicalClock.resume_from(
                        root_id, resume, self.params.clock_persist_every
                    )
                    if resume is not None
                    else None
                ),
            )
            for root_id in range(base, base + n_roots)
        ]
        for root in self.roots:
            root.on_deleted.append(self._on_packet_deleted)
            for instance_id in self.instances:
                self.network.connect(root.name, instance_id, Link(self.params.root_link_us))

        # --- egress & bookkeeping -----------------------------------------
        self.egress = Channel(sim, name="egress")
        self.egress_recorder = LatencyRecorder(name="chain-egress")
        self.egress_meter = ThroughputMeter(name="chain-egress")
        self.duplicates_suppressed = 0
        self._move_events: Dict[Tuple[str, Tuple], Event] = {}
        # (vertex) -> {(partition fields, scope key) -> completion event} for
        # moves whose ownership transfer has not landed yet; move_flows
        # serialises against overlapping entries (see moves_in_flight).
        self._inflight_moves: Dict[str, Dict[Tuple, Event]] = {}
        # vertex -> resume event: while present, workers emitting into that
        # vertex park on the event (maintenance-director topology splices
        # quiesce a vertex this way; see pause_vertex_input).
        self._paused_vertices: Dict[str, Event] = {}

        self._apply_exclusivity()
        if start_managers:
            self.start_vertex_managers()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def add_instance(
        self,
        vertex_name: str,
        suffix: str,
        start_buffering: bool = False,
        extra_delay=None,
        join_splitter: bool = True,
    ) -> NFInstance:
        """Create one instance of a vertex (initial build, scale-up, clone,
        or failover all come through here)."""
        vertex = self.chain.vertices[vertex_name]
        instance_id = f"{vertex_name}-{suffix}"
        if instance_id in self.instances:
            raise ValueError(f"instance {instance_id!r} already exists")
        nf = vertex.nf_factory()
        specs = nf.state_specs()
        breaker = None
        if self.params.breaker_enabled:
            breaker = CircuitBreaker(
                self.sim,
                name=f"{instance_id}-breaker",
                failure_threshold=self.params.breaker_failure_threshold,
                open_us=self.params.breaker_open_us,
                slow_call_us=self.params.breaker_slow_call_us,
                seed=self.params.seed,
            )
        client = StoreClient(
            self.sim,
            self.network,
            self.store,
            vertex_id=vertex_name,
            instance_id=instance_id,
            specs=specs,
            vector_tags=self.tags.tags_for(vertex_name, specs.keys()),
            wait_for_acks=self.params.wait_for_acks,
            caching_enabled=self.params.caching_enabled,
            retransmit_timeout_us=self.params.retransmit_timeout_us,
            breaker=breaker,
        )
        for op_name, op_fn in nf.custom_operations().items():
            client.registry.register(op_name, op_fn, allow_replace=True)
        instance = NFInstance(
            self.sim,
            self,
            vertex_name,
            instance_id,
            nf,
            client,
            n_workers=self.params.n_workers,
            proc_time_us=self.params.proc_time_for(vertex_name),
            extra_delay=extra_delay,
            start_buffering=start_buffering,
            queue_capacity=self.params.instance_queue_capacity,
            worker_capacity=self.params.worker_queue_capacity,
            overload_policy=self.params.overload_policy,
            fastpath_enabled=(
                self.params.fastpath_enabled and not self.params.wait_for_acks
            ),
            fastpath_batch=self.params.fastpath_batch,
        )
        self.instances[instance_id] = instance
        self.vertex_instances[vertex_name].append(instance_id)
        self.nics[instance_id] = Nic(
            self.sim,
            self.params.nic_rate_gbps,
            deliver=instance.enqueue,
            name=f"{instance_id}-nic",
            queue_limit=self.params.nic_queue_limit,
            per_packet_overhead_bits=self.params.nic_overhead_bits,
            # ring tail drops feed the unified drop ledger + root accounting
            on_drop=lambda item, _iid=instance_id: self._on_nic_drop(_iid, item),
            # handover markers and recovery traffic must never tail-drop
            never_drop=_is_control_item,
            # a bounded instance input pushes back on the NIC drain (BLOCK)
            deliver_wait=instance.input.space_event,
            # deadlock-sanitizer nodes: this ring, and the rx loop it feeds
            wait_labels=(f"nic:{instance_id}", f"rx:{instance_id}"),
        )
        self.filters[instance_id] = DuplicateFilter(
            instance_id, enabled=self.params.suppress_duplicates
        )
        for root in getattr(self, "roots", []):
            self.network.connect(root.name, instance_id, Link(self.params.root_link_us))
        splitter = self.splitters.get(vertex_name)
        if splitter is not None and join_splitter:
            splitter.add_instance(instance_id)
        if splitter is not None:
            # late-added instances (scale-up, clone, failover) derive their
            # caching rights from the current split like everyone else
            for obj_name, spec in instance.client.specs.items():
                instance.client._exclusive[obj_name] = splitter.grants_exclusive(spec)
        return instance

    def retire_instance(self, instance_id: str) -> NFInstance:
        """Gracefully remove an instance (autoscaler scale-in, §8).

        The caller must already have drained it: queues empty, pending
        flush ACKs fenced, owned per-flow state moved away via the Figure-4
        handover. Unlike :meth:`NFInstance.fail` this is an *orderly*
        retirement — the supervisor will not treat it as a crash.
        """
        instance = self.instances.pop(instance_id, None)
        if instance is None:
            raise KeyError(f"unknown instance {instance_id!r}")
        self.vertex_instances[instance.vertex_name] = [
            i for i in self.vertex_instances[instance.vertex_name] if i != instance_id
        ]
        splitter = self.splitters.get(instance.vertex_name)
        if splitter is not None:
            splitter.remove_instance(instance_id)
        nic = self.nics.pop(instance_id, None)
        if nic is not None:
            nic.fail()
        self.filters.pop(instance_id, None)
        instance.fail()
        return instance

    # ------------------------------------------------------------------
    # planned topology edits (maintenance director, DESIGN.md §12)
    # ------------------------------------------------------------------

    def pause_vertex_input(self, vertex_name: str) -> None:
        """Gate all NF->NF emission into ``vertex_name``.

        Workers about to deliver a packet into the vertex park (in FIFO
        order, so per-flow order is preserved across the pause) until
        :meth:`resume_vertex_input`. The entry vertex cannot be paused —
        the root's forward path is synchronous by design.
        """
        if vertex_name == self.chain.entry:
            raise ValueError("cannot pause the entry vertex (root forward path)")
        if vertex_name not in self.splitters:
            raise KeyError(f"unknown vertex {vertex_name!r}")
        if vertex_name not in self._paused_vertices:
            self._paused_vertices[vertex_name] = self.sim.event(
                name=f"resume({vertex_name})"
            )

    def resume_vertex_input(self, vertex_name: str) -> None:
        """Release workers parked by :meth:`pause_vertex_input`. Parked
        deliveries re-resolve their hop, so a splice that replaced the
        paused vertex routes them to its successor."""
        gate = self._paused_vertices.pop(vertex_name, None)
        if gate is not None and not gate.triggered:
            gate.succeed(None)

    def _resolve_hop(self, vertex_name: str, label: str, fallback: str) -> str:
        """Re-resolve a delivery hop after a pause: the topology may have
        been spliced while the worker was parked."""
        matches = [e for e in self.chain.out_edges(vertex_name) if e.label == label]
        if not matches:
            return fallback
        for edge in matches:
            if edge.dst == fallback:
                return fallback
        return matches[0].dst

    def splice_insert_vertex(
        self,
        name: str,
        nf_factory,
        src: str,
        dst: str,
        parallelism: int = 1,
        store_name: Optional[str] = None,
        label: str = "out",
    ) -> List[NFInstance]:
        """Insert a new vertex on the ``src -> dst`` edge (one sim instant).

        The edge is re-pointed at the new vertex and a ``name -> dst`` edge
        added atomically — no yields — so every packet routes either the
        old way or the new way, never half. Per-flow order is preserved
        without a barrier: the new path is strictly longer (one extra NF),
        so a pre-splice packet always reaches ``dst`` before any post-
        splice packet of its flow.
        """
        if name in self.chain.vertices:
            raise ValueError(f"duplicate vertex {name!r}")
        edge = next(
            (
                e
                for e in self.chain.edges
                if e.src == src and e.dst == dst and e.label == label and not e.mirror
            ),
            None,
        )
        if edge is None:
            raise KeyError(f"no plain edge {src!r} -> {dst!r} (label {label!r})")
        self.chain.add_vertex(name, nf_factory, parallelism=parallelism)
        self.store.assign_vertex(
            name,
            store_name or self.stores[(len(self.chain.vertices) - 1) % len(self.stores)].name,
        )
        probe_nf = nf_factory()
        for op_name, op_fn in probe_nf.custom_operations().items():
            self.store.register_custom_op(op_name, op_fn)
        self.vertex_instances[name] = []
        for k in range(parallelism):
            self.add_instance(name, suffix=str(k))
        scopes = probe_nf.scope() or [FIVE_TUPLE]
        self.splitters[name] = Splitter(
            name, list(self.vertex_instances[name]), scopes=scopes
        )
        splitter = self.splitters[name]
        for instance in self.instances_of(name):
            for obj_name, spec in instance.client.specs.items():
                instance.client._exclusive[obj_name] = splitter.grants_exclusive(spec)
        # routing cutover: src -> name -> dst, in place of src -> dst
        edge.dst = name
        self.chain.add_edge(name, dst, label="out")
        self._sinks = set(self.chain.sinks())
        self.chain.validate()
        if self.managers:
            interval = getattr(
                next(iter(self.managers.values())), "interval_us", 1_000.0
            )
            self.managers[name] = VertexManager(
                self.sim,
                name,
                instances_fn=lambda v=name: self.instances_of(v),
                interval_us=interval,
            )
        return self.instances_of(name)

    def splice_remove_vertex(self, name: str) -> None:
        """Remove a mid-chain vertex, re-pointing its in-edges at its
        unique successor (one sim instant).

        The caller (maintenance director) must already have paused input
        to the vertex, drained its instances, and disowned their state —
        this is only the structural cutover. Unlike insertion, removal
        *shortens* the path, so it is only order-safe behind the
        pause/drain barrier the director holds.
        """
        if name not in self.chain.vertices:
            raise KeyError(f"unknown vertex {name!r}")
        if name == self.chain.entry:
            raise ValueError("cannot remove the entry vertex")
        in_edges = self.chain.in_edges(name)
        out_edges = self.chain.out_edges(name)
        if len(out_edges) != 1 or out_edges[0].mirror:
            raise ValueError(f"vertex {name!r} is not a plain mid-chain vertex")
        if any(e.mirror for e in in_edges) or not in_edges:
            raise ValueError(f"vertex {name!r} has mirror or no in-edges")
        successor = out_edges[0].dst
        if any(e.src == successor for e in in_edges):
            raise ValueError(f"removing {name!r} would create a self-loop")
        for edge in in_edges:
            edge.dst = successor
        self.chain.edges.remove(out_edges[0])
        del self.chain.vertices[name]
        for instance_id in list(self.vertex_instances.get(name, ())):
            if instance_id in self.instances:
                self.retire_instance(instance_id)
        self.vertex_instances.pop(name, None)
        self.splitters.pop(name, None)
        manager = self.managers.pop(name, None)
        if manager is not None:
            manager.stop()
        self.store.unassign_vertex(name)
        self._sinks = set(self.chain.sinks())
        self.chain.validate()

    def instance(self, instance_id: str) -> NFInstance:
        return self.instances[instance_id]

    def instances_of(self, vertex_name: str) -> List[NFInstance]:
        return [
            self.instances[i]
            for i in self.vertex_instances[vertex_name]
            if i in self.instances
        ]

    def splitter(self, vertex_name: str) -> Splitter:
        return self.splitters[vertex_name]

    def start_vertex_managers(self, interval_us: float = 1_000.0) -> None:
        for name, vertex in self.chain.vertices.items():
            if name in self.managers:
                continue
            self.managers[name] = VertexManager(
                self.sim,
                name,
                instances_fn=lambda v=name: self.instances_of(v),
                interval_us=interval_us,
                scaling_logic=vertex.scaling_logic,
                straggler_logic=vertex.straggler_logic,
            )

    def _apply_exclusivity(self) -> None:
        """Tell every client which cross-flow objects the current split
        confines to it (§4.3 "Cross-flow state"). Free at build time."""
        for vertex_name, instance_ids in self.vertex_instances.items():
            splitter = self.splitters[vertex_name]
            for instance_id in instance_ids:
                instance = self.instances.get(instance_id)
                if instance is None:
                    continue
                for obj_name, spec in instance.client.specs.items():
                    exclusive = splitter.grants_exclusive(spec)
                    instance.client._exclusive[obj_name] = exclusive

    def rebalance_vertex(self, vertex_name: str, finer_fields=None) -> Generator:
        """Walk the vertex's partitioning one scope finer (§4.1).

        "The framework ... considers progressively finer grained scopes and
        repeats the above process until load is even." Refinement remaps
        some flow groups to other instances; every remapped group moves via
        the Figure 4 handover, so the walk is loss-free and order-
        preserving, and caching exclusivity is re-derived afterwards.

        Returns the list of :class:`MoveResult`, or ``None`` when already
        at the finest declared scope.
        """
        from repro.core.handover import move_flows

        splitter = self.splitter(vertex_name)
        if finer_fields is None:
            ordered = splitter.scopes
            try:
                index = ordered.index(splitter.partition_fields)
            except ValueError:
                index = len(ordered)
            if index == 0:
                return None
            finer_fields = ordered[index - 1]
        splitter.partition_fields = tuple(finer_fields)

        # Which owned flow groups now route elsewhere?
        pending: Dict[str, Dict[Tuple, str]] = {}
        for instance in self.instances_of(vertex_name):
            if not instance.alive:
                continue
            for _sk, (_obj, flow_key) in instance.client.owned_items().items():
                if flow_key is None:
                    continue
                scope_key = self._project(flow_key, splitter.partition_fields)
                if scope_key is None:
                    continue
                destination = splitter.current_instance_for(scope_key)
                if destination != instance.instance_id:
                    pending.setdefault(destination, {})[scope_key] = instance.instance_id
        results = []
        for destination, holders in sorted(pending.items()):
            outcome = yield from move_flows(
                self, vertex_name, list(holders), destination, current_of=holders
            )
            results.append(outcome)
        yield from self.notify_split_changed(vertex_name)
        return results

    def notify_split_changed(self, vertex_name: str) -> Generator:
        """Re-evaluate caching exclusivity after a split change; clients
        losing exclusivity flush (Figure 9's experiment pivots on this)."""
        splitter = self.splitters[vertex_name]
        for instance in self.instances_of(vertex_name):
            for obj_name, spec in instance.client.specs.items():
                exclusive = splitter.grants_exclusive(spec)
                yield from instance.client.set_exclusive(obj_name, exclusive)

    # ------------------------------------------------------------------
    # traffic path
    # ------------------------------------------------------------------

    @property
    def root(self) -> Root:
        """The (first) root — single-root deployments use this directly."""
        return self.roots[0]

    @root.setter
    def root(self, new_root: Root) -> None:
        # root failover replaces the failed root in place
        for index, existing in enumerate(self.roots):
            if existing.root_id == new_root.root_id:
                self.roots[index] = new_root
                return
        self.roots[0] = new_root

    def root_for(self, clock: int) -> Root:
        """The root that logged this clock (high bits carry the root ID)."""
        if len(self.roots) == 1:
            return self.roots[0]
        root_id = clock_root(clock)
        for root in self.roots:
            if root.root_id == root_id:
                return root
        return self.roots[0]

    def inject(self, packet: Packet) -> None:
        """Feed one input packet into the chain.

        With multiple roots, traffic is statically partitioned among them
        by flow (the operator requirement of §4.1: no overlap between the
        root instances' shares).
        """
        if len(self.roots) == 1:
            self.roots[0].inject(packet)
            return
        from repro.util import stable_hash

        index = stable_hash(packet.five_tuple.canonical().key()) % len(self.roots)
        self.roots[index].inject(packet)

    def _forward_from_root(self, packet: Packet) -> None:
        entry = self.chain.entry
        destinations = self._deliver(entry, packet)
        if destinations:
            self.root_for(packet.clock).note_destination(packet.clock, destinations[0])

    def _entry_hop_wait(self, packet: Packet) -> Generator:
        """Replay-storm throttle: park the root's replay process until the
        entry NIC(s) for this packet have ring space.

        Replayed traffic used to ride the ``never_drop`` exemption —
        correct, but a correlated-failure replay burst could grow entry
        rings without bound and starve live traffic. Instead the replay
        source itself is subject to the same bounded queues: it admits one
        copy per free ring slot. No-op when rings are unbounded.
        """
        if self.params.nic_queue_limit is None:
            return
        # let the previous copy's link-delayed nic.send land before probing
        # ring space, otherwise a zero-pace storm passes the check faster
        # than sends arrive and overruns the ring anyway
        yield self.sim.timeout(self.params.hop_link_us)
        yield from self._await_hop_space(self.chain.entry, packet, emitter_id="replay")

    # ------------------------------------------------------------------
    # overload shedding (§8)
    # ------------------------------------------------------------------

    def note_shed(self, instance: Optional[NFInstance], packet: Packet,
                  cause: str = SHED_CAUSE_QUEUE) -> None:
        """Account one deliberately shed packet copy — never silent loss.

        The drop lands in the Network per-cause ledger (what the chaos
        invariant checkers audit) and the copy reports done to its root
        with whatever bit vector it accumulated: upstream commit signals
        XOR those tags off exactly as on the normal drop path in ``emit``,
        so the root log drains and the delete protocol stays live.
        """
        self.network.account_drop(cause)
        if packet.clock:
            self.root_for(packet.clock).report_done(
                packet.clock, packet.bitvector, packet.generation
            )

    def _on_nic_drop(self, instance_id: str, item: Any) -> None:
        """A finite NIC ring tail-dropped ``item`` (satellite: unified
        ledger — ring drops used to be invisible to the checkers)."""
        if isinstance(item, Packet):
            instance = self.instances.get(instance_id)
            if instance is not None:
                instance._uncount(item)
            self.note_shed(instance, item, SHED_CAUSE_NIC)
        else:
            self.network.account_drop(SHED_CAUSE_NIC)

    @property
    def _backpressure_hops(self) -> bool:
        """BLOCK policy + finite rings: emit waits for downstream NIC space
        instead of tail-dropping on NF->NF hops."""
        return (
            self.params.overload_policy == POLICY_BLOCK
            and self.params.nic_queue_limit is not None
        )

    def _await_hop_space(
        self, vertex_name: str, packet: Packet, emitter_id: str = ""
    ) -> Generator:
        """Park the emitting worker until the destination NIC(s) for this
        packet have ring space (hop-by-hop backpressure).

        The destination is *predicted* without calling ``route`` (route
        mutates pending-``mark_first`` state and must run exactly once, in
        ``_deliver``). Control/recovery traffic never waits — it bypasses
        ring bounds entirely.
        """
        if _is_control_item(packet):
            return
        splitter = self.splitters[vertex_name]
        while True:
            if packet.replay_target is not None and packet.replay_target in splitter.instances:
                targets = [packet.replay_target]
            else:
                primary = splitter.current_instance_for(splitter.key_of(packet))
                targets = [primary]
                clone = splitter.replicate.get(primary)
                if clone is not None:
                    targets.append(clone)
            waiting = [
                t for t in targets if t in self.nics and not self.nics[t].has_space()
            ]
            if not waiting:
                return
            suite = _sanitize.ACTIVE
            if suite is not None:
                for t in waiting:
                    suite.wait_edge(self.sim, f"wkr:{emitter_id}", f"nic:{t}")
            try:
                yield self.sim.all_of([self.nics[t].space_event() for t in waiting])
            finally:
                if suite is not None:
                    for t in waiting:
                        suite.release_edge(f"wkr:{emitter_id}", f"nic:{t}")

    def _replicate(self, packet: Packet) -> Packet:
        copy = packet.copy()
        copy.bitvector = 0  # each tracked copy reports its own tags once
        return copy

    def _deliver(self, vertex_name: str, packet: Packet) -> List[str]:
        """Route one packet copy to a vertex; returns instance IDs reached."""
        splitter = self.splitters[vertex_name]
        destinations = splitter.route(packet)
        copies = [(destinations[0], packet)]
        for dst in destinations[1:]:
            copies.append((dst, self._replicate(packet)))
        if len(copies) > 1:
            self.root_for(packet.clock).add_outstanding(
                packet.clock, len(copies) - 1, packet.generation
            )
        reached: List[str] = []
        for dst, copy in copies:
            if not self.filters[dst].admit(copy):
                self.duplicates_suppressed += 1
                # The suppressed copy's updates were (or will be) emulated,
                # so its tags are accounted for by the surviving copy.
                self.root_for(copy.clock).report_done(copy.clock, 0, copy.generation)
                continue
            target = self.instances.get(dst)
            if target is not None:
                # Fast-path flow latch: counted at dispatch (not arrival)
                # so the NIC/link in-flight window blocks fusion too.
                target._count_inflight(copy)
            nic = self.nics[dst]
            self.sim.schedule(
                self.params.hop_link_us, nic.send, copy, copy.size_bits
            )
            reached.append(dst)
        return reached

    def _inherit(self, child: Packet, parent: Packet) -> None:
        """NF-created output packets join the parent's accounting."""
        child.clock = parent.clock
        child.generation = parent.generation
        child.replayed = parent.replayed
        child.replay_target = parent.replay_target
        child.replay_end = False
        child.ingress_time = parent.ingress_time
        child.mark_first = False
        child.mark_last = False
        child.control = None

    def emit(
        self,
        instance: NFInstance,
        packet: Packet,
        outputs: List[Output],
        delete_sink: Optional[List[Tuple[str, int, int, int]]] = None,
    ) -> Generator:
        """Route an instance's outputs; runs the copy accounting and the
        last-NF delete protocol (§5.4). Generator — the worker drives it.

        ``delete_sink`` (fast path only): instead of sending the async
        delete report immediately, append ``(root_name, clock, vector,
        generation)`` — the batched worker flushes the whole batch's
        reports in one message per root."""
        vertex_name = instance.vertex_name
        clock, generation = packet.clock, packet.generation
        out_edges = self.chain.out_edges(vertex_name)

        deliveries: List[Tuple[str, str, Packet]] = []
        exits: List[Packet] = []
        carrier_assigned = False
        for output in outputs:
            child = output.packet
            if child is not packet:
                self._inherit(child, packet)
            matches = [e for e in out_edges if e.label == output.edge]
            if not matches:
                exits.append(child)
                continue
            for edge in matches:
                if not carrier_assigned:
                    copy = child
                    copy.bitvector = packet.bitvector
                    carrier_assigned = True
                else:
                    copy = child.copy()
                    copy.bitvector = 0
                deliveries.append((edge.dst, output.edge, copy))

        if not deliveries:
            # This copy's journey ends at this instance: either the chain
            # exit (formal delete protocol) or a drop (direct report).
            if vertex_name in self._sinks or exits:
                if self.params.sync_delete and clock:
                    # §7.2: the output is released only after the delete is
                    # acknowledged. Only this packet's release waits — the
                    # worker moves on (the NF pipeline is not stalled).
                    self.sim.process(
                        self._sync_delete_then_egress(
                            instance, clock, packet.bitvector, generation,
                            vertex_name, list(exits),
                        ),
                        name=f"sync-delete-{clock}",
                    )
                    return
                if delete_sink is not None and clock:
                    delete_sink.append(
                        (self.root_for(clock).name, clock, packet.bitvector, generation)
                    )
                else:
                    yield from self._send_delete(
                        instance, clock, packet.bitvector, generation
                    )
            else:
                self.root_for(clock).report_done(clock, packet.bitvector, generation)
            for child in exits:
                self._to_egress(vertex_name, child)
            return

        if len(deliveries) > 1:
            self.root_for(clock).add_outstanding(clock, len(deliveries) - 1, generation)
        for child in exits:
            self._to_egress(vertex_name, child)
        backpressure = self._backpressure_hops
        for dst_vertex, label, copy in deliveries:
            while True:
                gate = self._paused_vertices.get(dst_vertex)
                if gate is not None:
                    # Maintenance splice in progress downstream: park on the
                    # gate (FIFO wake preserves per-flow order), then re-
                    # resolve the hop — the parked vertex may have been
                    # spliced out while we waited.
                    yield gate
                    if not instance._alive:
                        return
                    dst_vertex = self._resolve_hop(vertex_name, label, dst_vertex)
                    continue
                if backpressure:
                    # Hop-by-hop backpressure (§8): the emitting worker parks
                    # until the downstream ring has space, instead of letting
                    # the NIC tail-drop the copy.
                    yield from self._await_hop_space(
                        dst_vertex, copy, instance.instance_id
                    )
                    if not instance._alive:
                        return
                    if dst_vertex in self._paused_vertices:
                        continue  # paused while waiting for ring space
                break
            self._deliver(dst_vertex, copy)

    # ------------------------------------------------------------------
    # fused fast-path dispatch (§6)
    # ------------------------------------------------------------------

    def fusion_successor(self, vertex_name: str, edge_label: str) -> Optional[str]:
        """The unique downstream vertex behind ``edge_label``, if fusable.

        Fusion follows only plain point-to-point edges: an edge label that
        fans out (mirror edges) needs the copy accounting of the general
        ``emit`` path, so it returns None.
        """
        matches = [
            e for e in self.chain.out_edges(vertex_name) if e.label == edge_label
        ]
        if len(matches) != 1:
            return None
        return matches[0].dst

    def fast_target(self, vertex_name: str, packet: Packet) -> Optional[NFInstance]:
        """The instance a packet may be fused into at ``vertex_name``, or
        None when it must take the general delivery path.

        Requires total splitter quiescence — a single instance, no clone
        replication, no overrides and no armed ``mark_first`` (any past or
        pending move permanently disables fusion into the vertex, which is
        conservative but keeps the Figure 4 windows airtight) — plus a
        declarative fast path at the target and a clear per-flow latch.
        """
        if vertex_name in self._paused_vertices:
            return None  # maintenance splice: everything takes the gated path
        splitter = self.splitters.get(vertex_name)
        if (
            splitter is None
            or len(splitter.instances) != 1
            or splitter.replicate
            or splitter.overrides
            or splitter._pending_first
        ):
            return None
        instance = self.instances.get(splitter.instances[0])
        if instance is None or not instance.alive or instance._fastpath is None:
            return None
        if instance._inflight_flows.get(packet.five_tuple.canonical().key()):
            return None
        return instance

    def _send_delete(
        self, instance: NFInstance, clock: int, vector: int, generation: int
    ) -> Generator:
        """Last-NF delete request (§5.4), asynchronous form."""
        if clock == 0:
            return
        request = DeleteRequest(clock=clock, vector=vector, generation=generation)
        instance.client.endpoint.send(self.root_for(clock).name, request)
        return
        yield  # pragma: no cover - generator protocol

    def _sync_delete_then_egress(
        self,
        instance: NFInstance,
        clock: int,
        vector: int,
        generation: int,
        vertex_name: str,
        exits: List[Packet],
    ) -> Generator:
        """Synchronous delete (§7.2): wait for the root's ACK, then release
        the output — the end host can never see a duplicate even if the
        last NF fails right here (Theorem B.4.4)."""
        request = DeleteRequest(clock=clock, vector=vector, generation=generation)
        yield from instance.client.endpoint.call(self.root_for(clock).name, request)
        for child in exits:
            self._to_egress(vertex_name, child)

    def _to_egress(self, vertex_name: str, packet: Packet) -> None:
        self.egress_recorder.record(
            self.sim.now - packet.ingress_time, timestamp=self.sim.now
        )
        self.egress_meter.add(packet.size_bits, self.sim.now)
        self.egress.put((vertex_name, packet))

    def _on_packet_deleted(self, clock: int) -> None:
        # Forget filter state only after the same grace period the store
        # prunes use: late copies of a just-deleted packet (a replay pass
        # overlapping the original's completion) must still be suppressed.
        self.sim.schedule(self.root_for(clock).prune_grace_us, self._forget_clock, clock)

    def _forget_clock(self, clock: int) -> None:
        for dup_filter in self.filters.values():
            dup_filter.forget(clock)

    # ------------------------------------------------------------------
    # failure handling (chaos campaigns, §5.4)
    # ------------------------------------------------------------------

    def components(self) -> Dict[str, Any]:
        """Every fail-stop-able component by name (roots, NFs, stores).

        This is what a :class:`~repro.core.supervisor.Supervisor` registers
        and what chaos schedules draw targets from.
        """
        named: Dict[str, Any] = {}
        for root in self.roots:
            named[root.name] = root
        for instance_id, instance in self.instances.items():
            named[instance_id] = instance
        for store in self.stores:
            named[store.name] = store
        return named

    def attach_supervisor(self, injector=None, **kwargs):
        """Create a :class:`~repro.core.supervisor.Supervisor` wired to this
        runtime (and to ``injector``'s failure notifications, when given)."""
        from repro.core.supervisor import Supervisor

        supervisor = Supervisor(self, **kwargs)
        if injector is not None:
            injector.on_failure(supervisor.on_failure)
        return supervisor

    # ------------------------------------------------------------------
    # engine performance forensics
    # ------------------------------------------------------------------

    def engine_report(self) -> Dict[str, Any]:
        """Engine counters plus per-component queue high-water marks.

        Experiments attach this to their results to explain wall-clock
        behaviour: events processed, the microtask share (work that skipped
        the timer heap), the heap peak, and where queueing built up.
        """
        report: Dict[str, Any] = engine_counters(self.sim, self.network).as_dict()
        report["network_drops"] = dict(self.network.drops)
        channels: Dict[str, Channel] = {"egress": self.egress}
        for instance_id, instance in self.instances.items():
            channels[f"{instance_id}.input"] = instance.input
        report["channel_depth_peaks"] = channel_depth_peaks(channels)
        report["instance_queue_peaks"] = {
            instance_id: instance.queue_depth_peak
            for instance_id, instance in self.instances.items()
            if instance.queue_depth_peak
        }
        report["nic_txq_peaks"] = {
            instance_id: nic.txq_depth_peak
            for instance_id, nic in self.nics.items()
            if nic.txq_depth_peak
        }
        report["sheds"] = {
            instance_id: instance.stats.shed
            for instance_id, instance in self.instances.items()
            if instance.stats.shed
        }
        report["nic_deliver_stalls"] = {
            instance_id: nic.deliver_stalls
            for instance_id, nic in self.nics.items()
            if nic.deliver_stalls
        }
        fastpath: Dict[str, Any] = {}
        for instance_id, instance in self.instances.items():
            executor = instance._fastpath
            if executor is None:
                continue
            if executor.stats_fast or executor.stats_fallback:
                fastpath[instance_id] = {
                    "fast": executor.stats_fast,
                    "fallback": executor.stats_fallback,
                    "fused_in": executor.stats_fused_in,
                    "batches_sent": instance.client.stats_batches_sent,
                }
        if fastpath:
            report["fastpath"] = fastpath
        return report

    # ------------------------------------------------------------------
    # handover rendezvous (Figure 4; used by NFInstance and handover.py)
    # ------------------------------------------------------------------

    def move_event(self, vertex_name: str, marker: MoveMarker) -> Event:
        key = (vertex_name, marker.move_id)
        event = self._move_events.get(key)
        if event is None:
            event = self.sim.event(name=f"move({vertex_name},#{marker.move_id})")
            self._move_events[key] = event
        return event

    def moves_in_flight(self, vertex_name: str, fields, scope_keys) -> List[Event]:
        """Completion events of pending moves that conflict with a new move.

        A conflict is a pending move of the *same* scope key, or any pending
        move recorded under different partition fields (after a §4.1 scope
        refinement the keys are incomparable, so be conservative). Starting
        an overlapping move before the prior transfer lands would consult
        stale routing: the prior move's target is named old-holder before it
        actually owns anything, its release covers no keys, and the flow's
        updates are rejected by the store's ownership check from then on.
        Triggered entries are pruned as a side effect.
        """
        table = self._inflight_moves.get(vertex_name)
        if not table:
            return []
        waits: List[Event] = []
        wanted = set(scope_keys)
        for (entry_fields, scope_key), event in list(table.items()):
            if event.triggered:
                del table[(entry_fields, scope_key)]
                continue
            if entry_fields != fields or scope_key in wanted:
                if event not in waits:
                    waits.append(event)
        return waits

    def note_move_started(self, vertex_name: str, marker: MoveMarker, event: Event) -> None:
        """Record an issued move so later overlapping moves wait for it."""
        table = self._inflight_moves.setdefault(vertex_name, {})
        for scope_key in marker.scope_keys:
            table[(marker.fields, scope_key)] = event

    @staticmethod
    def _project(flow_key: Tuple, fields: Tuple[str, ...]) -> Optional[Tuple]:
        """Project a canonical five-tuple flow key onto partition fields."""
        if len(flow_key) != 5:
            return None
        try:
            return tuple(flow_key[_FIELD_POSITION[f]] for f in fields)
        except KeyError:
            return None

    def _move_notify_key(self, vertex_name: str, marker: MoveMarker) -> str:
        return f"{vertex_name}\x1f__move__\x1f{marker.move_id}"

    def release_moved_state(self, instance: NFInstance, marker: MoveMarker) -> Generator:
        """Old-instance side of Figure 4 step 5: hand matching per-flow keys
        to the new instance in one bulk metadata update.

        The new instance's client *adopts* the released keys (ownership
        metadata only, no values — its cache stays cold): the store names it
        owner from this transfer on, and a later move of the same flows must
        find these keys in its ``owned_items`` even if no packet of the
        moved flows arrives in between.
        """
        moved = [
            (storage_key, obj_name, flow_key)
            for storage_key, (obj_name, flow_key) in instance.client.owned_items().items()
            if flow_key is not None
            and self._project(flow_key, marker.fields) in marker.scope_keys
        ]
        notify_key = self._move_notify_key(instance.vertex_name, marker)
        yield from instance.client.release_keys_bulk(
            [storage_key for storage_key, _obj, _fk in moved],
            marker.new_instance,
            notify_key,
        )
        target = self.instances.get(marker.new_instance)
        if target is not None and target.alive:
            target.client.adopt_keys(moved)
        event = self.move_event(instance.vertex_name, marker)
        if not event.triggered:
            event.succeed(moved)

    def moved_state_available(self, instance: NFInstance, marker: MoveMarker) -> Generator:
        """New-instance side of step 3: consult the store (one RTT for the
        owner check / callback registration), then the rendezvous event."""
        event = self.move_event(instance.vertex_name, marker)
        if event.triggered:
            return True
        notify_key = self._move_notify_key(instance.vertex_name, marker)
        from repro.store.protocol import WatchRequest

        yield instance.client.endpoint.call_event(
            self.store.endpoint_for_key(notify_key),
            WatchRequest(key=notify_key, endpoint=instance.instance_id, kind="owner"),
        )
        return event.triggered

    def wait_for_handover(self, instance: NFInstance, marker: MoveMarker) -> Generator:
        event = self.move_event(instance.vertex_name, marker)
        if not event.triggered:
            yield event
        return True
