"""Queue-level duplicate-output suppression (§5.3, duplicate form #1).

When a straggler and its clone both emit output for the same input packet,
"the framework suppresses duplicate outputs associated with the same
logical clock at message queue(s) of immediate downstream instance(s)".
The filter sits in front of every instance's input queue.

Replay-marked packets bypass the filter: §5.3 #3 requires intervening
instances to recognise them as non-suspicious and process them (their
state updates are emulated by the store; their outputs must still travel
so the replay reaches its target).
"""

from __future__ import annotations

from typing import Set

from repro.traffic.packet import Packet


class DuplicateFilter:
    """Per-downstream-instance clock filter."""

    def __init__(self, instance_id: str, enabled: bool = True):
        self.instance_id = instance_id
        self.enabled = enabled
        self._seen: Set[int] = set()
        self.suppressed = 0

    def admit(self, packet: Packet) -> bool:
        """True if the packet should be enqueued; False if suppressed."""
        if not self.enabled or packet.clock == 0:
            return True
        if packet.replayed:
            # Replays are recognised, not suspicious (§5.3 #3). Remember
            # the clock so post-replay duplicates are still caught.
            self._seen.add(packet.clock)
            return True
        if packet.clock in self._seen:
            self.suppressed += 1
            return False
        self._seen.add(packet.clock)
        return True

    def forget(self, clock: int) -> None:
        """Drop filter state for a deleted packet (bounded memory)."""
        self._seen.discard(clock)

    def __len__(self) -> int:
        return len(self._seen)
