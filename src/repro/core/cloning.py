"""Straggler mitigation: clone, replay, replicate, retain (§5.3).

To mitigate a straggler CHC:

1. deploys a **clone** instance of the same vertex, initialised from the
   straggler's latest externalized state (no copy needed — the state
   already lives in the store; the clone is registered as a co-owner of
   the straggler's per-flow objects);
2. **replays** all logged packets from the root, marked with the clone's
   ID — intervening instances recognise them, the store emulates their
   duplicate updates, and the clone processes them for real to pick up the
   updates of packets that were in transit when its state was read;
3. **replicates** live traffic at the upstream splitter to both the
   straggler and the clone, while the clone buffers live traffic until the
   replay-end marker is processed;
4. **retains** the faster instance, killing the other and re-associating
   state ownership if the clone wins.

All three duplicate forms this creates (outputs, state updates, upstream
processing) are suppressed by the duplicate filters and the store's
clock-keyed update log (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.recovery import replay_all_roots
from repro.store.keys import StateKey
from repro.store.protocol import CloneRegistration, TakeoverRequest


@dataclass
class CloneSession:
    """An active straggler-mitigation episode."""

    vertex: str
    straggler_id: str
    clone_id: str
    started_at: float
    replayed: int = 0
    resolved: Optional[str] = None  # retained instance id


class CloneController:
    """Drives §5.3 against a running :class:`ChainRuntime`."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.sessions = []

    def _store_endpoint_for(self, vertex: str) -> str:
        probe_key = StateKey(vertex, "_").storage_key()
        return self.runtime.store.endpoint_for_key(probe_key)

    def mitigate(self, straggler_id: str, clone_suffix: Optional[str] = None) -> Generator:
        """Launch a clone for ``straggler_id`` (process body; returns the
        :class:`CloneSession` once replay has been issued)."""
        runtime = self.runtime
        straggler = runtime.instance(straggler_id)
        vertex = straggler.vertex_name
        suffix = clone_suffix or f"{straggler_id.split('-', 1)[1]}c"
        clone = runtime.add_instance(vertex, suffix, start_buffering=True)
        session = CloneSession(
            vertex=vertex,
            straggler_id=straggler_id,
            clone_id=clone.instance_id,
            started_at=runtime.sim.now,
        )
        self.sessions.append(session)

        # Let the clone update the straggler's per-flow state (one metadata
        # message; the clone reads actual values lazily from the store —
        # "CHC initializes the clone with the straggler's latest state from
        # the datastore").
        yield clone.client.endpoint.call_event(
            self._store_endpoint_for(vertex),
            CloneRegistration(original=straggler_id, clone=clone.instance_id),
        )

        # Replicate incoming traffic to straggler + clone from now on; the
        # clone buffers it until replay completes.
        runtime.splitter(vertex).replicate[straggler_id] = clone.instance_id

        # Replay all logged packets from the root(s), targeted at the clone.
        replayed = yield from replay_all_roots(runtime, clone.instance_id)
        session.replayed = len(replayed)
        if not replayed:
            clone.stop_buffering()
        return session

    def retain(self, session: CloneSession, keep: str) -> Generator:
        """End the episode keeping ``keep`` ("straggler" or "clone").

        Routing changes and the loser's kill happen *atomically first*:
        were the reroute delayed behind the (one-RTT) metadata update,
        packets arriving in that window would be sent only to an instance
        about to die, with no surviving replica — a lost-update window.
        The metadata catch-up runs after; the clone remains a registered
        co-owner throughout, so no update is ever rejected meanwhile.
        """
        runtime = self.runtime
        splitter = runtime.splitter(session.vertex)
        store = self._store_endpoint_for(session.vertex)
        clone = runtime.instance(session.clone_id)
        straggler = runtime.instance(session.straggler_id)

        if keep == "clone":
            # 1. atomic switchover: clone takes the routing slot, the
            #    straggler stops receiving and dies. Packets already
            #    delivered while replication was on have live clone copies.
            splitter.replicate.pop(session.straggler_id, None)
            splitter.replace_instance(session.straggler_id, session.clone_id)
            straggler.fail()
            session.resolved = session.clone_id
            # 2. ownership moves wholesale to the clone (background RTT).
            yield clone.client.endpoint.call_event(
                store,
                TakeoverRequest(
                    old_instance=session.straggler_id, new_instance=session.clone_id
                ),
            )
        else:
            splitter.replicate.pop(session.straggler_id, None)
            splitter.remove_instance(session.clone_id)
            clone.fail()
            session.resolved = session.straggler_id
            yield straggler.client.endpoint.call_event(
                store,
                CloneRegistration(
                    original=session.straggler_id,
                    clone=session.clone_id,
                    register=False,
                ),
            )
        return session

    def pick_faster(self, session: CloneSession, window: int = 200) -> str:
        """Retention heuristic: compare recent per-packet processing times.

        "CHC retains the faster instance, killing the other" — measured
        over the most recent packets so the clone's catch-up phase does
        not bias the comparison.
        """
        straggler = self.runtime.instance(session.straggler_id)
        clone = self.runtime.instance(session.clone_id)
        straggler_recent = straggler.recorder.values[-window:]
        clone_recent = clone.recorder.values[-window:]
        if not clone_recent:
            return "straggler"
        if not straggler_recent:
            return "clone"
        straggler_mean = sum(straggler_recent) / len(straggler_recent)
        clone_mean = sum(clone_recent) / len(clone_recent)
        return "clone" if clone_mean <= straggler_mean else "straggler"
