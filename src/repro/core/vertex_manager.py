"""Vertex managers: statistics aggregation for operator logic (§3).

"Operators must supply relevant logic for each vertex (scaling, identifying
stragglers). CHC executes the logic with input from a vertex manager, a
logical entity responsible for collecting statistics from each vertex's
instances, aggregating them, and providing them periodically to the
logic."

The manager polls its vertex's instances, builds :class:`InstanceReport`
rows, and invokes the operator-supplied callbacks. Whatever the callbacks
return is forwarded to registered action handlers (the chain runtime / the
experiment harness decides what to do — the paper is explicit that the
*logic* is the operator's, only the state management during the resulting
action is CHC's concern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.simnet.engine import Simulator


@dataclass
class InstanceReport:
    """One instance's statistics snapshot."""

    instance_id: str
    queue_depth: int
    processed: int
    processed_delta: int
    mean_latency_us: Optional[float]

    def rate_per_interval(self) -> int:
        return self.processed_delta


@dataclass
class ManagerEvent:
    at: float
    kind: str  # "scale" | "straggler"
    detail: Any


class VertexManager:
    """Periodically aggregates one vertex's instance statistics."""

    def __init__(
        self,
        sim: Simulator,
        vertex_name: str,
        instances_fn: Callable[[], List],
        interval_us: float = 1_000.0,
        scaling_logic: Optional[Callable[[List[InstanceReport]], Any]] = None,
        straggler_logic: Optional[Callable[[List[InstanceReport]], Any]] = None,
    ):
        self.sim = sim
        self.vertex_name = vertex_name
        self.instances_fn = instances_fn
        self.interval_us = interval_us
        self.scaling_logic = scaling_logic
        self.straggler_logic = straggler_logic
        self.events: List[ManagerEvent] = []
        self.history: List[List[InstanceReport]] = []
        self.on_scale: List[Callable[[Any], None]] = []
        self.on_straggler: List[Callable[[Any], None]] = []
        self._last_processed: Dict[str, int] = {}
        self._alive = True
        self._process = sim.process(self._loop(), name=f"vm-{vertex_name}")

    def stop(self) -> None:
        self._alive = False
        self._process.kill()

    def snapshot(self) -> List[InstanceReport]:
        reports = []
        for instance in self.instances_fn():
            last = self._last_processed.get(instance.instance_id, 0)
            processed = instance.stats.processed
            recent = instance.recorder.values[-200:]
            reports.append(
                InstanceReport(
                    instance_id=instance.instance_id,
                    queue_depth=instance.queue_depth,
                    processed=processed,
                    processed_delta=processed - last,
                    mean_latency_us=(sum(recent) / len(recent)) if recent else None,
                )
            )
            self._last_processed[instance.instance_id] = processed
        return reports

    def _loop(self) -> Generator:
        while self._alive:
            yield self.sim.timeout(self.interval_us)
            reports = self.snapshot()
            self.history.append(reports)
            if self.scaling_logic is not None:
                decision = self.scaling_logic(reports)
                if decision:
                    self.events.append(ManagerEvent(self.sim.now, "scale", decision))
                    for handler in self.on_scale:
                        handler(decision)
            if self.straggler_logic is not None:
                suspect = self.straggler_logic(reports)
                if suspect:
                    self.events.append(ManagerEvent(self.sim.now, "straggler", suspect))
                    for handler in self.on_straggler:
                        handler(suspect)


def default_straggler_logic(threshold: float = 0.5) -> Callable[[List[InstanceReport]], Any]:
    """The paper's footnote heuristic: an instance processing ``threshold``
    fraction slower than its peers is a straggler."""

    def logic(reports: List[InstanceReport]):
        if len(reports) < 2:
            return None
        rates = {r.instance_id: r.processed_delta for r in reports}
        fastest = max(rates.values())
        if fastest <= 0:
            return None
        for instance_id, rate in sorted(rates.items()):
            if rate < fastest * (1 - threshold):
                return instance_id
        return None

    return logic


def default_scaling_logic(
    queue_threshold: int = 1_000,
    low_threshold: Optional[int] = None,
    settle_intervals: int = 3,
) -> Callable[[List[InstanceReport]], Any]:
    """Scale up when aggregate backlog exceeds a threshold (θ of §3).

    With ``low_threshold`` set, also proposes scale-down after
    ``settle_intervals`` consecutive low-backlog observations with more
    than one instance running — hysteresis so a transient lull between
    bursts doesn't thrash the autoscaler. Defaults leave the seed
    behaviour (scale-up only) untouched.
    """
    calm = {"count": 0}

    def logic(reports: List[InstanceReport]):
        backlog = sum(r.queue_depth for r in reports)
        if backlog > queue_threshold:
            calm["count"] = 0
            return {"action": "scale_up", "backlog": backlog}
        if low_threshold is not None and len(reports) > 1 and backlog <= low_threshold:
            calm["count"] += 1
            if calm["count"] >= settle_intervals:
                calm["count"] = 0
                return {"action": "scale_down", "backlog": backlog}
        else:
            calm["count"] = 0
        return None

    return logic
