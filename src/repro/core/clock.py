"""Per-packet logical clocks (§5 "Logical clocks, logging").

The root attaches a unique, per-packet-incremented logical clock to every
input packet. With multiple root instances, "we encode the identifier of
the root instance into the higher order bits of the logical clock" so
delete requests can be routed back to the right root.

Layout: 64-bit value, top :data:`ROOT_ID_BITS` bits are the root instance
ID, the remainder a per-root sequence number.
"""

from __future__ import annotations

ROOT_ID_BITS = 8
SEQUENCE_BITS = 64 - ROOT_ID_BITS
SEQUENCE_MASK = (1 << SEQUENCE_BITS) - 1
MAX_ROOT_ID = (1 << ROOT_ID_BITS) - 1


def make_clock(root_id: int, sequence: int) -> int:
    """Compose a clock value from a root ID and per-root sequence number."""
    if not 0 <= root_id <= MAX_ROOT_ID:
        raise ValueError(f"root_id {root_id} out of range (0..{MAX_ROOT_ID})")
    if not 0 <= sequence <= SEQUENCE_MASK:
        raise ValueError(f"sequence {sequence} out of range")
    return (root_id << SEQUENCE_BITS) | sequence


def clock_root(clock: int) -> int:
    """The root instance that issued this clock."""
    return clock >> SEQUENCE_BITS


def clock_sequence(clock: int) -> int:
    """The per-root sequence number within this clock."""
    return clock & SEQUENCE_MASK


class LogicalClock:
    """The root's clock source.

    ``resume_from`` supports root recovery: after a crash the new root
    reads the last *persisted* clock ``c`` and restarts at
    ``c + persist_every`` so no clock value is ever reused even if some
    assignments after the last persist were lost (footnote 5 of the paper:
    arrival order is preserved because the skipped range is never handed
    out).
    """

    def __init__(self, root_id: int = 0, start_sequence: int = 1):
        self.root_id = root_id
        self._next_sequence = start_sequence

    def next(self) -> int:
        clock = make_clock(self.root_id, self._next_sequence)
        self._next_sequence += 1
        return clock

    @property
    def last_issued_sequence(self) -> int:
        return self._next_sequence - 1

    @classmethod
    def resume_from(cls, root_id: int, persisted_sequence: int, persist_every: int) -> "LogicalClock":
        return cls(root_id=root_id, start_sequence=persisted_sequence + persist_every + 1)
