"""Logical chain definition: the operator-facing DAG API (§3).

Operators define a logical DAG of vertices (NF programs) and edges (data
flow). CHC compiles it into a physical DAG — one or more instances per
vertex, a splitter after every instance — in
:mod:`repro.core.chain_runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.nf_api import NetworkFunction


@dataclass
class Vertex:
    """One logical NF in the chain.

    ``parallelism`` is the default instance count (operators may scale at
    runtime). ``scaling_logic`` / ``straggler_logic`` are the operator-
    supplied callbacks the vertex manager feeds with aggregated statistics
    (§3); both optional.
    """

    name: str
    nf_factory: Callable[[], NetworkFunction]
    parallelism: int = 1
    scaling_logic: Optional[Callable] = None
    straggler_logic: Optional[Callable] = None

    def __post_init__(self):
        if self.parallelism < 1:
            raise ValueError(f"vertex {self.name!r}: parallelism must be >= 1")


@dataclass
class Edge:
    """Directed data flow between vertices.

    ``label`` matches the :class:`~repro.core.nf_api.Output` edge name the
    source NF emits on. ``mirror=True`` makes this an off-path copy edge:
    everything the source emits on its main output is *also* duplicated to
    the destination (the Figure 1b "copy of suspicious traffic" DPI and the
    Figure 2 off-path trojan detector).
    """

    src: str
    dst: str
    label: str = "out"
    mirror: bool = False


class LogicalChain:
    """The DAG the operator hands to CHC."""

    def __init__(self, name: str = "chain"):
        self.name = name
        self.vertices: Dict[str, Vertex] = {}
        self.edges: List[Edge] = []
        self.entry: Optional[str] = None

    def add_vertex(
        self,
        name: str,
        nf_factory: Callable[[], NetworkFunction],
        parallelism: int = 1,
        entry: bool = False,
        scaling_logic: Optional[Callable] = None,
        straggler_logic: Optional[Callable] = None,
    ) -> Vertex:
        if name in self.vertices:
            raise ValueError(f"duplicate vertex {name!r}")
        vertex = Vertex(
            name=name,
            nf_factory=nf_factory,
            parallelism=parallelism,
            scaling_logic=scaling_logic,
            straggler_logic=straggler_logic,
        )
        self.vertices[name] = vertex
        if entry or self.entry is None:
            self.entry = name
        return vertex

    def add_edge(self, src: str, dst: str, label: str = "out", mirror: bool = False) -> Edge:
        for endpoint in (src, dst):
            if endpoint not in self.vertices:
                raise KeyError(f"unknown vertex {endpoint!r}")
        edge = Edge(src=src, dst=dst, label=label, mirror=mirror)
        self.edges.append(edge)
        return edge

    def out_edges(self, vertex: str) -> List[Edge]:
        return [e for e in self.edges if e.src == vertex]

    def in_edges(self, vertex: str) -> List[Edge]:
        return [e for e in self.edges if e.dst == vertex]

    def sinks(self) -> List[str]:
        """Vertices with no outgoing edges (chain exits, incl. off-path)."""
        return [name for name in self.vertices if not self.out_edges(name)]

    def validate(self) -> None:
        """Check the DAG is connected from the entry and acyclic."""
        if self.entry is None:
            raise ValueError("chain has no entry vertex")
        # reachability
        seen = set()
        frontier = [self.entry]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(e.dst for e in self.out_edges(current))
        unreachable = set(self.vertices) - seen
        if unreachable:
            raise ValueError(f"vertices unreachable from entry: {sorted(unreachable)}")
        # acyclicity via DFS colouring
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self.vertices}

        def visit(node: str) -> None:
            colour[node] = GREY
            for edge in self.out_edges(node):
                if colour[edge.dst] == GREY:
                    raise ValueError(f"cycle through {edge.src!r} -> {edge.dst!r}")
                if colour[edge.dst] == WHITE:
                    visit(edge.dst)
            colour[node] = BLACK

        visit(self.entry)
