"""Cross-instance state handover for elastic scaling (§5.1, Figure 4).

:func:`move_flows` drives the full protocol:

1. the splitter emits a "last" marker to each old instance and arms
   "first" marking for the new instance;
2. the old instance drains already-queued packets (worker barrier),
   flushes cached *operations* (ACK fence) and hands ownership metadata to
   the new instance in one bulk store message;
3. the new instance, which has been buffering the moved flows since their
   first marked packet, is notified and drains its buffer in order.

Loss-freeness: every packet either drains through the old instance before
the marker, or waits at the new instance until ownership lands — no update
is ever rejected by the store's ownership check. Order preservation: the
new instance starts processing strictly after the old instance's last
moved packet (the buffer drains in arrival order), so updates hit the
store in upstream-splitter arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Tuple


@dataclass
class MoveResult:
    """Outcome of one reallocation."""

    vertex: str
    new_instance: str
    n_keys: int
    n_markers: int
    started_at: float
    finished_at: float

    @property
    def duration_us(self) -> float:
        return self.finished_at - self.started_at


def move_flows(
    runtime,
    vertex_name: str,
    scope_keys: Iterable[Tuple],
    new_instance_id: str,
    current_of=None,
) -> Generator:
    """Reallocate the given partition keys to ``new_instance_id``.

    A simulation process body (``yield from`` it, or wrap in
    ``sim.process``). Returns a :class:`MoveResult` once ownership has
    fully moved (Figure 4 step 6 reached for every marker). ``current_of``
    maps keys to their actual holders when the default routing can't tell
    (scope refinement).
    """
    splitter = runtime.splitter(vertex_name)
    scope_keys = list(scope_keys)
    started_at = runtime.sim.now

    # Serialise against in-flight moves of the same keys: until the prior
    # move's ownership transfer lands, routing overrides name a holder that
    # does not own anything yet, so a second move issued now would release
    # no keys and strand the flow's state (loss). Overlap is re-checked
    # after every wait — a move that completed while we slept may have been
    # replaced by yet another conflicting one.
    while True:
        busy = runtime.moves_in_flight(vertex_name, splitter.partition_fields, scope_keys)
        if not busy:
            break
        yield runtime.sim.all_of(busy)

    markers = splitter.begin_move(scope_keys, new_instance_id, current_of=current_of)

    events = []
    for control_packet in markers:
        marker = control_packet.control
        event = runtime.move_event(vertex_name, marker)
        runtime.note_move_started(vertex_name, marker, event)
        events.append(event)
        # The marker travels the same path as data to the old instance.
        runtime.sim.schedule(
            runtime.params.hop_link_us,
            runtime.nics[marker.old_instance].send,
            control_packet,
            control_packet.size_bits,
        )
    pending = [event for event in events if not event.triggered]
    if pending:
        yield runtime.sim.all_of(pending)
    return MoveResult(
        vertex=vertex_name,
        new_instance=new_instance_id,
        n_keys=len(scope_keys),
        n_markers=len(markers),
        started_at=started_at,
        finished_at=runtime.sim.now,
    )
