"""Batched, fused match-action fast path for NF chains (§6, "software P4").

Per-packet dispatch — one generator resume, one worker-queue hop and a
handful of store-flush events per packet per NF — dominates the hot path
once flows are established (BENCH_engine.json ``chain_pipeline``). Cascone
et al. and Lemur show that NF logic whose state is per-flow-partitionable
compiles into match-action pipelines executed in bulk. This module is the
Python analogue:

* NFs declare a :class:`~repro.core.nf_api.MatchActionForm` — a pure
  header-field ``match`` predicate plus a synchronous ``action`` run
  against a :class:`~repro.core.nf_api.FastState`;
* each eligible instance replaces its per-packet worker loops with
  **batched worker loops**: same flow-sharded queues, but one generator
  resume services a whole batch, per-packet service time is charged as one
  lump timeout, and the batch's state flushes coalesce into one
  :class:`~repro.store.protocol.BatchedOpRequest` per destination store
  instead of one RPC per update;
* adjacent declarative NFs are **fused**: when the downstream vertex is a
  single quiescent instance with a form, the packet executes its action
  inline instead of crossing the NIC/queue machinery.

Correctness contract (what the equivalence tests in
``tests/test_fastpath.py`` pin down):

* the action is **speculative** — every state access goes through a
  :class:`ShadowState` journal; any access that cannot be served from the
  local caches raises :class:`~repro.core.nf_api.NotFast`, the journal is
  discarded, and the packet reruns through the unmodified general path
  with zero visible side effects;
* on success the journal is replayed through the normal
  ``StoreClient.update`` machinery, so WAL entries, bit-vector tags
  (Figure 6 step 1), per-packet sequence numbers and store-side dedup
  identities are **byte-identical** to what the general path produces;
* per-flow order is preserved end to end: the flow-sharded worker queues
  stay FIFO (ineligible packets are processed inline, in order, through
  the unmodified general machinery), and fusion into a downstream instance
  is latched off while any packet of the same flow is in flight towards or
  queued inside it (``NFInstance._inflight_flows``);
* control traffic — handover markers, replay, clones — never takes the
  fast path; the ``mark_last`` barrier traverses the same worker queues as
  before, so a handover flush still fences every queued packet (and
  ``ack_barrier`` force-flushes any open batch).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.nf_api import MatchActionForm, NetworkFunction, NotFast, FastState, Output
from repro.core.splitter import MoveMarker
from repro.store.client import PacketContext, StoreClient
from repro.store.spec import CacheStrategy, StateObjectSpec
from repro.traffic.packet import Packet


def _drive(gen: Generator) -> Any:
    """Run a generator that must complete without yielding (non-blocking).

    Journal replay only ever goes through locally-servable update paths
    (the shadow validated that in the same synchronous segment), so the
    client generators finish on their first resume. A yield here means the
    shadow's eligibility rules diverged from the client's — a bug, not a
    runtime condition — so fail loudly.
    """
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("fast-path journal replay blocked unexpectedly")


class ShadowState(FastState):
    """Speculative, local-only view over a :class:`StoreClient`.

    Reads come from the client's caches (overlaid with this packet's own
    speculative writes); updates apply the registry function to the shadow
    copy and append to the journal. Nothing touches the client, the WAL,
    the bit vector or the network until the executor replays the journal —
    and it only does that after the whole action succeeded.
    """

    __slots__ = ("client", "tables", "values", "journal")

    def __init__(self, client: StoreClient, tables: Tuple[str, ...]):
        self.client = client
        self.tables = tables
        self.values: Dict[str, Any] = {}
        # (obj_name, flow_key, op, args, need_result)
        self.journal: List[Tuple[str, Optional[Tuple], str, Tuple, bool]] = []

    # -- helpers --------------------------------------------------------

    def _spec(self, obj_name: str) -> StateObjectSpec:
        if obj_name not in self.tables:
            # Outside the declared table set: the CHC006 contract. Decline
            # rather than error — the general path will run the NF's real
            # logic (and raise there if the object is truly undeclared).
            raise NotFast(obj_name)
        spec = self.client.specs.get(obj_name)
        if spec is None:
            raise NotFast(obj_name)
        return spec

    def _strategy(self, spec: StateObjectSpec) -> Optional[CacheStrategy]:
        """Mirror of ``StoreClient.update``'s strategy resolution: None
        means caching is globally off (every op offloads non-blocking)."""
        if not self.client.caching_enabled:
            return None
        return spec.strategy()

    def _locally_writable(self, obj_name: str, strategy: Optional[CacheStrategy]) -> bool:
        """Can updates of this object apply against the local cache?"""
        if strategy is CacheStrategy.PER_FLOW_CACHE:
            return True
        return strategy is CacheStrategy.SPLIT_AWARE and self.client._exclusive.get(
            obj_name, False
        )

    # -- FastState ------------------------------------------------------

    def get(self, obj_name: str, flow_key: Optional[Tuple]) -> Any:
        client = self.client
        spec = self._spec(obj_name)
        _sk, storage_key = client._key(obj_name, flow_key)
        if storage_key in self.values:
            return self.values[storage_key]
        strategy = self._strategy(spec)
        if self._locally_writable(obj_name, strategy):
            if storage_key in client._cache:
                client.stats.cached_reads += 1
                return client._cache[storage_key]
            raise NotFast(storage_key)  # cold: the general path seeds it
        if strategy is CacheStrategy.READ_HEAVY_CACHE:
            if storage_key in client._readheavy_cache:
                client.stats.cached_reads += 1
                return client._readheavy_cache[storage_key]
            raise NotFast(storage_key)
        # NON_BLOCKING / non-exclusive SPLIT_AWARE / caching off: the
        # general path read-throughs to the store — never local.
        raise NotFast(storage_key)

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Any:
        client = self.client
        spec = self._spec(obj_name)
        _sk, storage_key = client._key(obj_name, flow_key)
        strategy = self._strategy(spec)
        if self._locally_writable(obj_name, strategy):
            if storage_key in self.values:
                current = self.values[storage_key]
            elif storage_key in client._cache:
                current = client._cache[storage_key]
            elif op in StoreClient._OVERWRITE_OPS:
                # overwrite ops need no current state — the general path
                # applies them on a cold cache too
                current = spec.initial_value
            else:
                raise NotFast(storage_key)
            new_value, return_value = client.registry.apply(op, current, args)
            self.values[storage_key] = new_value
            self.journal.append((obj_name, flow_key, op, args, need_result))
            return return_value
        if strategy is CacheStrategy.NON_BLOCKING or strategy is None:
            if need_result:
                raise NotFast(storage_key)  # blocking round-trip required
            self.journal.append((obj_name, flow_key, op, args, False))
            return None
        # READ_HEAVY updates and non-exclusive SPLIT_AWARE updates run
        # blocking at the store by design.
        raise NotFast(storage_key)


class FastPathExecutor:
    """The per-instance fast loop plus the fused-dispatch walk."""

    def __init__(self, instance, form: MatchActionForm, batch_size: int):
        self.instance = instance
        self.form = form
        self.batch_size = max(1, batch_size)
        self.client: StoreClient = instance.client
        self.stats_fast = 0
        self.stats_fallback = 0
        self.stats_fused_in = 0

    # -- eligibility ----------------------------------------------------

    def eligible(self, packet: Packet) -> bool:
        """Cheap pre-checks before attempting the speculative action."""
        instance = self.instance
        return (
            packet.control is None
            and not packet.mark_first
            and not packet.mark_last
            and not packet.replayed
            and not packet.replay_end
            and packet.replay_target is None
            and not instance._pending_moves
            and not instance._buffering
            and self.form.match(packet)
        )

    # -- execution ------------------------------------------------------

    def execute(self, packet: Packet) -> Optional[List[Output]]:
        """Run the action speculatively; commit and return outputs, or None.

        On success this performs *all* the per-packet bookkeeping the
        general path's ``_process_packet`` does (seen-clock accounting,
        latency/throughput records, journal replay through the client).
        """
        instance = self.instance
        shadow = ShadowState(self.client, self.form.tables)
        try:
            outputs = self.form.action(packet, shadow)
        except NotFast:
            self.stats_fallback += 1
            return None
        if outputs is None:
            self.stats_fallback += 1
            return None
        if packet.clock in instance._seen_clocks:
            instance.stats.duplicates_seen += 1
        elif packet.clock:
            instance._seen_clocks.add(packet.clock)
        ctx: PacketContext = self.client.make_context(packet)
        for obj_name, flow_key, op, args, need_result in shadow.journal:
            _drive(
                self.client.update(
                    obj_name, flow_key, op, *args, need_result=need_result, ctx=ctx
                )
            )
        now = instance.sim.now
        instance.recorder.record(instance.proc_time_us, timestamp=now)
        if packet.queued_at:
            instance.sojourn.record(now - packet.queued_at, timestamp=now)
        instance.throughput.add(packet.size_bits, now)
        instance.stats.processed += 1
        if not outputs:
            instance.stats.dropped += 1
        self.stats_fast += 1
        return outputs

    # -- the batched worker loop ----------------------------------------

    def worker_loop(self, queue) -> Generator:
        """Batched replacement for ``NFInstance._worker_loop`` (one per
        worker queue; sharding and per-shard FIFO order are unchanged).

        One generator resume drains up to ``batch_size`` queued packets.
        Eligible ones run the declarative action (synchronously, with
        fused downstream dispatch); everything else — barriers, move
        markers, replayed traffic, declined packets — goes through the
        unmodified general machinery inline, so it cannot be overtaken.
        Per-packet service time for fast packets is charged as one lump
        timeout at the end of the batch: one timer event instead of one
        per packet, which is where the engine-event win comes from.
        """
        instance = self.instance
        sim = instance.sim
        while instance._alive:
            first = yield queue.get()
            batch = [first]
            while len(batch) < self.batch_size:
                item = queue.try_get()
                if item is None:
                    break
                batch.append(item)
            self.client.batch_begin()
            touched = [self.client]
            deletes: List[Tuple[str, int, int, int]] = []
            debt = 0.0
            for packet in batch:
                if packet.control is not None and packet.mark_last:
                    # handover barrier: this loop is this queue's barrier
                    # participant, exactly like the general worker loop
                    yield from instance._on_last_marker(packet.control)
                    continue
                if self.eligible(packet):
                    outputs = self.execute(packet)
                    if outputs is not None:
                        debt += instance.proc_time_us
                        debt += yield from self._emit_fused(
                            packet, outputs, touched, deletes
                        )
                        if not instance._alive:
                            return
                        instance._uncount(packet)
                        continue
                # General path, inline (replicates _worker_loop's move
                # handling): blocking state access may stall this queue —
                # required, later packets of the shard must not overtake.
                yield from self._general_fallback(packet)
                if not instance._alive:
                    return
            for client in touched:
                client.batch_flush()
            if deletes:
                self._flush_deletes(deletes)
            if debt > 0.0:
                yield sim.timeout(debt)

    def _general_fallback(self, packet: Packet) -> Generator:
        """Run one packet through the general path, move handling included
        (mirrors the body of ``NFInstance._worker_loop``)."""
        instance = self.instance
        marker = None
        if packet.mark_first and isinstance(packet.control, MoveMarker):
            marker = packet.control
            packet.mark_first = False
            packet.control = None
            if marker.new_instance != instance.instance_id:
                marker = instance._matching_pending_move(packet)
        else:
            marker = instance._matching_pending_move(packet)
        if marker is not None:
            yield from instance._ensure_moved_in(marker)
        yield from instance._process_packet(packet)

    # -- fused dispatch -------------------------------------------------

    def _flush_deletes(self, deletes: List[Tuple[str, int, int, int]]) -> None:
        """Send the batch's last-NF delete reports, one message per root."""
        from repro.core.root import BatchedDeleteRequest, DeleteRequest

        by_root: Dict[str, List[Tuple[int, int, int]]] = {}
        for root_name, clock, vector, generation in deletes:
            by_root.setdefault(root_name, []).append((clock, vector, generation))
        for root_name, entries in by_root.items():
            if len(entries) == 1:
                clock, vector, generation = entries[0]
                message: Any = DeleteRequest(
                    clock=clock, vector=vector, generation=generation
                )
            else:
                message = BatchedDeleteRequest(tuple(entries))
            self.client.endpoint.send(root_name, message)

    def _emit_fused(
        self,
        packet: Packet,
        outputs: List[Output],
        touched: List[StoreClient],
        deletes: List[Tuple[str, int, int, int]],
    ) -> Generator:
        """Walk the packet through fused downstream NFs, then emit.

        Returns the simulated time owed for the fused hops (link + wire +
        downstream processing) — charged by the caller as part of the
        batch's lump timeout. Downstream clients whose flush batch this
        walk opens are appended to ``touched``; the caller flushes them
        with the batch, so the whole fused run's state flushes coalesce.
        """
        runtime = self.instance.runtime
        params = runtime.params
        current = self.instance
        debt = 0.0
        wire_rate = params.nic_rate_gbps * 1000.0  # bits/µs
        while len(outputs) == 1 and outputs[0].packet is packet:
            dst_vertex = runtime.fusion_successor(current.vertex_name, outputs[0].edge)
            if dst_vertex is None:
                break
            target = runtime.fast_target(dst_vertex, packet)
            if target is None:
                break
            dup_filter = runtime.filters[target.instance_id]
            if dup_filter.enabled and packet.clock and packet.clock in dup_filter._seen:
                # same suppression (and root accounting) _deliver applies
                dup_filter.suppressed += 1
                runtime.duplicates_suppressed += 1
                runtime.root_for(packet.clock).report_done(
                    packet.clock, 0, packet.generation
                )
                return debt
            executor = target._fastpath
            packet.queued_at = self.instance.sim.now
            if not executor.eligible(packet):
                break
            if executor.client._batch is None:
                executor.client.batch_begin()
                touched.append(executor.client)
            fused = executor.execute(packet)
            if fused is None:
                break
            # the fused ingress still records the clock, so a later replay
            # of this packet is recognised as a duplicate at this instance
            dup_filter.admit(packet)
            executor.stats_fused_in += 1
            debt += (
                params.hop_link_us
                + (packet.size_bits + params.nic_overhead_bits) / wire_rate
                + target.proc_time_us
            )
            current = target
            outputs = fused
        yield from runtime.emit(current, packet, outputs, delete_sink=deletes)
        return debt


def install_fastpath(instance, batch_size: int) -> Optional[FastPathExecutor]:
    """Attach a fast-path executor to an instance whose NF declares a form.

    Called by :class:`~repro.core.instance.NFInstance` at construction;
    returns None (instance stays fully general) when the NF has no
    declarative form.
    """
    nf: NetworkFunction = instance.nf
    form = nf.match_action_form()
    if form is None:
        return None
    return FastPathExecutor(instance, form, batch_size)


def compiled_plan(runtime) -> Dict[str, Any]:
    """The chain compiler's fusion plan, for reports and tests.

    Lists which vertices are declarative, and the maximal runs of adjacent
    declarative vertices that batch-dispatch can fuse (static view — at
    run time each fused hop is additionally gated on splitter quiescence
    and the per-flow in-flight latch).
    """
    declarative = {
        name
        for name, vertex in runtime.chain.vertices.items()
        if vertex.nf_factory().match_action_form() is not None
    }
    runs: List[List[str]] = []
    consumed = set()
    for name in runtime.chain.vertices:
        if name not in declarative or name in consumed:
            continue
        run = [name]
        consumed.add(name)
        nxt = runtime.fusion_successor(name, "out")
        while nxt in declarative and nxt not in consumed:
            run.append(nxt)
            consumed.add(nxt)
            nxt = runtime.fusion_successor(nxt, "out")
        runs.append(run)
    return {
        "declarative": sorted(declarative),
        "fused_runs": [run for run in runs if len(run) > 1],
    }
