"""Chaos campaigns: scripted and randomized fault injection (§5.4).

The paper proves CHC's recovery protocols correct under the fail-stop
model; this package *stresses* the implementation of those protocols
against harsher conditions — detection latency, message loss, partitions,
correlated crashes — and checks the outcomes against machine-checkable
invariants derived from the paper's theorems (loss-free state, Theorem
B.5.1; exactly-once externalization, Theorem B.4.4; per-flow ordering,
Theorem B.2.1).

Layers:

* :mod:`repro.chaos.schedule` — fault actions and seeded random schedules;
* :mod:`repro.chaos.director` — :class:`ChaosDirector`, a
  :class:`~repro.simnet.failures.FailureInjector` with a configurable
  failure-detection model, executing schedules against a runtime;
* :mod:`repro.chaos.invariants` — the post-run checkers;
* :mod:`repro.chaos.campaign` — named scenarios, N-seed campaign driver
  and the :class:`CampaignReport` the CLI serializes;
* :mod:`repro.chaos.overload` — overload scenarios (§8): bursts, slow
  stores and flash crowds, with shed accounting and the autoscaler loop.
"""

from repro.chaos.campaign import (
    CampaignReport,
    SCENARIOS,
    ScenarioOutcome,
    ScenarioSpec,
    run_campaign,
    run_scenario,
)
from repro.chaos.director import ChaosDirector, DetectionModel
from repro.chaos.invariants import (
    InvariantViolation,
    check_invariants,
    check_sheds_accounted,
)
from repro.chaos.overload import (
    OVERLOAD_SCENARIOS,
    OverloadOutcome,
    OverloadSpec,
    measure_load_point,
    run_overload_scenario,
)
from repro.chaos.schedule import (
    CrashNF,
    CrashRoot,
    CrashStore,
    Heal,
    LatencySpike,
    LinkLossBurst,
    Partition,
    Schedule,
    random_schedule,
)

__all__ = [
    "CampaignReport",
    "ChaosDirector",
    "CrashNF",
    "CrashRoot",
    "CrashStore",
    "DetectionModel",
    "Heal",
    "InvariantViolation",
    "LatencySpike",
    "LinkLossBurst",
    "Partition",
    "OVERLOAD_SCENARIOS",
    "OverloadOutcome",
    "OverloadSpec",
    "SCENARIOS",
    "Schedule",
    "ScenarioOutcome",
    "ScenarioSpec",
    "check_invariants",
    "check_sheds_accounted",
    "measure_load_point",
    "random_schedule",
    "run_campaign",
    "run_overload_scenario",
    "run_scenario",
]
