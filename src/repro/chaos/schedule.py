"""Fault schedules: what goes wrong, and when.

A :class:`Schedule` is an ordered list of fault actions with absolute
simulation times. Scenarios script them directly; randomized campaigns draw
them from :func:`random_schedule` with a seed, so every run is exactly
reproducible.

Actions deliberately name *roles*, not concrete components ("an alive
instance of vertex X", "the store holding vertex X's state"): the director
resolves them against the runtime at execution time, so a schedule stays
valid across failovers that rename components mid-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class FaultAction:
    """Base: something bad happening at ``at_us`` (absolute sim time)."""

    at_us: float


@dataclass
class CrashNF(FaultAction):
    """Fail-stop an NF instance.

    ``instance_id`` pins a concrete target; otherwise a random alive
    instance of ``vertex`` (or of any vertex when that is ``None`` too) is
    chosen at execution time with the director's seeded RNG. With
    ``newest`` set, the *most recently registered* matching instance is
    chosen instead of a random one — maintenance-overlay scenarios use it
    to crash the replacement an in-progress rolling upgrade just spawned.
    """

    vertex: Optional[str] = None
    instance_id: Optional[str] = None
    newest: bool = False


@dataclass
class CrashRoot(FaultAction):
    """Fail-stop a root instance (by ``root_id``)."""

    root_id: int = 0


@dataclass
class CrashStore(FaultAction):
    """Fail-stop a datastore instance (by name, or a random alive one)."""

    name: Optional[str] = None


@dataclass
class Partition(FaultAction):
    """Partition the fabric into named groups for ``duration_us``.

    Groups are role selectors resolved at execution time: ``"nfs"`` (every
    alive NF instance), ``"stores"``, ``"roots"``, or a concrete endpoint
    name. Endpoints in no group communicate freely with everyone.
    """

    groups: Sequence[Sequence[str]] = ()
    duration_us: float = 1_000.0


@dataclass
class LinkLossBurst(FaultAction):
    """A window of random message loss on matching (src, dst) traffic."""

    loss: float = 0.05
    duration_us: Optional[float] = None  # None = until the end of the run
    src: Optional[str] = None
    dst: Optional[str] = None


@dataclass
class LatencySpike(FaultAction):
    """A window of added latency / jitter on matching traffic."""

    extra_latency_us: float = 0.0
    jitter_us: float = 0.0
    duration_us: Optional[float] = None
    src: Optional[str] = None
    dst: Optional[str] = None


@dataclass
class Heal(FaultAction):
    """Remove the current partition (if any)."""


@dataclass
class Schedule:
    """An ordered fault script."""

    actions: List[FaultAction] = field(default_factory=list)

    def add(self, action: FaultAction) -> "Schedule":
        self.actions.append(action)
        return self

    def sorted(self) -> List[FaultAction]:
        return sorted(self.actions, key=lambda a: a.at_us)

    @property
    def crash_count(self) -> int:
        return sum(
            isinstance(a, (CrashNF, CrashRoot, CrashStore)) for a in self.actions
        )


def random_schedule(
    seed: int,
    window_us: Tuple[float, float],
    n_faults: int = 2,
    crash_weight: float = 0.5,
    partition_weight: float = 0.25,
    degrade_weight: float = 0.25,
    max_crashes: int = 2,
) -> Schedule:
    """Draw a reproducible random schedule inside ``window_us``.

    Fault kinds are drawn by weight; crash targets stay role-based (random
    NF / root / store), so the same seed gives the same schedule for any
    topology. ``max_crashes`` bounds correlated-crash pile-ups — the paper's
    model recovers any single failure and specific pairs, not arbitrary
    simultaneous loss of every replica.
    """
    rng = random.Random(seed)
    start, end = window_us
    schedule = Schedule()
    crashes = 0
    kinds = ["crash", "partition", "degrade"]
    weights = [crash_weight, partition_weight, degrade_weight]
    for _ in range(n_faults):
        at = start + rng.random() * (end - start)
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "crash" and crashes < max_crashes:
            crashes += 1
            which = rng.choice(["nf", "nf", "root", "store"])
            if which == "nf":
                schedule.add(CrashNF(at_us=at))
            elif which == "root":
                schedule.add(CrashRoot(at_us=at))
            else:
                schedule.add(CrashStore(at_us=at))
        elif kind == "partition":
            schedule.add(
                Partition(
                    at_us=at,
                    groups=(("nfs",), ("stores",)),
                    duration_us=500.0 + rng.random() * 1_500.0,
                )
            )
        else:
            if rng.random() < 0.5:
                schedule.add(
                    LinkLossBurst(
                        at_us=at,
                        loss=0.02 + rng.random() * 0.08,
                        duration_us=500.0 + rng.random() * 2_000.0,
                    )
                )
            else:
                schedule.add(
                    LatencySpike(
                        at_us=at,
                        extra_latency_us=20.0 + rng.random() * 80.0,
                        jitter_us=rng.random() * 30.0,
                        duration_us=500.0 + rng.random() * 2_000.0,
                    )
                )
    return schedule
