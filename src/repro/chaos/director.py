"""The chaos director: failure injection with a detection model.

:class:`ChaosDirector` generalizes
:class:`~repro.simnet.failures.FailureInjector` along two axes the paper's
fail-stop model idealizes away:

* **detection latency** — the paper assumes failures are detected
  "immediately" (§5.4). :class:`DetectionModel` optionally models a
  heartbeat detector instead: a failure is noticed at the next heartbeat
  the dead component misses, plus any further misses the detector requires
  before declaring death. The default stays instantaneous, matching the
  paper.
* **schedule execution** — :meth:`ChaosDirector.execute` runs a
  :class:`~repro.chaos.schedule.Schedule` against a
  :class:`~repro.core.chain_runtime.ChainRuntime`, resolving role-based
  targets (a random alive NF, the store holding a vertex's state) with a
  seeded RNG and dispatching network faults (partitions, loss bursts,
  latency spikes) to the fabric.

The director records "failed" events in a
:class:`~repro.simnet.monitor.RecoveryTimeline` at the crash instant and
notifies observers (typically a :class:`~repro.core.supervisor.Supervisor`)
only after the modeled detection latency — so campaign reports can split an
outage into detection time and protocol time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.chaos.schedule import (
    CrashNF,
    CrashRoot,
    CrashStore,
    FaultAction,
    Heal,
    LatencySpike,
    LinkLossBurst,
    Partition,
    Schedule,
)
from repro.simnet.engine import Simulator
from repro.simnet.failures import Failable, FailureInjector
from repro.simnet.monitor import RecoveryTimeline
from repro.simnet.network import Network


@dataclass
class DetectionModel:
    """How long after a crash the cluster notices it.

    ``heartbeat_interval_us <= 0`` models the paper's instantaneous
    detector. Otherwise the crash lands uniformly at random inside a
    heartbeat period (the component's beats are not phase-aligned with the
    crash), and the detector declares death after ``misses`` consecutive
    missed beats: latency = U(0, interval) + (misses - 1) * interval.
    """

    heartbeat_interval_us: float = 0.0
    misses: int = 1

    def latency_us(self, rng: random.Random) -> float:
        if self.heartbeat_interval_us <= 0:
            return 0.0
        return rng.random() * self.heartbeat_interval_us + (
            max(self.misses, 1) - 1
        ) * self.heartbeat_interval_us


class ChaosDirector(FailureInjector):
    """A failure injector that executes fault schedules. See module doc."""

    def __init__(
        self,
        sim: Simulator,
        network: Optional[Network] = None,
        detection: Optional[DetectionModel] = None,
        seed: int = 0,
        timeline: Optional[RecoveryTimeline] = None,
    ):
        super().__init__(sim)
        self.network = network
        self.detection = detection or DetectionModel()
        self.rng = random.Random(seed)
        self.timeline = timeline
        self.failed_at: Dict[str, float] = {}
        self.detected_at: Dict[str, float] = {}
        self.executed: List[FaultAction] = []
        self.skipped: List[FaultAction] = []

    @staticmethod
    def _name(component: Any) -> str:
        return getattr(component, "instance_id", None) or getattr(
            component, "name", repr(component)
        )

    def _notify(self, component: Failable) -> None:
        """Dispatch detection after the model's latency (base: instantly)."""
        name = self._name(component)
        self.failed_at.setdefault(name, self.sim.now)
        if self.timeline is not None:
            self.timeline.record(self.sim.now, "failed", name)
        latency = self.detection.latency_us(self.rng)
        if latency <= 0.0:
            self.detected_at.setdefault(name, self.sim.now)
            super()._notify(component)
            return
        self.sim.schedule(latency, self._detect, component, name)

    def _detect(self, component: Failable, name: str) -> None:
        self.detected_at.setdefault(name, self.sim.now)
        super()._notify(component)

    # ------------------------------------------------------------------
    # schedule execution
    # ------------------------------------------------------------------

    def execute(self, schedule: Schedule, runtime) -> "Any":
        """Run ``schedule`` against ``runtime`` (returns the sim process)."""
        return self.sim.process(
            self._execute(schedule, runtime), name="chaos-director"
        )

    def _execute(self, schedule: Schedule, runtime) -> Generator:
        for action in schedule.sorted():
            delay = action.at_us - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self.apply(action, runtime)

    def apply(self, action: FaultAction, runtime) -> None:
        """Apply one fault action now (resolving role-based targets)."""
        if isinstance(action, CrashNF):
            target = self._pick_nf(action, runtime)
        elif isinstance(action, CrashRoot):
            target = next(
                (r for r in runtime.roots if r.root_id == action.root_id and r.alive),
                None,
            )
        elif isinstance(action, CrashStore):
            target = self._pick_store(action, runtime)
        elif isinstance(action, Partition):
            network = self.network or runtime.network
            network.partition(self._resolve_groups(action.groups, runtime))
            if action.duration_us is not None:
                self.sim.schedule(action.duration_us, network.heal)
            self.executed.append(action)
            return
        elif isinstance(action, Heal):
            (self.network or runtime.network).heal()
            self.executed.append(action)
            return
        elif isinstance(action, LinkLossBurst):
            (self.network or runtime.network).degrade(
                src=action.src,
                dst=action.dst,
                loss=action.loss,
                duration_us=action.duration_us,
            )
            self.executed.append(action)
            return
        elif isinstance(action, LatencySpike):
            (self.network or runtime.network).degrade(
                src=action.src,
                dst=action.dst,
                extra_latency_us=action.extra_latency_us,
                jitter_us=action.jitter_us,
                duration_us=action.duration_us,
            )
            self.executed.append(action)
            return
        else:
            raise TypeError(f"unknown fault action {action!r}")

        if target is None:
            # the role resolved to nothing alive (e.g. the only instance of
            # the vertex already crashed) — a randomized schedule may do
            # this legitimately; record and move on
            self.skipped.append(action)
            return
        self.executed.append(action)
        self.fail_now(target)

    def _pick_nf(self, action: CrashNF, runtime):
        if action.instance_id is not None:
            instance = runtime.instances.get(action.instance_id)
            return instance if instance is not None and instance.alive else None
        candidates = [
            instance
            for instance in runtime.instances.values()
            if instance.alive
            and (action.vertex is None or instance.vertex_name == action.vertex)
        ]
        # Never crash a vertex's last alive instance *and* strand the vertex:
        # failover creates a replacement, so any alive instance is fair game.
        if not candidates:
            return None
        if action.newest:
            # runtime.instances is insertion-ordered: the last matching
            # candidate is the most recently spawned (e.g. an in-progress
            # rolling upgrade's replacement).
            return candidates[-1]
        return self.rng.choice(sorted(candidates, key=lambda i: i.instance_id))

    def _pick_store(self, action: CrashStore, runtime):
        if action.name is not None:
            return next(
                (s for s in runtime.stores if s.name == action.name and s.alive), None
            )
        candidates = [store for store in runtime.stores if store.alive]
        if not candidates:
            return None
        return self.rng.choice(sorted(candidates, key=lambda s: s.name))

    def _resolve_groups(self, groups: Sequence[Sequence[str]], runtime) -> List[List[str]]:
        resolved: List[List[str]] = []
        for group in groups:
            names: List[str] = []
            for selector in group:
                if selector == "nfs":
                    names.extend(
                        i.instance_id for i in runtime.instances.values() if i.alive
                    )
                elif selector == "stores":
                    names.extend(s.name for s in runtime.stores if s.alive)
                elif selector == "roots":
                    names.extend(r.name for r in runtime.roots if r.alive)
                else:
                    names.append(selector)
            resolved.append(names)
        return resolved
