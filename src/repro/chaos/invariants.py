"""Machine-checkable correctness invariants for chaos runs.

Each checker encodes a guarantee the paper proves for CHC and returns a
list of :class:`InvariantViolation` (empty = the guarantee held):

* **loss-free state** (Theorems B.5.1–B.5.3): the chain's final store
  state matches a clean reference run of the same workload — failures and
  recoveries must not lose or corrupt state. Scenarios that *provably*
  lose a bounded set of packets (a locally-logged root crash drops the
  packets inside the root at that instant, Theorem B.3.1) pass a
  ``loss_allowance``: counters may trail the reference by at most that
  many increments, never exceed it.
* **exactly-once externalization** (Theorem B.4.4): no packet identity
  leaves the chain twice — replay plus duplicate suppression must not leak
  duplicates to the end host.
* **per-flow ordering** (§2.1, Theorem B.2.1): packets of one flow leave
  the chain in injection order.
* **no stranded ownership**: every per-flow key's owner recorded at a
  store names an alive, registered NF instance — failovers and handovers
  must never leave state owned by the dead.
* **flush give-ups / recovery failures**: bounded retransmission means a
  client can abandon a flush; on an otherwise-healed network that signals
  lost state, so surviving clients must end with zero give-ups, and every
  supervised recovery must have completed successfully.

Identity: the campaign workload stamps each injected packet's ``payload``
with ``"f<flow>-<seq>"``. Unlike clocks, payload identities are stable
across a root failover (the recovered clock resumes *past* the unpersisted
window, footnote 5, so clock values diverge from the reference run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

_INTERNAL_MARKERS = ("__root__", "__move__", "__nondet__")


@dataclass
class InvariantViolation:
    """One broken guarantee, with enough detail to debug the run."""

    invariant: str
    detail: str

    def as_dict(self) -> Dict[str, str]:
        return {"invariant": self.invariant, "detail": self.detail}


@dataclass
class RunSnapshot:
    """What a finished run looked like, for cross-run comparison."""

    state: Dict[str, Any]
    egress: List[Tuple[Optional[str], int]] = field(default_factory=list)
    # (payload identity, clock) in egress order


def _is_internal(key: str) -> bool:
    return any(marker in key for marker in _INTERNAL_MARKERS)


def chain_state(runtime) -> Dict[str, Any]:
    """Final application-visible store state (internal keys filtered)."""
    state: Dict[str, Any] = {}
    for store in runtime.store.instances:
        for key in store.keys():
            if not _is_internal(key):
                state[key] = store.peek(key)
    return state


def egress_records(runtime) -> List[Tuple[Optional[str], int]]:
    """(payload, clock) of every packet that left the chain, in order."""
    return [
        (packet.payload, packet.clock)
        for _vertex, packet in runtime.egress._items
    ]


def snapshot_run(runtime) -> RunSnapshot:
    return RunSnapshot(state=chain_state(runtime), egress=egress_records(runtime))


# ----------------------------------------------------------------------
# individual checkers
# ----------------------------------------------------------------------


def check_loss_free_state(
    state: Dict[str, Any],
    reference: Dict[str, Any],
    loss_allowance: int = 0,
) -> List[InvariantViolation]:
    """Final state equals the reference run's (Theorems B.5.1–B.5.3).

    With ``loss_allowance > 0``, integer-valued keys may trail the
    reference by at most the allowance (bounded, *provable* packet loss)
    but may never exceed it (that would mean duplication or corruption).
    """
    violations: List[InvariantViolation] = []
    for key in sorted(set(reference) | set(state)):
        expected = reference.get(key)
        got = state.get(key)
        if got == expected:
            continue
        if (
            loss_allowance > 0
            and isinstance(expected, int)
            and isinstance(got, (int, type(None)))
        ):
            deficit = expected - (got or 0)
            if 0 <= deficit <= loss_allowance:
                continue
        violations.append(
            InvariantViolation(
                "loss-free-state",
                f"{key!r}: expected {expected!r}, got {got!r}"
                + (f" (allowance {loss_allowance})" if loss_allowance else ""),
            )
        )
    return violations


def check_exactly_once(
    egress: List[Tuple[Optional[str], int]]
) -> List[InvariantViolation]:
    """No packet identity is externalized twice (Theorem B.4.4)."""
    violations: List[InvariantViolation] = []
    seen: Dict[Optional[str], int] = {}
    for payload, _clock in egress:
        if payload is None:
            continue
        seen[payload] = seen.get(payload, 0) + 1
    for payload, count in sorted(seen.items()):
        if count > 1:
            violations.append(
                InvariantViolation(
                    "exactly-once", f"packet {payload!r} externalized {count} times"
                )
            )
    return violations


def check_egress_complete(
    egress: List[Tuple[Optional[str], int]],
    reference: List[Tuple[Optional[str], int]],
    loss_allowance: int = 0,
) -> List[InvariantViolation]:
    """Every reference packet leaves the chain (minus the allowance), and
    nothing leaves that the reference run didn't produce."""
    violations: List[InvariantViolation] = []
    got = {payload for payload, _ in egress if payload is not None}
    expected = {payload for payload, _ in reference if payload is not None}
    extra = got - expected
    missing = expected - got
    if extra:
        violations.append(
            InvariantViolation(
                "egress-complete", f"unexpected egress packets: {sorted(extra)[:5]}"
            )
        )
    if len(missing) > loss_allowance:
        violations.append(
            InvariantViolation(
                "egress-complete",
                f"{len(missing)} packets never externalized "
                f"(allowance {loss_allowance}): {sorted(missing)[:5]}...",
            )
        )
    return violations


def check_flow_ordering(
    egress: List[Tuple[Optional[str], int]]
) -> List[InvariantViolation]:
    """Per-flow egress order matches injection order (Theorem B.2.1).

    Relies on the campaign's ``"f<flow>-<seq>"`` payload convention;
    packets without it are skipped.
    """
    violations: List[InvariantViolation] = []
    last_seq: Dict[str, int] = {}
    for payload, _clock in egress:
        if not payload or "-" not in payload:
            continue
        flow, _, seq_text = payload.rpartition("-")
        try:
            seq = int(seq_text)
        except ValueError:
            continue
        previous = last_seq.get(flow)
        if previous is not None and seq <= previous:
            violations.append(
                InvariantViolation(
                    "flow-ordering",
                    f"flow {flow!r}: packet #{seq} externalized after #{previous}",
                )
            )
        last_seq[flow] = max(seq, last_seq.get(flow, -1))
    return violations


def check_ownership_map(
    owners: Dict[str, Optional[str]],
    alive_instances: Iterable[str],
    store_name: str = "store",
) -> List[InvariantViolation]:
    """Serializable form of :func:`check_ownership`.

    ``owners`` is a store's key -> owner map, ``alive_instances`` the set of
    instance IDs currently alive — exactly what the distributed fabric
    (repro.dist) collects over the wire from a store snapshot and shard
    status replies, with no live runtime in the checking process.
    """
    alive = set(alive_instances)
    violations: List[InvariantViolation] = []
    for key, owner in sorted(owners.items()):
        if owner is None or _is_internal(key):
            continue
        if owner not in alive:
            violations.append(
                InvariantViolation(
                    "no-stranded-ownership",
                    f"{store_name}: key {key!r} owned by dead or unknown "
                    f"instance {owner!r}",
                )
            )
    return violations


def check_ownership(runtime) -> List[InvariantViolation]:
    """Every recorded per-flow owner is an alive, registered NF instance."""
    alive = [
        instance_id
        for instance_id, instance in runtime.instances.items()
        if instance.alive
    ]
    violations: List[InvariantViolation] = []
    for store in runtime.store.instances:
        if not store.alive:
            continue
        violations += check_ownership_map(store._owners, alive, store.name)
    return violations


def check_log_drained(runtime) -> List[InvariantViolation]:
    """Every root's packet log is empty once traffic quiesced.

    Only meaningful for scenarios without message loss: the one-way
    DeleteRequest / CommitSignal messages are not retransmitted, so a lossy
    window legitimately strands log entries (the memory is reclaimed by the
    prune protocol in a real deployment).
    """
    return check_log_lengths(
        {root.name: len(root.log) for root in runtime.roots if root.alive}
    )


def check_log_lengths(log_lengths: Dict[str, int]) -> List[InvariantViolation]:
    """Serializable form of :func:`check_log_drained`: root name -> number
    of packet-log entries left at quiescence."""
    violations: List[InvariantViolation] = []
    for name, length in sorted(log_lengths.items()):
        if length:
            violations.append(
                InvariantViolation(
                    "log-drained",
                    f"{name}: {length} packet log entries not deleted",
                )
            )
    return violations


def check_no_gaveups(runtime) -> List[InvariantViolation]:
    """No surviving client abandoned a state flush (potential lost state)."""
    return check_gaveup_counts(
        {
            instance.instance_id: instance.client.stats.flushes_gave_up
            for instance in runtime.instances.values()
            if instance.alive
        }
    )


def check_gaveup_counts(gaveups: Dict[str, int]) -> List[InvariantViolation]:
    """Serializable form of :func:`check_no_gaveups`: instance ID ->
    ``flushes_gave_up`` counter of every surviving client."""
    violations: List[InvariantViolation] = []
    for instance_id, gave_up in sorted(gaveups.items()):
        if gave_up:
            violations.append(
                InvariantViolation(
                    "no-flush-gaveups",
                    f"{instance_id}: {gave_up} flushes exhausted their "
                    "retry budget",
                )
            )
    return violations


SHED_CAUSES = ("overload_queue", "nic_ring")


def check_sheds_accounted(
    runtime, injected: int, causes: Tuple[str, ...] = SHED_CAUSES
) -> List[InvariantViolation]:
    """Every injected packet either left the chain or was *accounted* for.

    Overload resilience (§8) is allowed to shed load — but never silently:
    each shed copy must land in the Network per-cause drop ledger (queue
    sheds, NIC ring tail-drops) or the root's at-threshold counter. A gap
    between ``injected`` and ``egressed + accounted`` is exactly the
    silent-loss bug class the backpressure layer exists to rule out.

    Only valid after the run has quiesced (nothing still queued).
    """
    egressed = {
        payload for payload, _clock in egress_records(runtime) if payload is not None
    }
    shed = sum(runtime.network.drops.get(cause, 0) for cause in causes)
    at_root = sum(root.stats.dropped_at_threshold for root in runtime.roots)
    accounted = len(egressed) + shed + at_root
    if accounted == injected:
        return []
    direction = "vanished without a ledger entry" if accounted < injected else (
        "over-accounted (double-counted shed or duplicated egress)"
    )
    return [
        InvariantViolation(
            "sheds-accounted",
            f"{abs(injected - accounted)} packets {direction}: "
            f"injected={injected}, egressed={len(egressed)}, "
            f"shed={shed}, at_root={at_root}",
        )
    ]


def check_recoveries_succeeded(supervisor) -> List[InvariantViolation]:
    """Every supervised recovery ran to completion."""
    violations: List[InvariantViolation] = []
    for record in supervisor.failed_recoveries():
        violations.append(
            InvariantViolation(
                "recovery-completed",
                f"{record.kind} recovery of {record.component} failed: "
                f"{record.error!r}",
            )
        )
    if supervisor.busy:
        violations.append(
            InvariantViolation(
                "recovery-completed",
                "recoveries still queued or running at end of run",
            )
        )
    return violations


def check_operation_converged(runtime) -> List[InvariantViolation]:
    """A finished planned operation left no transitional structure behind.

    Planned operations (rolling upgrade, store replacement, topology
    splice, hot reload — ``repro.ops``) move through transitional states:
    paused vertices, in-flight handovers, splitters naming both old and new
    instances, a lame-duck store beside its successor. This checker asserts
    the run *ended* convergent — every name the routing layer can emit
    resolves to an alive component and no transition is still half-taken.
    """
    violations: List[InvariantViolation] = []

    def _bad(detail: str) -> None:
        violations.append(InvariantViolation("operation-converged", detail))

    for vertex, splitter in sorted(runtime.splitters.items()):
        if vertex not in runtime.chain.vertices:
            _bad(f"splitter for {vertex!r} outlives its removed vertex")
        named = (
            set(splitter.instances)
            | set(splitter.hash_members)
            | set(splitter.overrides.values())
        )
        for instance_id in sorted(named):
            instance = runtime.instances.get(instance_id)
            if instance is None or not instance.alive:
                _bad(
                    f"splitter {vertex!r} routes to "
                    f"{'unknown' if instance is None else 'dead'} instance "
                    f"{instance_id!r}"
                )
    for vertex, instance_ids in sorted(runtime.vertex_instances.items()):
        if vertex not in runtime.chain.vertices:
            _bad(f"instance list for {vertex!r} outlives its removed vertex")
        for instance_id in instance_ids:
            if instance_id not in runtime.instances:
                _bad(f"{vertex!r} lists unregistered instance {instance_id!r}")
    if runtime._paused_vertices:
        _bad(f"vertices still input-paused: {sorted(runtime._paused_vertices)}")
    stuck_moves = {}
    for vertex, pending in runtime._inflight_moves.items():
        # completed moves are pruned lazily (moves_in_flight side effect),
        # so triggered entries are normal — only untriggered ones are stuck
        live = sum(1 for event in pending.values() if not event.triggered)
        if live:
            stuck_moves[vertex] = live
    if stuck_moves:
        _bad(f"handovers still in flight at end of run: {stuck_moves}")
    if runtime._sinks != set(runtime.chain.sinks()):
        _bad(
            f"sink cache {sorted(runtime._sinks)} diverged from topology "
            f"sinks {sorted(runtime.chain.sinks())}"
        )
    cluster_names = {store.name for store in runtime.store.instances}
    runtime_names = {store.name for store in runtime.stores}
    if cluster_names != runtime_names:
        _bad(
            f"cluster map stores {sorted(cluster_names)} != runtime stores "
            f"{sorted(runtime_names)}"
        )
    for store in runtime.store.instances:
        if not store.alive:
            _bad(f"cluster map still routes to dead store {store.name!r}")
        elif getattr(store, "lame_duck", False):
            _bad(f"store {store.name!r} left in lame-duck mode")
    for root in runtime.roots:
        if root.alive and root.store_endpoint not in cluster_names:
            _bad(
                f"{root.name} points at store {root.store_endpoint!r} "
                "outside the cluster map"
            )
    return violations


def check_no_downtime(
    windows: List[Tuple[float, int]],
    floor: int = 1,
    label: str = "operation",
) -> List[InvariantViolation]:
    """Goodput never fell below ``floor`` packets per sampled window.

    ``windows`` comes from the maintenance director's
    :class:`~repro.ops.director.GoodputMonitor`: ``(window start, egress
    count)`` pairs sampled *while a planned operation was executing*. A
    zero-loss operation is allowed to add latency, but a window with fewer
    than ``floor`` egress packets means the chain stalled under
    maintenance — downtime the operation promised not to cause.
    """
    violations: List[InvariantViolation] = []
    if not windows:
        violations.append(
            InvariantViolation(
                "no-downtime", f"{label}: no goodput windows were sampled"
            )
        )
        return violations
    for start_us, count in windows:
        if count < floor:
            violations.append(
                InvariantViolation(
                    "no-downtime",
                    f"{label}: window at t={start_us:.0f}us egressed {count} "
                    f"packets (floor {floor})",
                )
            )
    return violations


def check_invariants(
    runtime,
    reference: Optional[RunSnapshot] = None,
    supervisor=None,
    loss_allowance: int = 0,
    expect_log_drained: bool = True,
    expect_converged: bool = False,
    downtime_windows: Optional[List[Tuple[float, int]]] = None,
    downtime_floor: int = 1,
) -> List[InvariantViolation]:
    """Run the full battery; returns every violation found."""
    snapshot = snapshot_run(runtime)
    violations: List[InvariantViolation] = []
    violations += check_exactly_once(snapshot.egress)
    violations += check_flow_ordering(snapshot.egress)
    violations += check_ownership(runtime)
    violations += check_no_gaveups(runtime)
    if reference is not None:
        violations += check_loss_free_state(
            snapshot.state, reference.state, loss_allowance
        )
        violations += check_egress_complete(
            snapshot.egress, reference.egress, loss_allowance
        )
    if expect_log_drained:
        violations += check_log_drained(runtime)
    if supervisor is not None:
        violations += check_recoveries_succeeded(supervisor)
    if expect_converged:
        violations += check_operation_converged(runtime)
    if downtime_windows is not None:
        violations += check_no_downtime(downtime_windows, floor=downtime_floor)
    return violations
