"""Named chaos scenarios and the N-seed campaign driver.

A scenario = a fault schedule template + the invariant profile it must
satisfy. :func:`run_scenario` executes one (seed, scenario) pair twice —
once clean (the reference run) and once under chaos with a
:class:`~repro.chaos.director.ChaosDirector` and a
:class:`~repro.core.supervisor.Supervisor` — then checks the chaos run
against the reference with :func:`repro.chaos.invariants.check_invariants`.

The workload is a two-vertex chain (per-flow + cross-flow state at the
entry, cross-flow state at the sink) carrying ``N_PACKETS`` packets over
``N_FLOWS`` flows; every packet's payload is stamped ``"f<flow>-<seq>"``
so identities compare across runs even when a root failover shifts the
clock space (footnote 5).

:func:`run_campaign` sweeps seeds x scenarios and aggregates recovery-time
distributions (Figure 8-style percentiles: 5/25/50/75/95) into a
:class:`CampaignReport`, which ``tools/chaos_campaign.py`` serializes to
``BENCH_recovery.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.director import ChaosDirector, DetectionModel
from repro.chaos.invariants import (
    InvariantViolation,
    RunSnapshot,
    check_invariants,
    snapshot_run,
)
from repro.chaos.schedule import (
    CrashNF,
    CrashRoot,
    CrashStore,
    LinkLossBurst,
    Partition,
    Schedule,
)
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.nf_api import NetworkFunction, Output
from repro.parallel import CampaignPool, InfraFailure, RunFailure
from repro.simnet.engine import Simulator
from repro.simnet.monitor import PERCENTILES_FIG8, RecoveryTimeline, percentiles
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import FiveTuple, Packet

# --- workload -----------------------------------------------------------

N_PACKETS = 80
N_FLOWS = 6
GAP_US = 3.0
FAULT_AT_US = 120.0
HORIZON_US = 400_000.0


class EntryCounterNF(NetworkFunction):
    """Per-flow hit counter + shared total: exercises PER_FLOW_CACHE and
    NON_BLOCKING offload on every packet (the state classes whose recovery
    Theorems B.5.1/B.5.2 cover)."""

    name = "entry"

    def state_specs(self):
        return {
            "hits": StateObjectSpec(
                "hits", Scope.PER_FLOW, AccessPattern.READ_WRITE_OFTEN, initial_value=0
            ),
            "total": StateObjectSpec(
                "total", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            ),
        }

    def process(self, packet, state):
        flow = packet.five_tuple.canonical().key()
        yield from state.update("hits", flow, "incr", 1)
        yield from state.update("total", None, "incr", 1)
        return [Output(packet)]


class SinkCounterNF(NetworkFunction):
    """Shared seen-counter at the chain exit."""

    name = "exit"

    def state_specs(self):
        return {
            "seen": StateObjectSpec(
                "seen", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            ),
        }

    def process(self, packet, state):
        yield from state.update("seen", None, "incr", 1)
        return [Output(packet)]


def build_runtime(sim: Simulator, seed: int, **overrides) -> ChainRuntime:
    """The campaign's chain: entry (per-flow + shared) -> exit (shared)."""
    chain = LogicalChain("chaos")
    chain.add_vertex("entry", EntryCounterNF, entry=True)
    chain.add_vertex("exit", SinkCounterNF)
    chain.add_edge("entry", "exit")
    params = dict(
        seed=seed,
        # periodic checkpoints: store recovery needs one to rebuild shared
        # state from (Case 1/2 of §5.4 both start at a checkpoint)
        checkpoint_interval_us=60.0,
    )
    params.update(overrides)
    return ChainRuntime(sim, chain, params=RuntimeParams(**params))


def inject_workload(sim: Simulator, runtime: ChainRuntime) -> None:
    """Start the paced packet source (N_FLOWS flows, payload identities)."""

    def source():
        seq_per_flow = [0] * N_FLOWS
        for index in range(N_PACKETS):
            flow = index % N_FLOWS
            seq_per_flow[flow] += 1
            packet = Packet(
                FiveTuple("10.0.0.1", "52.0.0.1", 1000 + flow, 80, 6),
                payload=f"f{flow}-{seq_per_flow[flow]}",
            )
            runtime.inject(packet)
            yield sim.timeout(GAP_US)

    sim.process(source(), name="chaos-source")


# --- scenarios ----------------------------------------------------------


@dataclass
class ScenarioSpec:
    """A named fault pattern plus its invariant profile."""

    name: str
    description: str
    build_schedule: Callable[[int], Schedule]
    loss_allowance: int = 0
    expect_log_drained: bool = True
    runtime_overrides: Dict[str, Any] = field(default_factory=dict)


def _nf_crash(_seed: int) -> Schedule:
    return Schedule([CrashNF(at_us=FAULT_AT_US, vertex="entry")])


def _store_crash(_seed: int) -> Schedule:
    return Schedule([CrashStore(at_us=FAULT_AT_US + 30.0, name="store0")])


def _root_crash(_seed: int) -> Schedule:
    return Schedule([CrashRoot(at_us=FAULT_AT_US, root_id=0)])


def _partition(_seed: int) -> Schedule:
    # NFs cut off from the store for 1.5ms mid-workload; the root still
    # reaches both sides. Blocking ops and flushes must ride their retry
    # budgets across the window.
    return Schedule(
        [Partition(at_us=FAULT_AT_US, groups=(("nfs",), ("stores",)), duration_us=1_500.0)]
    )


def _lossy_link(_seed: int) -> Schedule:
    # 5% loss on ALL control-plane traffic for the whole run, plus an NF
    # crash: recovery itself must make progress over the lossy fabric.
    return Schedule(
        [
            LinkLossBurst(at_us=0.0, loss=0.05, duration_us=None),
            CrashNF(at_us=FAULT_AT_US, vertex="entry"),
        ]
    )


def _nf_plus_root(_seed: int) -> Schedule:
    # correlated crash (Table 3, recoverable with the store-kept log)
    return Schedule(
        [
            CrashNF(at_us=FAULT_AT_US, vertex="entry"),
            CrashRoot(at_us=FAULT_AT_US, root_id=0),
        ]
    )


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in [
        ScenarioSpec(
            name="nf-crash",
            description="fail-stop one entry NF instance mid-workload",
            build_schedule=_nf_crash,
        ),
        ScenarioSpec(
            name="store-crash",
            description="fail-stop the datastore instance holding all state",
            build_schedule=_store_crash,
        ),
        ScenarioSpec(
            name="root-crash",
            description="fail-stop the root (locally-logged packet log dies)",
            build_schedule=_root_crash,
            # Theorem B.3.1: packets inside the root at the crash instant
            # are dropped; at GAP_US pacing that is a handful at most.
            loss_allowance=8,
        ),
        ScenarioSpec(
            name="partition",
            description="NFs partitioned from the store for 1.5ms",
            build_schedule=_partition,
        ),
        ScenarioSpec(
            name="lossy-link",
            description="5% control-plane loss all run + an NF crash",
            build_schedule=_lossy_link,
            # one-way deletes/commits are not retransmitted: lost ones
            # legitimately strand root log entries
            expect_log_drained=False,
        ),
        ScenarioSpec(
            name="nf-plus-root",
            description="correlated NF+root crash with store-kept log (Table 3)",
            build_schedule=_nf_plus_root,
            runtime_overrides={"log_in_store": True},
        ),
    ]
}


# --- driver -------------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """One (scenario, seed) chaos run, checked against its reference."""

    scenario: str
    seed: int
    violations: List[InvariantViolation]
    recovery_us: Dict[str, float]  # component -> failed->recovered
    protocol_us: Dict[str, float]  # component -> recovery_started->recovered
    egress_count: int
    reference_egress_count: int
    engine: Dict[str, Any]
    timeline: List[Dict[str, Any]]

    @property
    def ok(self) -> bool:
        return not self.violations


def _reference_run(seed: int, spec: ScenarioSpec) -> RunSnapshot:
    sim = Simulator()
    runtime = build_runtime(sim, seed, **spec.runtime_overrides)
    inject_workload(sim, runtime)
    sim.run(until=HORIZON_US)
    return snapshot_run(runtime)


def run_scenario(
    spec: ScenarioSpec,
    seed: int,
    detection: Optional[DetectionModel] = None,
    reference: Optional[RunSnapshot] = None,
    collect_runtime: Optional[Callable] = None,
) -> ScenarioOutcome:
    """Run one chaos run for ``spec`` under ``seed`` and check invariants.

    ``reference`` lets a campaign reuse one clean run per (scenario,
    runtime-config) — the reference is seed-independent for this workload
    (injection times and identities are fixed; seeds only perturb the
    chaos run's failures and network randomness).

    ``collect_runtime`` is called with the finished :class:`ChainRuntime`
    before this function returns — the determinism checker digests the
    whole event/egress stream from it.
    """
    if reference is None:
        reference = _reference_run(seed, spec)

    sim = Simulator()
    runtime = build_runtime(sim, seed, **spec.runtime_overrides)
    timeline = RecoveryTimeline()
    director = ChaosDirector(
        sim,
        network=runtime.network,
        detection=detection,
        seed=seed,
        timeline=timeline,
    )
    supervisor = runtime.attach_supervisor(director, timeline=timeline)
    director.execute(spec.build_schedule(seed), runtime)
    inject_workload(sim, runtime)
    sim.run(until=HORIZON_US)

    if collect_runtime is not None:
        collect_runtime(runtime)
    violations = check_invariants(
        runtime,
        reference=reference,
        supervisor=supervisor,
        loss_allowance=spec.loss_allowance,
        expect_log_drained=spec.expect_log_drained,
    )
    return ScenarioOutcome(
        scenario=spec.name,
        seed=seed,
        violations=violations,
        recovery_us=timeline.recovery_durations(since="failed"),
        protocol_us=timeline.recovery_durations(since="recovery_started"),
        egress_count=len(runtime.egress),
        reference_egress_count=len(reference.egress),
        engine=runtime.engine_report(),
        timeline=timeline.as_dicts(),
    )


@dataclass
class CampaignReport:
    """Aggregated campaign results (what BENCH_recovery.json holds).

    Three distinct failure populations (see :mod:`repro.parallel`):
    ``violations`` (run finished, invariant broke), ``failures`` (the run
    itself raised — recorded, remaining seeds kept running), and
    ``infra_failures`` (the worker executing the run was lost). All
    three make :attr:`ok` false; only violations indict the dataplane.
    """

    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    infra_failures: List[InfraFailure] = field(default_factory=list)
    pool_stats: Optional[Dict[str, Any]] = None  # meta fragment, not payload
    sanitizers: Optional[Dict[str, Any]] = None  # merged per-run reports

    @property
    def total_violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    @property
    def ok(self) -> bool:
        return (
            self.total_violations == 0
            and not self.failures
            and not self.infra_failures
        )

    def recovery_samples(self) -> Dict[str, List[float]]:
        """scenario -> every component recovery time (failed->recovered)."""
        samples: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            samples.setdefault(outcome.scenario, []).extend(
                outcome.recovery_us.values()
            )
        return samples

    def protocol_samples(self) -> Dict[str, List[float]]:
        samples: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            samples.setdefault(outcome.scenario, []).extend(
                outcome.protocol_us.values()
            )
        return samples

    def as_dict(self) -> Dict[str, Any]:
        per_scenario: Dict[str, Any] = {}
        recovery = self.recovery_samples()
        protocol = self.protocol_samples()
        # every scenario that *attempted* a run gets a row, including one
        # whose every run crashed (zero recoveries, zero percentiles —
        # percentiles() on an empty sample set is {}, not an error)
        names = sorted(
            {o.scenario for o in self.outcomes}
            | {f.scenario for f in self.failures}
        )
        for scenario in names:
            samples = recovery.get(scenario, [])
            entry: Dict[str, Any] = {
                "runs": sum(o.scenario == scenario for o in self.outcomes),
                "failed_runs": sum(
                    f.scenario == scenario for f in self.failures
                ),
                "violations": sum(
                    len(o.violations) for o in self.outcomes if o.scenario == scenario
                ),
                "recoveries": len(samples),
            }
            pct = percentiles(samples, PERCENTILES_FIG8)
            if pct:
                entry["recovery_us_percentiles"] = {
                    f"p{int(q)}": round(v, 3) for q, v in pct.items()
                }
            proto_pct = percentiles(protocol.get(scenario, []), PERCENTILES_FIG8)
            if proto_pct:
                entry["protocol_us_percentiles"] = {
                    f"p{int(q)}": round(v, 3) for q, v in proto_pct.items()
                }
            per_scenario[scenario] = entry
        return {
            "campaign": {
                "runs": len(self.outcomes) + len(self.failures),
                "completed": len(self.outcomes),
                "failed_runs": len(self.failures),
                "infra_failures": len(self.infra_failures),
                "violations": self.total_violations,
                "ok": self.ok,
            },
            "scenarios": per_scenario,
            "violations": [
                {
                    "scenario": outcome.scenario,
                    "seed": outcome.seed,
                    **violation.as_dict(),
                }
                for outcome in self.outcomes
                for violation in outcome.violations
            ],
            "failures": [failure.as_dict() for failure in self.failures],
            "infra_failures": [
                failure.as_dict() for failure in self.infra_failures
            ],
        }


# --- parallel fan-out (repro.parallel, DESIGN.md §11) -------------------

#: Per-process reference-run cache: one clean run per (config, ref-seed)
#: pair, computed lazily inside whichever process needs it. Fork-spawned
#: workers inherit the parent's warm entries; the cache is deterministic
#: (a reference run is a pure function of its key), so sharing it across
#: campaigns in one process is safe.
_REFERENCE_CACHE: Dict[Tuple[str, int], RunSnapshot] = {}


def _cached_reference(spec: ScenarioSpec, ref_seed: int) -> RunSnapshot:
    config_key = repr(sorted(spec.runtime_overrides.items()))
    key = (config_key, ref_seed)
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = _reference_run(ref_seed, spec)
    return _REFERENCE_CACHE[key]


@dataclass
class _CampaignItem:
    """One (scenario, seed) work unit shipped to a pool worker."""

    scenario: str
    seed: int
    ref_seed: int
    detection: Optional[DetectionModel] = None
    sanitize: bool = False

    def __repr__(self) -> str:  # shows up in InfraFailure payload entries
        return f"chaos:{self.scenario}/seed={self.seed}"


def _campaign_work(
    item: _CampaignItem,
) -> Tuple[str, Union[ScenarioOutcome, RunFailure], Optional[Dict[str, Any]]]:
    """Pool work function: run one item, never raise.

    A run that raises becomes a ``("failure", RunFailure, report)``
    record instead of aborting the campaign — the per-run isolation the
    serial runner needs anyway and the pool requires (a raising work
    function reads as an infra failure, which this is not).
    """
    spec = SCENARIOS[item.scenario]
    sanitizer_report: Optional[Dict[str, Any]] = None
    try:
        reference = _cached_reference(spec, item.ref_seed)
        if item.sanitize:
            from repro.analysis.runtime import sanitized

            with sanitized() as suite:
                outcome = run_scenario(
                    spec, item.seed, detection=item.detection, reference=reference
                )
                sanitizer_report = suite.report()
        else:
            outcome = run_scenario(
                spec, item.seed, detection=item.detection, reference=reference
            )
        return ("outcome", outcome, sanitizer_report)
    except Exception as exc:
        failure = RunFailure(
            scenario=item.scenario,
            seed=item.seed,
            error=f"{type(exc).__name__}: {exc}",
        )
        return ("failure", failure, sanitizer_report)


def run_campaign(
    seeds: Sequence[int],
    scenario_names: Optional[Sequence[str]] = None,
    detection: Optional[DetectionModel] = None,
    progress: Optional[Callable[[ScenarioOutcome], None]] = None,
    jobs: Union[int, str] = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    sanitize: bool = False,
) -> CampaignReport:
    """Sweep ``seeds`` x the named scenarios (default: all).

    ``jobs`` fans the independent (scenario, seed) items across worker
    processes via :class:`repro.parallel.CampaignPool`; the report —
    and therefore the BENCH payload — is byte-identical for any job
    count because results are merged in submission order (the serial
    loop's order). A run that raises is recorded as a
    :class:`~repro.parallel.RunFailure`; a worker that crashes or hangs
    past ``timeout_s`` is recorded as an
    :class:`~repro.parallel.InfraFailure`. Either makes the report not
    ``ok`` without stopping the sweep.
    """
    names = list(scenario_names or SCENARIOS)
    ref_seed = seeds[0] if len(seeds) else 0
    items = [
        _CampaignItem(
            scenario=name,
            seed=seed,
            ref_seed=ref_seed,
            detection=detection,
            sanitize=sanitize,
        )
        for name in names
        for seed in seeds
    ]
    pool = CampaignPool(jobs=jobs, timeout_s=timeout_s, retries=retries)

    def on_result(result) -> None:
        if progress is not None and result.value[0] == "outcome":
            progress(result.value[1])

    pooled = pool.map(_campaign_work, items, progress=on_result)

    from repro.parallel import merge_sanitizer_reports

    report = CampaignReport(
        infra_failures=list(pooled.infra_failures),
        pool_stats=pooled.stats(),
        sanitizers=merge_sanitizer_reports(
            result.value[2] for result in pooled.results
        ),
    )
    for result in pooled.results:  # submission order == serial order
        kind, payload, _sanitizer = result.value
        if kind == "outcome":
            report.outcomes.append(payload)
        else:
            report.failures.append(payload)
    return report
