"""Overload scenarios: bursts, slow stores, flash crowds (§8).

Chaos scenarios crash components; overload scenarios *saturate* them. The
contract under overload is different from the contract under failure: the
chain may shed load, but every shed must be accounted in the drop ledger
(:func:`repro.chaos.invariants.check_sheds_accounted`), exactly-once and
per-flow ordering must hold for everything that does get through, and no
state may be lost or stranded.

Three named scenarios:

* ``overload-burst`` — a 2x-capacity arrival burst against bounded queues;
  drop-tail sheds must be accounted and the log must still drain.
* ``slow-store`` — a latency spike on the store links while the entry NF
  does a blocking read per packet; the client circuit breaker must trip
  and degrade reads to the stale cache (Table 1) instead of collapsing.
* ``flash-crowd`` — the flow population jumps 10x at 1.5x capacity; with
  the autoscaler on, goodput recovers via a real Figure-4 scale-out.

Every scenario runs with the autoscaler either off (graceful degradation)
or on (elastic recovery); :func:`measure_load_point` supports the
goodput-vs-offered-load knee sweep in ``tools/overload_campaign.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.campaign import EntryCounterNF, SinkCounterNF
from repro.chaos.invariants import (
    InvariantViolation,
    check_exactly_once,
    check_flow_ordering,
    check_log_drained,
    check_no_gaveups,
    check_ownership,
    check_sheds_accounted,
    egress_records,
)
from repro.core.autoscaler import AutoscaleController
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.nf_api import Output
from repro.core.vertex_manager import default_scaling_logic
from repro.parallel import (
    CampaignPool,
    InfraFailure,
    RunFailure,
    merge_sanitizer_reports,
)
from repro.simnet.engine import Simulator
from repro.simnet.monitor import percentiles
from repro.traffic.packet import FiveTuple, Packet

# Nominal capacity of the entry vertex: n_workers / proc_time_us.
ENTRY_PROC_US = 4.0
N_WORKERS = 4
CAPACITY_PPS_US = N_WORKERS / ENTRY_PROC_US  # packets per µs

DRAIN_US = 60_000.0


class ReadThroughEntryNF(EntryCounterNF):
    """Entry NF that additionally *blocks* on a shared-counter read per
    packet. ``total`` is WRITE_MOSTLY -> Table 1 NON_BLOCKING (no cache),
    so every read pays the store round trip — the knob that makes store
    latency, not CPU, the capacity limit for the slow-store scenario."""

    name = "entry"

    def process(self, packet, state):
        flow = packet.five_tuple.canonical().key()
        yield from state.read("total", None)
        yield from state.update("hits", flow, "incr", 1)
        yield from state.update("total", None, "incr", 1)
        return [Output(packet)]


class MidCounterNF(EntryCounterNF):
    """Second store-heavy stage for the store-hot scenario.

    Same per-flow + shared counters as the entry, under its own vertex —
    so the single store node hosts two comparably-loaded tenants and the
    store-side scale-out has a vertex it can split away."""

    name = "mid"


# --- load shapes --------------------------------------------------------


@dataclass
class LoadPhase:
    """One segment of the offered-load profile."""

    duration_us: float
    gap_us: float  # inter-packet gap (1/rate)
    n_flows: int


@dataclass
class StoreSpike:
    """A latency overlay on all store traffic for a window."""

    at_us: float
    extra_latency_us: float
    duration_us: float


@dataclass
class OverloadSpec:
    """A named overload pattern plus its runtime configuration."""

    name: str
    description: str
    phases: List[LoadPhase]
    read_through: bool = False
    store_spike: Optional[StoreSpike] = None
    runtime_overrides: Dict[str, Any] = field(default_factory=dict)
    # autoscaler tuning when enabled for a run
    scale_queue_threshold: int = 48
    scale_low_threshold: int = 4
    max_instances: int = 3
    # store-side elasticity (DESIGN.md §8): an extra store-heavy vertex in
    # the chain plus the rejection-hysteresis scale-out of the store tier
    store_heavy: bool = False
    store_scale: bool = False
    store_rejection_threshold: int = 8
    store_window_us: float = 200.0
    store_windows_over: int = 3
    max_stores: int = 2

    @property
    def horizon_us(self) -> float:
        return sum(phase.duration_us for phase in self.phases) + DRAIN_US


def _burst(_seed: int) -> List[LoadPhase]:
    cap_gap = 1.0 / CAPACITY_PPS_US
    return [
        LoadPhase(600.0, cap_gap / 0.7, 6),   # 0.7x warm-up
        LoadPhase(1_200.0, cap_gap / 2.0, 6),  # 2x burst
        LoadPhase(600.0, cap_gap / 0.7, 6),   # cool-down
    ]


def _slow_store(_seed: int) -> List[LoadPhase]:
    # Read-through capacity is ~n_workers / store RTT (~28µs): ~0.14 pkt/µs.
    # Offer ~0.7x of that throughout; the spike, not the load, is the fault.
    return [LoadPhase(3_000.0, 10.0, 6)]


def _store_hot(_seed: int) -> List[LoadPhase]:
    # With store_op_service_us=16 the store's capacity is 4 threads / 16µs
    # = 0.25 ops/µs; the plateau's three shared-counter updates per packet
    # offer ~0.3 ops/µs, so the store — not the NF CPUs (entry capacity is
    # 1 pkt/µs) — is the saturated resource and admission control sheds.
    return [
        LoadPhase(600.0, 14.0, 6),    # warm-up under store capacity
        LoadPhase(1_500.0, 10.0, 6),  # store-saturating plateau
        LoadPhase(600.0, 30.0, 6),    # cool-down: backlog drains
    ]


def _flash_crowd(_seed: int) -> List[LoadPhase]:
    cap_gap = 1.0 / CAPACITY_PPS_US
    return [
        LoadPhase(600.0, cap_gap / 0.7, 6),    # 0.7x over 6 flows
        LoadPhase(1_500.0, cap_gap / 1.5, 60),  # 1.5x over 60 flows
        LoadPhase(600.0, cap_gap / 0.7, 6),
    ]


SCENARIOS: Dict[str, OverloadSpec] = {
    spec.name: spec
    for spec in [
        OverloadSpec(
            name="overload-burst",
            description="2x-capacity arrival burst against bounded queues",
            phases=_burst(0),
        ),
        OverloadSpec(
            name="slow-store",
            description="store latency spike; breaker degrades reads to stale cache",
            phases=_slow_store(0),
            read_through=True,
            store_spike=StoreSpike(
                at_us=800.0, extra_latency_us=150.0, duration_us=1_200.0
            ),
            runtime_overrides=dict(
                breaker_enabled=True,
                breaker_failure_threshold=4,
                breaker_open_us=400.0,
                breaker_slow_call_us=60.0,
            ),
            # read-through capacity is latency-bound; backlog never reaches
            # the CPU-bound threshold, so keep the scale trigger low
            scale_queue_threshold=24,
        ),
        OverloadSpec(
            name="flash-crowd",
            description="flow population jumps 10x at 1.5x capacity",
            phases=_flash_crowd(0),
        ),
        OverloadSpec(
            name="store-hot",
            description=(
                "write-heavy chain saturates one store node; elasticity "
                "re-homes a vertex onto a fresh replica"
            ),
            phases=_store_hot(0),
            store_heavy=True,
            store_scale=True,
            runtime_overrides=dict(
                store_op_service_us=16.0,
                store_inflight_limit=12,
                store_overload_retry_us=40.0,
            ),
        ),
    ]
}

# package-level alias: distinguishes these from the fault-injection
# SCENARIOS in repro.chaos.campaign when both are imported together
OVERLOAD_SCENARIOS = SCENARIOS


# --- runner -------------------------------------------------------------


def build_overload_runtime(
    sim: Simulator, seed: int, spec: OverloadSpec, autoscale: bool
) -> ChainRuntime:
    chain = LogicalChain("overload")
    entry_nf = ReadThroughEntryNF if spec.read_through else EntryCounterNF
    scaling = (
        default_scaling_logic(
            queue_threshold=spec.scale_queue_threshold,
            low_threshold=spec.scale_low_threshold,
            settle_intervals=5,
        )
        if autoscale
        else None
    )
    chain.add_vertex("entry", entry_nf, entry=True, scaling_logic=scaling)
    proc_overrides = {"entry": ENTRY_PROC_US, "exit": 2.0}
    if spec.store_heavy:
        chain.add_vertex("mid", MidCounterNF)
        chain.add_vertex("exit", SinkCounterNF)
        chain.add_edge("entry", "mid")
        chain.add_edge("mid", "exit")
        proc_overrides["mid"] = 2.0
    else:
        chain.add_vertex("exit", SinkCounterNF)
        chain.add_edge("entry", "exit")
    params = dict(
        seed=seed,
        n_workers=N_WORKERS,
        proc_time_overrides=proc_overrides,
        instance_queue_capacity=64,
        overload_policy="drop",
        nic_queue_limit=128,
        store_inflight_limit=48,
    )
    params.update(spec.runtime_overrides)
    return ChainRuntime(sim, chain, params=RuntimeParams(**params))


def _inject_phases(sim: Simulator, runtime: ChainRuntime, spec: OverloadSpec):
    """Start the phased source; returns a mutable counter dict."""
    counters = {"injected": 0}

    def source():
        seq_per_flow: Dict[int, int] = {}
        for phase in spec.phases:
            end = sim.now + phase.duration_us
            index = 0
            while sim.now < end:
                flow = index % phase.n_flows
                index += 1
                seq_per_flow[flow] = seq_per_flow.get(flow, 0) + 1
                packet = Packet(
                    FiveTuple("10.0.0.1", "52.0.0.1", 1000 + flow, 80, 6),
                    payload=f"f{flow}-{seq_per_flow[flow]}",
                    # small frames: keep NIC serialization (~0.2µs @10G) off
                    # the critical path so capacity is CPU-bound and the
                    # queue-backlog scale trigger is the relevant signal
                    size_bytes=250,
                )
                runtime.inject(packet)
                counters["injected"] += 1
                yield sim.timeout(phase.gap_us)

    sim.process(source(), name="overload-source")
    return counters


@dataclass
class OverloadOutcome:
    """One (scenario, seed, autoscale) run with its measurements."""

    scenario: str
    seed: int
    autoscale: bool
    injected: int
    egressed: int
    sheds: Dict[str, int]
    goodput_ratio: float
    sojourn_p50_us: Optional[float]
    sojourn_p95_us: Optional[float]
    store_overload_rejections: int
    stale_reads: int
    breaker_opens: int
    autoscaler: Optional[Dict[str, Any]]
    violations: List[InvariantViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "autoscale": self.autoscale,
            "injected": self.injected,
            "egressed": self.egressed,
            "sheds": self.sheds,
            "goodput_ratio": round(self.goodput_ratio, 4),
            "sojourn_p50_us": self.sojourn_p50_us,
            "sojourn_p95_us": self.sojourn_p95_us,
            "store_overload_rejections": self.store_overload_rejections,
            "stale_reads": self.stale_reads,
            "breaker_opens": self.breaker_opens,
            "autoscaler": self.autoscaler,
            "violations": [v.as_dict() for v in self.violations],
        }


def check_overload_invariants(
    runtime: ChainRuntime, injected: int
) -> List[InvariantViolation]:
    """The overload battery: shed accounting plus the correctness core."""
    egress = egress_records(runtime)
    violations: List[InvariantViolation] = []
    violations += check_sheds_accounted(runtime, injected)
    violations += check_exactly_once(egress)
    violations += check_flow_ordering(egress)
    violations += check_ownership(runtime)
    violations += check_log_drained(runtime)
    violations += check_no_gaveups(runtime)
    return violations


def run_overload_scenario(
    spec: OverloadSpec,
    seed: int,
    autoscale: bool = False,
    collect_runtime: Optional[Callable] = None,
) -> OverloadOutcome:
    sim = Simulator()
    runtime = build_overload_runtime(sim, seed, spec, autoscale)
    controller = None
    if autoscale:
        runtime.start_vertex_managers(interval_us=50.0)
        controller = AutoscaleController(
            runtime,
            min_instances=1,
            max_instances=spec.max_instances,
            cooldown_us=1_500.0,
        )
        if spec.store_scale:
            controller.enable_store_elasticity(
                rejection_threshold=spec.store_rejection_threshold,
                window_us=spec.store_window_us,
                windows_over=spec.store_windows_over,
                max_stores=spec.max_stores,
            )
    if spec.store_spike is not None:
        for store in runtime.stores:
            runtime.network.degrade(
                dst=store.name,
                extra_latency_us=spec.store_spike.extra_latency_us,
                start=spec.store_spike.at_us,
                duration_us=spec.store_spike.duration_us,
            )
            runtime.network.degrade(
                src=store.name,
                extra_latency_us=spec.store_spike.extra_latency_us,
                start=spec.store_spike.at_us,
                duration_us=spec.store_spike.duration_us,
            )
    counters = _inject_phases(sim, runtime, spec)
    sim.run(until=spec.horizon_us)
    if collect_runtime is not None:
        collect_runtime(runtime)

    injected = counters["injected"]
    egressed = len({p for p, _ in egress_records(runtime) if p is not None})
    sheds = {
        cause: count
        for cause, count in sorted(runtime.network.drops.items())
        if count
    }
    sojourns = runtime.egress_recorder.values
    pcts = percentiles(sojourns, (50.0, 95.0)) if sojourns else {}
    breaker_opens = sum(
        i.client.breaker.stats.opens
        for i in runtime.instances.values()
        if i.client.breaker is not None
    )
    return OverloadOutcome(
        scenario=spec.name,
        seed=seed,
        autoscale=autoscale,
        injected=injected,
        egressed=egressed,
        sheds=sheds,
        goodput_ratio=(egressed / injected) if injected else 0.0,
        sojourn_p50_us=round(pcts[50.0], 3) if pcts else None,
        sojourn_p95_us=round(pcts[95.0], 3) if pcts else None,
        store_overload_rejections=sum(
            s.stats.overload_rejections for s in runtime.stores
        ),
        stale_reads=sum(
            i.client.stats.stale_reads for i in runtime.instances.values()
        ),
        breaker_opens=breaker_opens,
        autoscaler=controller.report() if controller is not None else None,
        violations=check_overload_invariants(runtime, injected),
    )


# --- knee sweep ---------------------------------------------------------


def measure_load_point(
    multiplier: float,
    autoscale: bool,
    seed: int = 0,
    duration_us: float = 1_500.0,
    n_flows: int = 24,
) -> Dict[str, Any]:
    """Goodput / latency / shed rate at one steady offered load.

    ``multiplier`` is offered load relative to a single entry instance's
    nominal capacity. The knee of goodput-vs-multiplier should sit near
    1.0 with the autoscaler off and move right when it is on.
    """
    gap = 1.0 / (CAPACITY_PPS_US * multiplier)
    spec = OverloadSpec(
        name=f"load-{multiplier}x",
        description="steady-load knee measurement point",
        phases=[LoadPhase(duration_us, gap, n_flows)],
    )
    outcome = run_overload_scenario(spec, seed, autoscale=autoscale)
    return {
        "multiplier": multiplier,
        "autoscale": autoscale,
        "seed": seed,
        "injected": outcome.injected,
        "egressed": outcome.egressed,
        "goodput_ratio": round(outcome.goodput_ratio, 4),
        "shed_rate": round(
            sum(outcome.sheds.values()) / outcome.injected, 4
        ) if outcome.injected else 0.0,
        "sojourn_p50_us": outcome.sojourn_p50_us,
        "sojourn_p95_us": outcome.sojourn_p95_us,
        "scale_outs": (
            outcome.autoscaler["scale_outs"] if outcome.autoscaler else 0
        ),
        "violations": [v.as_dict() for v in outcome.violations],
    }


# --- campaign driver (parallel fabric, DESIGN.md §11) --------------------

#: Offered-load multipliers for the goodput-knee sweep.
SWEEP_MULTIPLIERS: Tuple[float, ...] = (0.6, 1.0, 1.4, 2.0)


@dataclass
class _OverloadItem:
    """One work unit: either an invariant run or a knee sweep point."""

    kind: str  # "run" | "knee"
    seed: int
    autoscale: bool
    scenario: str = ""  # kind == "run"
    multiplier: float = 0.0  # kind == "knee"
    sanitize: bool = False

    def __repr__(self) -> str:
        if self.kind == "run":
            return (
                f"overload:{self.scenario}/auto="
                f"{str(self.autoscale).lower()}/seed={self.seed}"
            )
        return (
            f"overload:knee-{self.multiplier}x/auto="
            f"{str(self.autoscale).lower()}"
        )


def _overload_work(
    item: _OverloadItem,
) -> Tuple[str, Any, Optional[Dict[str, Any]]]:
    """Pool work function: run one item, never raise (per-run isolation)."""
    sanitizer_report: Optional[Dict[str, Any]] = None
    try:
        if item.sanitize:
            from repro.analysis.runtime import sanitized

            with sanitized() as suite:
                value = _overload_item_body(item)
                sanitizer_report = suite.report()
        else:
            value = _overload_item_body(item)
        return (item.kind, value, sanitizer_report)
    except Exception as exc:
        failure = RunFailure(
            scenario=(
                item.scenario if item.kind == "run" else f"knee-{item.multiplier}x"
            ),
            seed=item.seed,
            error=f"{type(exc).__name__}: {exc}",
            context={"autoscale": item.autoscale, "kind": item.kind},
        )
        return ("failure", failure, sanitizer_report)


def _overload_item_body(item: _OverloadItem):
    if item.kind == "run":
        spec = OVERLOAD_SCENARIOS[item.scenario]
        return run_overload_scenario(spec, item.seed, autoscale=item.autoscale)
    return measure_load_point(item.multiplier, item.autoscale, seed=item.seed)


@dataclass
class OverloadCampaignResult:
    """Everything ``tools/overload_campaign.py`` serializes."""

    outcomes: List[OverloadOutcome] = field(default_factory=list)
    knee: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    infra_failures: List[InfraFailure] = field(default_factory=list)
    pool_stats: Optional[Dict[str, Any]] = None
    sanitizers: Optional[Dict[str, Any]] = None

    @property
    def total_violations(self) -> int:
        return sum(len(o.violations) for o in self.outcomes) + sum(
            len(point["violations"]) for point in self.knee
        )

    @property
    def ok(self) -> bool:
        return (
            self.total_violations == 0
            and not self.failures
            and not self.infra_failures
        )


def run_overload_campaign(
    seeds: Sequence[int],
    scenario_names: Optional[Sequence[str]] = None,
    sweep: bool = True,
    sweep_multipliers: Sequence[float] = SWEEP_MULTIPLIERS,
    progress: Optional[Callable[[str, Any], None]] = None,
    jobs: Union[int, str] = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    sanitize: bool = False,
) -> OverloadCampaignResult:
    """Seeds x scenarios x autoscale off/on, plus the optional knee sweep.

    Work items fan across :class:`repro.parallel.CampaignPool` workers;
    the merged result lists are in the serial loop's order for any job
    count. ``progress`` (if given) is called as ``progress(kind, value)``
    with kind ``"run"`` or ``"knee"`` in completion order.
    """
    names = list(scenario_names or sorted(OVERLOAD_SCENARIOS))
    items: List[_OverloadItem] = [
        _OverloadItem(
            kind="run",
            scenario=name,
            seed=seed,
            autoscale=autoscale,
            sanitize=sanitize,
        )
        for name in names
        for autoscale in (False, True)
        for seed in seeds
    ]
    if sweep:
        items += [
            _OverloadItem(
                kind="knee",
                seed=0,
                autoscale=autoscale,
                multiplier=multiplier,
                sanitize=sanitize,
            )
            for multiplier in sweep_multipliers
            for autoscale in (False, True)
        ]

    pool = CampaignPool(jobs=jobs, timeout_s=timeout_s, retries=retries)

    def on_result(result) -> None:
        if progress is not None and result.value[0] != "failure":
            progress(result.value[0], result.value[1])

    pooled = pool.map(_overload_work, items, progress=on_result)
    result = OverloadCampaignResult(
        infra_failures=list(pooled.infra_failures),
        pool_stats=pooled.stats(),
        sanitizers=merge_sanitizer_reports(r.value[2] for r in pooled.results),
    )
    for work in pooled.results:  # submission order == serial order
        kind, value, _sanitizer = work.value
        if kind == "run":
            result.outcomes.append(value)
        elif kind == "knee":
            result.knee.append(value)
        else:
            result.failures.append(value)
    return result


def _mean(values: Sequence[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    return round(sum(present) / len(present), 4) if present else None


def aggregate_overload_payload(result: OverloadCampaignResult) -> Dict[str, Any]:
    """The BENCH_overload payload body (everything but ``meta``).

    Deterministic given the result lists: groups are emitted key-sorted
    and every mean/rate guards the empty and all-failed cases (a group
    whose every run crashed contributes ``runs: 0`` and null means, not
    a ZeroDivisionError).
    """
    per_group: Dict[str, List[OverloadOutcome]] = {}
    for outcome in result.outcomes:
        key = f"{outcome.scenario}/auto={str(outcome.autoscale).lower()}"
        per_group.setdefault(key, []).append(outcome)
    failed_groups: Dict[str, int] = {}
    for failure in result.failures:
        if failure.context.get("kind") == "run":
            key = (
                f"{failure.scenario}/auto="
                f"{str(failure.context.get('autoscale')).lower()}"
            )
            failed_groups[key] = failed_groups.get(key, 0) + 1
    scenarios_payload: Dict[str, Any] = {}
    for key in sorted(set(per_group) | set(failed_groups)):
        group = per_group.get(key, [])
        entry: Dict[str, Any] = {
            "scenario": group[0].scenario if group else key.split("/", 1)[0],
            "autoscale": group[0].autoscale if group else key.endswith("true"),
            "runs": len(group),
            "failed_runs": failed_groups.get(key, 0),
            "violations": sum(len(o.violations) for o in group),
            "goodput_ratio_mean": _mean([o.goodput_ratio for o in group]),
            "shed_rate_mean": _mean(
                [
                    (sum(o.sheds.values()) / o.injected) if o.injected else 0.0
                    for o in group
                ]
            ),
            "sojourn_p50_us_mean": _mean([o.sojourn_p50_us for o in group]),
            "sojourn_p95_us_mean": _mean([o.sojourn_p95_us for o in group]),
            "stale_reads_total": sum(o.stale_reads for o in group),
            "breaker_opens_total": sum(o.breaker_opens for o in group),
            "store_overload_rejections_total": sum(
                o.store_overload_rejections for o in group
            ),
            "scale_outs_total": sum(
                o.autoscaler["scale_outs"] for o in group if o.autoscaler
            ),
            "scale_ins_total": sum(
                o.autoscaler["scale_ins"] for o in group if o.autoscaler
            ),
            "store_scale_outs_total": sum(
                o.autoscaler["store_scale_outs"] for o in group if o.autoscaler
            ),
        }
        scenarios_payload[key] = entry
    return {
        "campaign": {
            "runs": len(result.outcomes) + len(result.failures),
            "completed": len(result.outcomes),
            "failed_runs": len(result.failures),
            "infra_failures": len(result.infra_failures),
            "violations": result.total_violations,
            "ok": result.ok,
        },
        "scenarios": scenarios_payload,
        "knee": result.knee,
        "violations": [
            {
                "scenario": o.scenario,
                "seed": o.seed,
                "autoscale": o.autoscale,
                **v.as_dict(),
            }
            for o in result.outcomes
            for v in o.violations
        ],
        "failures": [failure.as_dict() for failure in result.failures],
        "infra_failures": [
            failure.as_dict() for failure in result.infra_failures
        ],
    }
