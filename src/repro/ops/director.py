"""The maintenance director: planned operations with zero-loss gates.

Day-2 operations are the dual of chaos: the operator *chooses* to disturb
the chain, so there is no excuse for losing a packet or reordering a flow.
:class:`MaintenanceDirector` executes four operation families against a
live :class:`~repro.core.chain_runtime.ChainRuntime`, each as a
simulation-process generator whose every step is gated on an explicit
drain/quiesce confirmation before the next begins, with
abort-and-rollback when a gate times out:

* **rolling NF upgrade** (:meth:`~MaintenanceDirector.rolling_upgrade`) —
  per instance: spawn the replacement, hand every owned flow over via the
  Figure-4 protocol, drain queues/NIC/flush-ACKs, take the old instance's
  hash slot with ``splitter.replace_instance`` (same slot, so the hash
  partition never flips) and retire it. A drain that exhausts its budget
  rolls the flows back and retires the *replacement* instead.
* **store-node replacement** (:meth:`~MaintenanceDirector.replace_store`)
  — snapshot + routing swap in one sim instant, the old node enters
  lame-duck (commits but never ACKs, closing the ack-then-crash lost
  write window), then a WAL catch-up loop watches every update-log
  identity the muted node still commits and gates teardown on each one
  reappearing on the replacement via client retransmission (copying them
  across instead would race those retransmits and regress keys the
  replacement has already moved past).
* **topology edit** (:meth:`~MaintenanceDirector.insert_vertex` /
  :meth:`~MaintenanceDirector.remove_vertex`) — splice an NF into or out
  of the chain mid-traffic. Insertion is order-safe bare (the new path is
  strictly longer); removal holds the runtime's vertex-input pause gate
  while the spliced-out vertex drains and disowns its per-flow state,
  because a bypass packet could otherwise overtake an in-flight one.
* **config hot-reload** (:meth:`~MaintenanceDirector.hot_reload`) — a
  registry of hot-applicable parameters with per-key appliers; old values
  are snapshotted first, and any failure rolls back everything already
  applied.

Every operation runs with the :class:`GoodputMonitor` armed, so the
``no-downtime`` invariant checker can prove the chain kept externalizing
packets through the whole procedure.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.handover import move_flows
from repro.store.datastore import DatastoreInstance
from repro.util import stable_hash


class OperationAborted(RuntimeError):
    """A gate failed and the operation was rolled back."""


@dataclass
class OperationStep:
    """One gated step inside a planned operation."""

    name: str
    started_at: float
    finished_at: float = 0.0
    ok: bool = True
    note: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class OperationRecord:
    """One planned operation, step by step."""

    kind: str  # rolling_upgrade | store_replace | topology_insert | ...
    target: str
    started_at: float
    finished_at: float = 0.0
    status: str = "running"  # running | completed | aborted
    steps: List[OperationStep] = field(default_factory=list)
    note: str = ""

    @property
    def duration_us(self) -> float:
        return self.finished_at - self.started_at

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "status": self.status,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "note": self.note,
            "steps": [step.as_dict() for step in self.steps],
        }


class GoodputMonitor:
    """Samples egress counts per window while an operation is running.

    Windows are only recorded while armed, so a quiet chain before/after
    maintenance never reads as downtime; the director arms the monitor for
    exactly the span of each operation.
    """

    def __init__(self, runtime, window_us: float = 100.0):
        self.runtime = runtime
        self.sim = runtime.sim
        self.window_us = window_us
        self.windows: List[Tuple[float, int]] = []
        self._armed = 0
        self._touched = False  # armed at any point inside the current window
        self._proc = self.sim.process(self._loop(), name="goodput-monitor")

    def arm(self) -> None:
        self._armed += 1
        self._touched = True

    def disarm(self) -> None:
        self._armed = max(0, self._armed - 1)

    def _egressed(self) -> int:
        return len(self.runtime.egress._items)

    def _loop(self) -> Generator:
        while True:
            start = self.sim.now
            base = self._egressed()
            armed_at_start = self._armed > 0
            self._touched = armed_at_start
            yield self.sim.timeout(self.window_us)
            if self._touched or self._armed > 0:
                # any window overlapping the armed span counts — including
                # an operation that starts AND finishes inside one window
                self.windows.append((start, self._egressed() - base))


class MaintenanceDirector:
    """Executes planned operations; see module docstring."""

    def __init__(
        self,
        runtime,
        drain_poll_us: float = 20.0,
        drain_budget_us: float = 30_000.0,
        catchup_poll_us: float = 50.0,
        monitor_window_us: float = 100.0,
        monitor: Optional[GoodputMonitor] = None,
    ):
        self.runtime = runtime
        self.sim = runtime.sim
        self.drain_poll_us = drain_poll_us
        self.drain_budget_us = drain_budget_us
        self.catchup_poll_us = catchup_poll_us
        self.monitor = monitor or GoodputMonitor(runtime, window_us=monitor_window_us)
        self.records: List[OperationRecord] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------

    def _begin(self, kind: str, target: str) -> OperationRecord:
        record = OperationRecord(kind=kind, target=target, started_at=self.sim.now)
        self.records.append(record)
        self.monitor.arm()
        return record

    def _finish(self, record: OperationRecord, status: str, note: str = "") -> None:
        record.status = status
        record.finished_at = self.sim.now
        if note:
            record.note = note
        self.monitor.disarm()

    def _step(self, record: OperationRecord, name: str) -> OperationStep:
        step = OperationStep(name=name, started_at=self.sim.now)
        record.steps.append(step)
        return step

    @staticmethod
    def _close(step: OperationStep, sim, ok: bool = True, note: str = "") -> None:
        step.finished_at = sim.now
        step.ok = ok
        if note:
            step.note = note

    def completed(self) -> List[OperationRecord]:
        return [r for r in self.records if r.status == "completed"]

    def aborted(self) -> List[OperationRecord]:
        return [r for r in self.records if r.status == "aborted"]

    def report(self) -> Dict[str, Any]:
        return {
            "operations": [record.as_dict() for record in self.records],
            "completed": len(self.completed()),
            "aborted": len(self.aborted()),
            "goodput_windows": len(self.monitor.windows),
        }

    # ------------------------------------------------------------------
    # shared drain gates
    # ------------------------------------------------------------------

    def _owned_scope_keys(self, vertex_name: str, instance) -> Dict[Tuple, str]:
        """Scope keys currently owned by ``instance`` (per-flow only)."""
        splitter = self.runtime.splitter(vertex_name)
        keys: Dict[Tuple, str] = {}
        for _sk, (_obj, flow_key) in instance.client.owned_items().items():
            if flow_key is None:
                continue
            scope_key = self.runtime._project(flow_key, splitter.partition_fields)
            if scope_key is not None:
                keys[scope_key] = instance.instance_id
        return keys

    def _drain_instance(self, instance, deadline: float) -> Generator:
        """Gate: queues empty, NIC ring empty, flush ACKs fenced.

        Returns True if the gate passed before ``deadline``. The first
        wait is one hop latency: packets already committed to the wire
        (``sim.schedule(hop_link_us, nic.send, ...)``) are invisible to
        the queue probes until they land.
        """
        yield self.sim.timeout(self.runtime.params.hop_link_us)
        while True:
            nic = self.runtime.nics.get(instance.instance_id)
            if instance.queue_depth == 0 and (nic is None or len(nic._queue) == 0):
                break
            if self.sim.now >= deadline:
                return False
            yield self.sim.timeout(self.drain_poll_us)
        yield instance.client.ack_barrier()
        return True

    # ------------------------------------------------------------------
    # operation: rolling NF upgrade
    # ------------------------------------------------------------------

    def rolling_upgrade(
        self, vertex_name: str, nf_factory=None
    ) -> Generator:
        """Replace every instance of ``vertex_name`` one at a time.

        With ``nf_factory``, the vertex is re-pointed at the new factory
        first (a versioned upgrade: replacements and any later failovers
        run the new code); without it the upgrade is behavior-identical
        (the campaign's case, so invariants can compare against an
        undisturbed reference run). Simulation-process generator; returns
        the :class:`OperationRecord`.
        """
        record = self._begin("rolling_upgrade", vertex_name)
        vertex = self.runtime.chain.vertices[vertex_name]
        old_factory = vertex.nf_factory
        if nf_factory is not None:
            vertex.nf_factory = nf_factory
        try:
            for old_id in list(self.runtime.vertex_instances[vertex_name]):
                yield from self._upgrade_one(record, vertex_name, old_id)
        except OperationAborted as exc:
            if nf_factory is not None:
                vertex.nf_factory = old_factory
            self._finish(record, "aborted", note=str(exc))
            return record
        self._finish(record, "completed")
        return record

    def _upgrade_one(
        self, record: OperationRecord, vertex_name: str, old_id: str
    ) -> Generator:
        runtime = self.runtime
        splitter = runtime.splitter(vertex_name)
        old = runtime.instances[old_id]
        self._seq += 1
        new = runtime.add_instance(vertex_name, suffix=f"u{self._seq}")
        new_id = new.instance_id

        step = self._step(record, f"handover:{old_id}->{new_id}")
        deadline = self.sim.now + self.drain_budget_us
        moved = 0
        while True:
            # 1. move every owned flow to the replacement (Figure 4:
            #    ownership + in-order buffering, no loss)
            keys = self._owned_scope_keys(vertex_name, old)
            if keys:
                result = yield from move_flows(
                    runtime, vertex_name, list(keys), new_id, current_of=keys
                )
                moved += result.n_keys
            # 2. drain gate: nothing queued, nothing on the ring, all
            #    flushes ACK'd
            drained = yield from self._drain_instance(old, deadline)
            if not drained:
                self._close(step, self.sim, ok=False, note="drain budget exceeded")
                yield from self._rollback_upgrade(record, vertex_name, old_id, new_id)
                raise OperationAborted(
                    f"{old_id}: drain budget exceeded; flows restored"
                )
            # 3. re-check: a flow's first packet can claim ownership on the
            #    old instance mid-drain — it must be moved too
            if not self._owned_scope_keys(vertex_name, old):
                break
            if self.sim.now >= deadline:
                self._close(step, self.sim, ok=False, note="ownership never quiesced")
                yield from self._rollback_upgrade(record, vertex_name, old_id, new_id)
                raise OperationAborted(
                    f"{old_id}: ownership never quiesced; flows restored"
                )
        self._close(step, self.sim, note=f"{moved} keys moved")

        step = self._step(record, f"cutover:{old_id}->{new_id}")
        # same slot in hash_members, so the hash partition is unchanged —
        # this is the one sanctioned way a membership list changes outside
        # failover (chclint CHC007 guards the discipline)
        splitter.replace_instance(old_id, new_id)
        members = splitter.hash_members
        for scope_key, holder in list(splitter.overrides.items()):
            if (
                holder == new_id
                and members
                and members[stable_hash(scope_key) % len(members)] == new_id
            ):
                del splitter.overrides[scope_key]  # hash home == holder now
        runtime.retire_instance(old_id)
        yield from runtime.notify_split_changed(vertex_name)
        self._close(step, self.sim)

    def _rollback_upgrade(
        self, record: OperationRecord, vertex_name: str, old_id: str, new_id: str
    ) -> Generator:
        """Reverse a half-done instance upgrade: flows back, retire the new."""
        runtime = self.runtime
        step = self._step(record, f"rollback:{new_id}->{old_id}")
        new = runtime.instances.get(new_id)
        if new is not None:
            keys = self._owned_scope_keys(vertex_name, new)
            if keys:
                yield from move_flows(
                    runtime, vertex_name, list(keys), old_id, current_of=keys
                )
            splitter = runtime.splitter(vertex_name)
            for scope_key, holder in list(splitter.overrides.items()):
                if holder == old_id:
                    home = splitter.hash_members[
                        stable_hash(scope_key) % len(splitter.hash_members)
                    ]
                    if home == old_id:
                        del splitter.overrides[scope_key]
            yield from self._drain_instance(new, self.sim.now + self.drain_budget_us)
            runtime.retire_instance(new_id)
            yield from runtime.notify_split_changed(vertex_name)
        self._close(step, self.sim)

    # ------------------------------------------------------------------
    # operation: store-node replacement under traffic
    # ------------------------------------------------------------------

    def replace_store(self, store_name: str) -> Generator:
        """Live-replace one datastore node with zero lost updates."""
        record = self._begin("store_replace", store_name)
        runtime = self.runtime
        old = runtime.store.instance_named(store_name)
        self._seq += 1
        new_name = f"{store_name}m{self._seq}"

        # --- snapshot + routing swap: one sim instant, no yields --------
        step = self._step(record, f"swap:{store_name}->{new_name}")
        new = DatastoreInstance(
            self.sim,
            runtime.network,
            new_name,
            n_threads=old.n_threads,
            op_service_us=old.op_service_us,
            registry=old.registry,
            root_endpoint=old.root_endpoint,
            checkpoint_interval_us=old.checkpoint_interval_us,
            dedup_enabled=old.dedup_enabled,
            seed=runtime.params.seed + self._seq,
            inflight_limit=old.inflight_limit,
            overload_retry_after_us=old.overload_retry_after_us,
        )
        new._data = copy.deepcopy(old._data)
        new._owners = dict(old._owners)
        new._ts = copy.deepcopy(old._ts)
        new._clones = dict(old._clones)
        covered: Set[Tuple[str, int, int]] = set()
        self._seed_update_log(old, new, covered)
        runtime.store.replace_instance(store_name, new)
        runtime.stores = [new if s.name == store_name else s for s in runtime.stores]
        for root in runtime.roots:
            if root.store_endpoint == store_name:
                root.store_endpoint = new_name
            root.store_endpoints_for_prune = [
                new_name if s == store_name else s
                for s in root.store_endpoints_for_prune
            ]
            if root.alive:
                # commit-signal parity is unreliable across the swap: the
                # old node's post-snapshot signals are muted below
                root.note_store_recovered()
        # From here the old node commits but never ACKs: un-ACK'd clients
        # retransmit, re-resolve through the cluster map, and land on the
        # replacement — where the seeded dedup log emulates anything the
        # snapshot already covers, and anything newer applies fresh. This
        # closes the window where an op the old node committed after the
        # snapshot would otherwise be lost.
        old.enter_lame_duck()
        self._close(step, self.sim, note=f"{len(covered)} log identities seeded")

        # --- WAL catch-up: watch what still lands on the old node -------
        # Post-mute commits must NOT be copied across: their retransmits
        # race the copy, and a copied old-node snapshot can clobber a key
        # the replacement has already moved past (lost update). Instead we
        # only *observe* their identities, then gate on each one landing
        # in the replacement's log via client retransmission.
        step = self._step(record, "catchup")
        deadline = self.sim.now + self.drain_budget_us
        quiet_rounds = 0
        pending: Set[Tuple[str, int, int]] = set()
        while old.alive and quiet_rounds < 2:
            fresh = self._note_uncovered(old, covered, pending)
            quiet_rounds = quiet_rounds + 1 if (
                fresh == 0 and old._inflight() == 0
            ) else 0
            if quiet_rounds >= 2:
                break
            if self.sim.now >= deadline:
                # Never roll forward on an unconfirmed gate: the swap is
                # already safe (lame-duck forces retransmission of anything
                # uncovered), but record the failed confirmation.
                self._close(step, self.sim, ok=False, note="catch-up never quiesced")
                self._finish(record, "aborted", note="catch-up never quiesced")
                return record
            yield self.sim.timeout(self.catchup_poll_us)
        crashed = not old.alive
        while not all(
            seq in new._update_log.get((key, clock), {})
            for (key, clock, seq) in pending
        ):
            if self.sim.now >= deadline:
                self._close(
                    step, self.sim, ok=False, note="pending flushes never reconciled"
                )
                self._finish(record, "aborted", note="pending flushes never reconciled")
                return record
            yield self.sim.timeout(self.catchup_poll_us)
        note = f"{len(pending)} pending flushes reconciled via retransmission"
        if crashed:
            # the node died mid-replacement (chaos overlay): everything it
            # committed-but-never-ACK'd is retransmitted and applied fresh
            # on the replacement all the same — still zero loss
            note += "; old node crashed mid-catch-up"
        self._close(step, self.sim, note=note)

        step = self._step(record, f"teardown:{store_name}")
        if old.alive:
            old.fail()
        self._close(step, self.sim)
        self._finish(record, "completed")
        return record

    @staticmethod
    def _seed_update_log(
        old: DatastoreInstance,
        new: DatastoreInstance,
        covered: Set[Tuple[str, int, int]],
    ) -> int:
        """Seed the replacement's dedup log with the old node's entries.

        Runs in the same sim instant as the ``_data``/``_ts``/``_owners``
        deep-copy, so every seeded identity's effect is already in the
        replacement's state: the seed makes the replacement *emulate* a
        retransmission of that identity (Figure 5b) instead of applying
        it a second time. The log stores committed return values, not the
        original op and args, which is why emulation — not re-execution —
        is the only safe answer for a duplicate.
        """
        seeded = 0
        for (key, clock), seqs in old._update_log.items():
            for seq, value in seqs.items():
                identity = (key, clock, seq)
                if identity in covered:
                    continue
                covered.add(identity)
                new._log_committed(key, clock, seq, value)
                seeded += 1
        return seeded

    @staticmethod
    def _note_uncovered(
        old: DatastoreInstance,
        covered: Set[Tuple[str, int, int]],
        pending: Set[Tuple[str, int, int]],
    ) -> int:
        """Record post-snapshot identities the muted node committed.

        These are never copied (see catch-up comment in
        :meth:`replace_store`) — their un-ACK'd clients retransmit them to
        the replacement, where they apply fresh. Returns how many were new
        this round so the quiesce gate can detect the old node going idle.
        """
        fresh = 0
        for (key, clock), seqs in list(old._update_log.items()):
            for seq in list(seqs):
                identity = (key, clock, seq)
                if identity in covered or identity in pending:
                    continue
                pending.add(identity)
                fresh += 1
        return fresh

    # ------------------------------------------------------------------
    # operation: topology edits
    # ------------------------------------------------------------------

    def insert_vertex(
        self,
        name: str,
        nf_factory,
        src: str,
        dst: str,
        parallelism: int = 1,
    ) -> Generator:
        """Splice a new NF onto the ``src -> dst`` edge mid-traffic.

        No pause gate is needed: the post-splice path is strictly longer
        than the pre-splice one, so a packet routed the old way can never
        be overtaken by a same-flow packet routed the new way.
        """
        record = self._begin("topology_insert", name)
        step = self._step(record, f"splice:{src}->{name}->{dst}")
        try:
            instances = self.runtime.splice_insert_vertex(
                name, nf_factory, src, dst, parallelism=parallelism
            )
        except (KeyError, ValueError) as exc:
            self._close(step, self.sim, ok=False, note=repr(exc))
            self._finish(record, "aborted", note=repr(exc))
            return record
        self._close(step, self.sim, note=f"{len(instances)} instances")
        # settle gate: the first packets through the new NF cold-miss its
        # state; one wire hop is enough for routing to be observably live
        step = self._step(record, "settle")
        yield self.sim.timeout(self.runtime.params.hop_link_us)
        self._close(step, self.sim)
        self._finish(record, "completed")
        return record

    def remove_vertex(self, name: str) -> Generator:
        """Splice a mid-chain NF out, preserving per-flow order.

        Removal *shortens* the path, so a bypass packet could overtake an
        in-flight old-path packet; the pause gate holds all upstream
        emission into the vertex while it drains, disowns its state, and
        is spliced out — parked workers then re-resolve to the successor.
        """
        record = self._begin("topology_remove", name)
        runtime = self.runtime
        step = self._step(record, "pause")
        try:
            runtime.pause_vertex_input(name)
        except (KeyError, ValueError) as exc:
            self._close(step, self.sim, ok=False, note=repr(exc))
            self._finish(record, "aborted", note=repr(exc))
            return record
        self._close(step, self.sim)

        try:
            step = self._step(record, "drain")
            deadline = self.sim.now + self.drain_budget_us
            for instance in runtime.instances_of(name):
                drained = yield from self._drain_instance(instance, deadline)
                if not drained:
                    raise OperationAborted(
                        f"{instance.instance_id}: drain budget exceeded"
                    )
            # the drained instances' last emissions are on the wire to the
            # downstream ring; let them land before the cutover
            yield self.sim.timeout(runtime.params.hop_link_us)
            self._close(step, self.sim)

            step = self._step(record, "disown")
            released = 0
            for instance in runtime.instances_of(name):
                for _sk, (obj_name, flow_key) in sorted(
                    instance.client.owned_items().items()
                ):
                    yield from instance.client.disassociate(obj_name, flow_key)
                    released += 1
            self._close(step, self.sim, note=f"{released} keys released")
        except OperationAborted as exc:
            self._close(step, self.sim, ok=False, note=str(exc))
            runtime.resume_vertex_input(name)  # rollback: vertex stays
            self._finish(record, "aborted", note=str(exc))
            return record

        step = self._step(record, "splice")
        runtime.splice_remove_vertex(name)
        self._close(step, self.sim)
        step = self._step(record, "resume")
        # after the splice, so parked workers re-resolve to the successor
        runtime.resume_vertex_input(name)
        self._close(step, self.sim)
        self._finish(record, "completed")
        return record

    # ------------------------------------------------------------------
    # operation: config hot-reload
    # ------------------------------------------------------------------

    def _reload_appliers(self) -> Dict[str, Any]:
        """Hot-reloadable parameter registry: key -> (getter, applier).

        Every applier writes the live objects *and* the params dataclass,
        so instances added after the reload inherit the new value too.
        """
        runtime = self.runtime

        def _set_overload_policy(value):
            runtime.params.overload_policy = value
            for instance in runtime.instances.values():
                instance.overload_policy = value

        def _set_nic_queue_limit(value):
            runtime.params.nic_queue_limit = value
            for nic in runtime.nics.values():
                nic.queue_limit = value

        def _set_retransmit_timeout(value):
            runtime.params.retransmit_timeout_us = value
            for instance in runtime.instances.values():
                instance.client.retransmit_timeout_us = value

        def _set_proc_time(value):
            runtime.params.proc_time_us = value
            for instance in runtime.instances.values():
                instance.proc_time_us = value

        def _set_checkpoint_interval(value):
            runtime.params.checkpoint_interval_us = value
            for store in runtime.store.instances:
                if store.checkpoint_interval_us:
                    # the running loop reads the attribute each cycle; a
                    # store built without a loop cannot grow one hot
                    store.checkpoint_interval_us = value

        return {
            "overload_policy": (
                lambda: runtime.params.overload_policy, _set_overload_policy
            ),
            "nic_queue_limit": (
                lambda: runtime.params.nic_queue_limit, _set_nic_queue_limit
            ),
            "retransmit_timeout_us": (
                lambda: runtime.params.retransmit_timeout_us, _set_retransmit_timeout
            ),
            "proc_time_us": (lambda: runtime.params.proc_time_us, _set_proc_time),
            "checkpoint_interval_us": (
                lambda: runtime.params.checkpoint_interval_us,
                _set_checkpoint_interval,
            ),
        }

    def hot_reload(self, changes: Dict[str, Any]) -> Generator:
        """Apply config ``changes`` without restarting anything.

        All-or-nothing: old values are snapshotted first; an unknown key
        (or an applier raising) rolls back every change already applied.
        """
        record = self._begin("hot_reload", ",".join(sorted(changes)))
        appliers = self._reload_appliers()
        step = self._step(record, "validate")
        unknown = sorted(set(changes) - set(appliers))
        if unknown:
            self._close(step, self.sim, ok=False, note=f"not hot-reloadable: {unknown}")
            self._finish(record, "aborted", note=f"not hot-reloadable: {unknown}")
            return record
        self._close(step, self.sim)

        step = self._step(record, "apply")
        applied: List[Tuple[str, Any]] = []
        try:
            for key in sorted(changes):
                getter, applier = appliers[key]
                applied.append((key, getter()))
                applier(changes[key])
        except Exception as exc:  # roll back what already landed
            for key, old_value in reversed(applied):
                appliers[key][1](old_value)
            self._close(step, self.sim, ok=False, note=repr(exc))
            self._finish(record, "aborted", note=repr(exc))
            return record
        self._close(step, self.sim, note=f"{len(applied)} params")

        # settle gate: one poll interval under the new config, then verify
        # every applier reads back the requested value
        step = self._step(record, "verify")
        yield self.sim.timeout(self.drain_poll_us)
        stale = [key for key in changes if appliers[key][0]() != changes[key]]
        if stale:
            for key, old_value in reversed(applied):
                appliers[key][1](old_value)
            self._close(step, self.sim, ok=False, note=f"did not stick: {stale}")
            self._finish(record, "aborted", note=f"did not stick: {stale}")
            return record
        self._close(step, self.sim)
        self._finish(record, "completed")
        return record
