"""Planned day-2 operations against a live chain (maintenance director).

Where :mod:`repro.chaos` asks "does the chain survive what we did *to*
it?", this package asks "does the chain survive what we do *with* it":
rolling NF upgrades, store-node replacement, topology edits and config
hot-reloads, each executed under traffic with drain/quiesce gates between
steps and abort-with-rollback on timeout — all while the chaos invariant
battery (plus the operations-specific convergence and no-downtime
checkers) must hold.
"""

from repro.ops.director import (  # noqa: F401
    GoodputMonitor,
    MaintenanceDirector,
    OperationAborted,
    OperationRecord,
    OperationStep,
)
