"""Named planned-operation scenarios and the N-seed ops campaign driver.

The chaos campaign's mirror image: instead of a fault schedule, every
scenario runs a *maintenance plan* — a
:class:`~repro.ops.director.MaintenanceDirector` operation sequence —
against live traffic, with a :class:`~repro.chaos.director.ChaosDirector`
and :class:`~repro.core.supervisor.Supervisor` attached so unplanned
crashes can overlay planned work (and so orderly retirements exercise the
supervisor's retired-guards). Each run is checked against a clean
reference with the full chaos invariant battery *plus* the two
operations-specific checkers:
:func:`~repro.chaos.invariants.check_operation_converged` (no
transitional structure survives the run) and
:func:`~repro.chaos.invariants.check_no_downtime` (goodput never stalled
while an operation was executing).

The workload is a three-vertex chain — ``entry`` (per-flow + shared
state, two instances) -> ``scrub`` (per-flow state) -> ``exit`` (shared
state) — over two store nodes, long enough that every operation starts,
finishes, and settles while packets are still flowing. Topology-edit
scenarios change which vertices exist, so their state comparison filters
the spliced vertex's keys (the reference run never ran the edit);
everything else — egress identities, per-flow order, ownership — must
still match exactly.

``tools/ops_campaign.py`` serializes :class:`OpsCampaignReport` to
``BENCH_operations.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple, Union

from repro.chaos.campaign import EntryCounterNF, SinkCounterNF
from repro.chaos.director import ChaosDirector
from repro.chaos.invariants import (
    InvariantViolation,
    RunSnapshot,
    check_egress_complete,
    check_exactly_once,
    check_flow_ordering,
    check_log_drained,
    check_loss_free_state,
    check_no_downtime,
    check_no_gaveups,
    check_operation_converged,
    check_ownership,
    check_recoveries_succeeded,
    snapshot_run,
)
from repro.chaos.schedule import CrashNF, Schedule
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.nf_api import NetworkFunction, Output
from repro.ops.director import MaintenanceDirector
from repro.parallel import CampaignPool, InfraFailure, RunFailure
from repro.simnet.engine import Simulator
from repro.simnet.monitor import PERCENTILES_FIG8, RecoveryTimeline, percentiles
from repro.store.keys import parse_storage_key
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import FiveTuple, Packet

# --- workload -----------------------------------------------------------

N_PACKETS = 240
N_FLOWS = 6
GAP_US = 3.0
OP_AT_US = 90.0
MONITOR_WINDOW_US = 50.0
HORIZON_US = 400_000.0


class ScrubNF(NetworkFunction):
    """Mid-chain per-flow marker counter: the vertex topology edits
    remove, so its per-flow ownership must be cleanly disowned."""

    name = "scrub"

    def state_specs(self):
        return {
            "flags": StateObjectSpec(
                "flags", Scope.PER_FLOW, AccessPattern.READ_WRITE_OFTEN, initial_value=0
            ),
        }

    def process(self, packet, state):
        flow = packet.five_tuple.canonical().key()
        yield from state.update("flags", flow, "incr", 1)
        return [Output(packet)]


class PatchNF(NetworkFunction):
    """The NF the insert scenario splices in mid-traffic (shared counter
    only, so the insertion changes no pre-existing state)."""

    name = "patch"

    def state_specs(self):
        return {
            "patched": StateObjectSpec(
                "patched", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            ),
        }

    def process(self, packet, state):
        yield from state.update("patched", None, "incr", 1)
        return [Output(packet)]


def build_runtime(sim: Simulator, seed: int, **overrides) -> ChainRuntime:
    """entry (x2, per-flow + shared) -> scrub (per-flow) -> exit (shared),
    state spread over two store nodes (entry/exit on store0, scrub on
    store1 — so replacing store0 re-homes the busiest node)."""
    chain = LogicalChain("ops")
    chain.add_vertex("entry", EntryCounterNF, parallelism=2, entry=True)
    chain.add_vertex("scrub", ScrubNF)
    chain.add_vertex("exit", SinkCounterNF)
    chain.add_edge("entry", "scrub")
    chain.add_edge("scrub", "exit")
    params = dict(seed=seed, checkpoint_interval_us=60.0)
    params.update(overrides)
    return ChainRuntime(
        sim, chain, params=RuntimeParams(**params), n_store_instances=2
    )


def inject_workload(sim: Simulator, runtime: ChainRuntime) -> None:
    """Paced packet source; payload identities ``f<flow>-<seq>``."""

    def source():
        seq_per_flow = [0] * N_FLOWS
        for index in range(N_PACKETS):
            flow = index % N_FLOWS
            seq_per_flow[flow] += 1
            packet = Packet(
                FiveTuple("10.0.0.1", "52.0.0.1", 1000 + flow, 80, 6),
                payload=f"f{flow}-{seq_per_flow[flow]}",
            )
            runtime.inject(packet)
            yield sim.timeout(GAP_US)

    sim.process(source(), name="ops-source")


# --- scenarios ----------------------------------------------------------


@dataclass
class OpsScenarioSpec:
    """A named maintenance plan plus its invariant profile."""

    name: str
    description: str
    #: generator run as a sim process; paces itself and drives the director
    operations: Callable[[MaintenanceDirector], Generator]
    #: optional unplanned-fault overlay executed by the chaos director
    build_schedule: Optional[Callable[[int], Schedule]] = None
    loss_allowance: int = 0
    expect_log_drained: bool = True
    #: minimum egress packets per goodput window; None disables the
    #: no-downtime check (a removal's pause gate is a bounded planned
    #: stall — loss-free and order-preserving, but not stall-free)
    downtime_floor: Optional[int] = 1
    #: vertices whose state keys are excluded from the loss-free diff
    #: (topology edits make them exist in only one of the two runs)
    exclude_vertices: Tuple[str, ...] = ()
    runtime_overrides: Dict[str, Any] = field(default_factory=dict)


def _plan_rolling_upgrade(director: MaintenanceDirector) -> Generator:
    yield director.sim.timeout(OP_AT_US)
    yield from director.rolling_upgrade("entry")


def _plan_store_replace(director: MaintenanceDirector) -> Generator:
    yield director.sim.timeout(OP_AT_US)
    yield from director.replace_store("store0")


def _plan_topology_insert(director: MaintenanceDirector) -> Generator:
    yield director.sim.timeout(OP_AT_US)
    yield from director.insert_vertex("patch", PatchNF, "scrub", "exit")


def _plan_topology_remove(director: MaintenanceDirector) -> Generator:
    yield director.sim.timeout(OP_AT_US)
    yield from director.remove_vertex("scrub")


def _plan_hot_reload(director: MaintenanceDirector) -> Generator:
    yield director.sim.timeout(OP_AT_US)
    yield from director.hot_reload(
        {"retransmit_timeout_us": 250.0, "proc_time_us": 1.5}
    )


def _upgrade_crash_overlay(_seed: int) -> Schedule:
    # an unplanned scrub-NF crash lands while the entry upgrade is mid-
    # flight: the supervisor must run real failover for the crash while
    # its retired-guards keep ignoring the upgrade's orderly retirements.
    # (Mid-chain on purpose: replayed packets pass the downstream exit
    # instance's duplicate filter, the paper's exactly-once mechanism.)
    return Schedule([CrashNF(at_us=OP_AT_US + 60.0, vertex="scrub")])


SCENARIOS: Dict[str, OpsScenarioSpec] = {
    spec.name: spec
    for spec in [
        OpsScenarioSpec(
            name="rolling-upgrade",
            description="replace both entry instances one at a time under traffic",
            operations=_plan_rolling_upgrade,
        ),
        OpsScenarioSpec(
            name="store-replace",
            description="live-replace store0 (entry+exit state) with WAL catch-up",
            operations=_plan_store_replace,
        ),
        OpsScenarioSpec(
            name="topology-insert",
            description="splice a patch NF between scrub and exit mid-traffic",
            operations=_plan_topology_insert,
            exclude_vertices=("patch",),
        ),
        OpsScenarioSpec(
            name="topology-remove",
            description="splice the scrub NF out, preserving per-flow order",
            operations=_plan_topology_remove,
            exclude_vertices=("scrub",),
            downtime_floor=None,  # the pause gate is a bounded planned stall
        ),
        OpsScenarioSpec(
            name="hot-reload",
            description="hot-apply retransmit timeout + service time changes",
            operations=_plan_hot_reload,
        ),
        OpsScenarioSpec(
            name="upgrade-crash-overlay",
            description="unplanned scrub-NF crash during the rolling entry upgrade",
            operations=_plan_rolling_upgrade,
            build_schedule=_upgrade_crash_overlay,
        ),
    ]
}


# --- driver -------------------------------------------------------------


@dataclass
class OpsOutcome:
    """One (scenario, seed) maintenance run, checked against reference."""

    scenario: str
    seed: int
    violations: List[InvariantViolation]
    operations: List[Dict[str, Any]]  # OperationRecord.as_dict() per op
    operation_us: List[float]  # completed-operation durations
    goodput_windows: int
    min_window_egress: Optional[int]
    egress_count: int
    reference_egress_count: int
    engine: Dict[str, Any]
    timeline: List[Dict[str, Any]]

    @property
    def ok(self) -> bool:
        return not self.violations


def _filter_state(
    state: Dict[str, Any], exclude_vertices: Tuple[str, ...]
) -> Dict[str, Any]:
    if not exclude_vertices:
        return state
    kept: Dict[str, Any] = {}
    for key, value in state.items():
        try:
            vertex, _obj, _flow = parse_storage_key(key)
        except ValueError:
            vertex = key
        if vertex not in exclude_vertices:
            kept[key] = value
    return kept


def _reference_run(seed: int, spec: OpsScenarioSpec) -> RunSnapshot:
    sim = Simulator()
    runtime = build_runtime(sim, seed, **spec.runtime_overrides)
    inject_workload(sim, runtime)
    sim.run(until=HORIZON_US)
    return snapshot_run(runtime)


def run_scenario(
    spec: OpsScenarioSpec,
    seed: int,
    reference: Optional[RunSnapshot] = None,
    collect_runtime: Optional[Callable] = None,
) -> OpsOutcome:
    """Run one maintenance run for ``spec`` under ``seed``; check it.

    The battery is the chaos one plus the two operations checkers, with
    the loss-free state diff filtered by ``spec.exclude_vertices`` (a
    topology edit's spliced vertex exists in only one of the runs) and an
    ``operation-completed`` assertion that every planned operation the
    director recorded actually finished (an abort is a correct *response*
    to a stuck gate, but the campaign's scenarios are all expected to
    complete).
    """
    if reference is None:
        reference = _reference_run(seed, spec)

    sim = Simulator()
    runtime = build_runtime(sim, seed, **spec.runtime_overrides)
    timeline = RecoveryTimeline()
    chaos = ChaosDirector(
        sim, network=runtime.network, seed=seed, timeline=timeline
    )
    supervisor = runtime.attach_supervisor(chaos, timeline=timeline)
    director = MaintenanceDirector(runtime, monitor_window_us=MONITOR_WINDOW_US)
    if spec.build_schedule is not None:
        chaos.execute(spec.build_schedule(seed), runtime)
    sim.process(spec.operations(director), name=f"ops-{spec.name}")
    inject_workload(sim, runtime)
    sim.run(until=HORIZON_US)

    if collect_runtime is not None:
        collect_runtime(runtime)

    snapshot = snapshot_run(runtime)
    violations: List[InvariantViolation] = []
    violations += check_exactly_once(snapshot.egress)
    violations += check_flow_ordering(snapshot.egress)
    violations += check_ownership(runtime)
    violations += check_no_gaveups(runtime)
    violations += check_loss_free_state(
        _filter_state(snapshot.state, spec.exclude_vertices),
        _filter_state(reference.state, spec.exclude_vertices),
        spec.loss_allowance,
    )
    violations += check_egress_complete(
        snapshot.egress, reference.egress, spec.loss_allowance
    )
    if spec.expect_log_drained:
        violations += check_log_drained(runtime)
    violations += check_recoveries_succeeded(supervisor)
    violations += check_operation_converged(runtime)
    if spec.downtime_floor is not None:
        violations += check_no_downtime(
            director.monitor.windows, floor=spec.downtime_floor, label=spec.name
        )
    for record in director.records:
        if record.status != "completed":
            violations.append(
                InvariantViolation(
                    "operation-completed",
                    f"{record.kind}({record.target}) ended {record.status}"
                    + (f": {record.note}" if record.note else ""),
                )
            )

    windows = director.monitor.windows
    return OpsOutcome(
        scenario=spec.name,
        seed=seed,
        violations=violations,
        operations=[record.as_dict() for record in director.records],
        operation_us=[
            record.duration_us for record in director.completed()
        ],
        goodput_windows=len(windows),
        min_window_egress=min((c for _t, c in windows), default=None),
        egress_count=len(runtime.egress),
        reference_egress_count=len(reference.egress),
        engine=runtime.engine_report(),
        timeline=timeline.as_dicts(),
    )


@dataclass
class OpsCampaignReport:
    """Aggregated ops-campaign results (what BENCH_operations.json holds)."""

    outcomes: List[OpsOutcome] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    infra_failures: List[InfraFailure] = field(default_factory=list)
    pool_stats: Optional[Dict[str, Any]] = None  # meta fragment, not payload
    sanitizers: Optional[Dict[str, Any]] = None

    @property
    def total_violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    @property
    def ok(self) -> bool:
        return (
            self.total_violations == 0
            and not self.failures
            and not self.infra_failures
        )

    def operation_samples(self) -> Dict[str, List[float]]:
        """scenario -> completed-operation durations across all seeds."""
        samples: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            samples.setdefault(outcome.scenario, []).extend(outcome.operation_us)
        return samples

    def as_dict(self) -> Dict[str, Any]:
        per_scenario: Dict[str, Any] = {}
        durations = self.operation_samples()
        names = sorted(
            {o.scenario for o in self.outcomes}
            | {f.scenario for f in self.failures}
        )
        for scenario in names:
            rows = [o for o in self.outcomes if o.scenario == scenario]
            samples = durations.get(scenario, [])
            mins = [
                o.min_window_egress for o in rows if o.min_window_egress is not None
            ]
            entry: Dict[str, Any] = {
                "runs": len(rows),
                "failed_runs": sum(f.scenario == scenario for f in self.failures),
                "violations": sum(len(o.violations) for o in rows),
                "operations_completed": len(samples),
                "operations_aborted": sum(
                    sum(op["status"] == "aborted" for op in o.operations)
                    for o in rows
                ),
                "goodput_windows": sum(o.goodput_windows for o in rows),
            }
            if mins:
                entry["min_window_egress"] = min(mins)
            pct = percentiles(samples, PERCENTILES_FIG8)
            if pct:
                entry["operation_us_percentiles"] = {
                    f"p{int(q)}": round(v, 3) for q, v in pct.items()
                }
            per_scenario[scenario] = entry
        return {
            "campaign": {
                "runs": len(self.outcomes) + len(self.failures),
                "completed": len(self.outcomes),
                "failed_runs": len(self.failures),
                "infra_failures": len(self.infra_failures),
                "violations": self.total_violations,
                "ok": self.ok,
            },
            "scenarios": per_scenario,
            "violations": [
                {
                    "scenario": outcome.scenario,
                    "seed": outcome.seed,
                    **violation.as_dict(),
                }
                for outcome in self.outcomes
                for violation in outcome.violations
            ],
            "failures": [failure.as_dict() for failure in self.failures],
            "infra_failures": [
                failure.as_dict() for failure in self.infra_failures
            ],
        }


# --- parallel fan-out (repro.parallel, DESIGN.md §11) -------------------

#: Per-process reference cache, same contract as the chaos campaign's:
#: one clean run per (config, ref-seed), deterministic and shareable.
_REFERENCE_CACHE: Dict[Tuple[str, int], RunSnapshot] = {}


def _cached_reference(spec: OpsScenarioSpec, ref_seed: int) -> RunSnapshot:
    config_key = repr(sorted(spec.runtime_overrides.items()))
    key = (config_key, ref_seed)
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = _reference_run(ref_seed, spec)
    return _REFERENCE_CACHE[key]


@dataclass
class _CampaignItem:
    """One (scenario, seed) work unit shipped to a pool worker."""

    scenario: str
    seed: int
    ref_seed: int
    sanitize: bool = False

    def __repr__(self) -> str:  # shows up in InfraFailure payload entries
        return f"ops:{self.scenario}/seed={self.seed}"


def _campaign_work(
    item: _CampaignItem,
) -> Tuple[str, Union[OpsOutcome, RunFailure], Optional[Dict[str, Any]]]:
    """Pool work function: run one item, never raise."""
    spec = SCENARIOS[item.scenario]
    sanitizer_report: Optional[Dict[str, Any]] = None
    try:
        reference = _cached_reference(spec, item.ref_seed)
        if item.sanitize:
            from repro.analysis.runtime import sanitized

            with sanitized() as suite:
                outcome = run_scenario(spec, item.seed, reference=reference)
                sanitizer_report = suite.report()
        else:
            outcome = run_scenario(spec, item.seed, reference=reference)
        return ("outcome", outcome, sanitizer_report)
    except Exception as exc:
        failure = RunFailure(
            scenario=item.scenario,
            seed=item.seed,
            error=f"{type(exc).__name__}: {exc}",
        )
        return ("failure", failure, sanitizer_report)


def run_campaign(
    seeds: Sequence[int],
    scenario_names: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[OpsOutcome], None]] = None,
    jobs: Union[int, str] = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    sanitize: bool = False,
) -> OpsCampaignReport:
    """Sweep ``seeds`` x the named scenarios (default: all).

    Same fabric contract as the chaos campaign: results merge in
    submission order, so the report (and the BENCH payload) is
    byte-identical for any ``jobs`` count; a raising run becomes a
    :class:`~repro.parallel.RunFailure`, a lost worker an
    :class:`~repro.parallel.InfraFailure`.
    """
    names = list(scenario_names or SCENARIOS)
    ref_seed = seeds[0] if len(seeds) else 0
    items = [
        _CampaignItem(
            scenario=name, seed=seed, ref_seed=ref_seed, sanitize=sanitize
        )
        for name in names
        for seed in seeds
    ]
    pool = CampaignPool(jobs=jobs, timeout_s=timeout_s, retries=retries)

    def on_result(result) -> None:
        if progress is not None and result.value[0] == "outcome":
            progress(result.value[1])

    pooled = pool.map(_campaign_work, items, progress=on_result)

    from repro.parallel import merge_sanitizer_reports

    report = OpsCampaignReport(
        infra_failures=list(pooled.infra_failures),
        pool_stats=pooled.stats(),
        sanitizers=merge_sanitizer_reports(
            result.value[2] for result in pooled.results
        ),
    )
    for result in pooled.results:  # submission order == serial order
        kind, payload, _sanitizer = result.value
        if kind == "outcome":
            report.outcomes.append(payload)
        else:
            report.failures.append(payload)
    return report
