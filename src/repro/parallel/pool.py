"""``CampaignPool`` — process fan-out with explicit worker lifecycle.

The pool maps a picklable, module-level work function over a list of work
items across ``jobs`` OS processes and returns the results **in
submission order**, so downstream aggregation is byte-identical to the
serial loop no matter how completion interleaves (the merge-determinism
contract; see :mod:`repro.parallel`).

Worker lifecycle, in the dist_zero runtime idiom of explicit failure
handling rather than letting the executor's exceptions tear the campaign
down:

* **per-run timeout** — each item runs under a worker-side ``SIGALRM``
  (so a hung simulation interrupts itself and the worker survives for
  the next item), backed by a parent-side watchdog at ~2x the budget for
  hangs the signal cannot reach. Timed-out items become
  :class:`InfraFailure` (reason ``"timeout"``); deterministic sims hang
  deterministically, so timeouts are not retried.
* **worker crash** — a worker dying (segfault, ``os._exit``, OOM kill)
  breaks a ``ProcessPoolExecutor``; the pool rebuilds the executor and
  quarantines every in-flight casualty: they re-run one at a time, so a
  repeat crash unambiguously identifies the poison item (charged a
  bounded retry budget, then recorded as :class:`InfraFailure` with
  reason ``"worker-crash"``) while innocent neighbours complete without
  burning their own budgets on collateral losses.
* **work-function exception** — caught in the worker and returned as an
  :class:`InfraFailure` (reason ``"worker-exception"``) without retry;
  campaign layers are expected to catch *expected* per-run exceptions
  themselves (as :class:`~repro.parallel.merge.RunFailure`), so anything
  reaching the pool is a harness bug and deterministic.

``jobs=1`` (and the single-item case) runs inline in the calling process
— no executor, no pickling — which is both the compatibility path for
platforms without ``fork`` and the reference behaviour the parallel path
must reproduce byte-for-byte.

Wall-clock reads here are host-side campaign accounting (the same
exemption ``tools/`` has from CHC002): every item's in-worker wall time
is measured with ``time.perf_counter`` so the merged payload can report
``wall_s_serial_est`` (the sum — what the serial loop would have cost)
next to the actual elapsed wall, giving an honest speedup figure.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

__all__ = [
    "CampaignPool",
    "InfraFailure",
    "PoolOutcome",
    "WorkResult",
    "resolve_jobs",
]

#: Parent-side watchdog slack: a worker gets ``timeout_s`` to interrupt
#: itself via SIGALRM; the parent declares it hung at ``2x + 5s``.
WATCHDOG_FACTOR = 2.0
WATCHDOG_SLACK_S = 5.0

#: How long the parent blocks per wait() tick while watching for
#: completions, crashes, and watchdog expiry.
_POLL_S = 0.25


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalise a ``--jobs`` value: ``"auto"``/``None``/``0`` -> cpu count."""
    if jobs in (None, "auto", 0, "0"):
        return max(1, os.cpu_count() or 1)
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
    return count


@dataclass
class WorkResult:
    """One successfully-completed work item."""

    index: int
    value: Any
    wall_s: float  # in-worker execution time for this item alone
    attempts: int = 1


@dataclass
class InfraFailure:
    """A work item the *fabric* failed to execute (not a run failure).

    ``reason`` is one of ``"worker-crash"``, ``"timeout"``,
    ``"worker-exception"``.
    """

    index: int
    item: str  # repr of the work item, for the payload
    reason: str
    detail: str
    attempts: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "item": self.item,
            "reason": self.reason,
            "detail": self.detail,
            "attempts": self.attempts,
        }


@dataclass
class PoolOutcome:
    """Everything a campaign needs from one :meth:`CampaignPool.map`."""

    jobs: int
    results: List[WorkResult] = field(default_factory=list)  # submission order
    infra_failures: List[InfraFailure] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.infra_failures

    @property
    def serial_wall_est_s(self) -> float:
        """What the serial loop would have cost: sum of per-item walls."""
        return sum(result.wall_s for result in self.results)

    def values(self) -> List[Any]:
        return [result.value for result in self.results]

    def stats(self) -> Dict[str, Any]:
        """The ``meta`` fragment every BENCH payload records."""
        return {
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 2),
            "wall_s_serial_est": round(self.serial_wall_est_s, 2),
            "infra_failures": len(self.infra_failures),
        }


class _WorkerTimeout(BaseException):
    """Raised inside a worker when its per-item SIGALRM budget expires.

    Inherits ``BaseException`` (like ``KeyboardInterrupt``) so that work
    functions which catch ``Exception`` for their own per-run isolation —
    every campaign runner does — cannot swallow the pool's timeout signal
    and mislabel a hung run as an ordinary run failure.
    """


def _alarm_handler(_signum, _frame):  # pragma: no cover - signal context
    raise _WorkerTimeout()


def _invoke(fn: Callable[[Any], Any], item: Any, timeout_s: Optional[float]):
    """Worker-side wrapper: run one item under its timeout, classify.

    Returns ``(status, payload, wall_s)`` where status is ``"ok"``,
    ``"timeout"``, or ``"error"`` — the worker never lets an exception
    escape (an escaping exception would be indistinguishable from a
    harness bug at the parent), and never dies on one either, so one bad
    item cannot take innocent queued items with it.
    """
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    previous = None
    if use_alarm:
        try:
            previous = signal.signal(signal.SIGALRM, _alarm_handler)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        except ValueError:  # not the main thread: alarm unavailable
            use_alarm = False
    start = time.perf_counter()
    try:
        value = fn(item)
        return ("ok", value, time.perf_counter() - start)
    except _WorkerTimeout:
        return (
            "timeout",
            f"run exceeded {timeout_s}s in-worker budget",
            time.perf_counter() - start,
        )
    except Exception as exc:
        detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=8)}"
        return ("error", detail, time.perf_counter() - start)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


@dataclass
class _Pending:
    index: int
    item: Any
    attempts: int = 0


class CampaignPool:
    """Fan a work function over independent items across processes.

    Parameters
    ----------
    jobs:
        Worker-process count, or ``"auto"`` for the machine's cpu count.
        ``1`` runs inline (no subprocesses).
    timeout_s:
        Per-item wall budget. ``None`` disables both the worker-side
        alarm and the parent watchdog. Inline mode also enforces it
        (same SIGALRM mechanism) when the platform supports it.
    retries:
        How many times an item lost to a *worker crash* is requeued
        before becoming an :class:`InfraFailure`. Timeouts and work-
        function exceptions are never retried (deterministic).
    """

    def __init__(
        self,
        jobs: Union[int, str, None] = "auto",
        timeout_s: Optional[float] = None,
        retries: int = 1,
    ):
        self.jobs = resolve_jobs(jobs)
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        # fork keeps workers seeing the parent's loaded modules (incl.
        # any test monkeypatching) and inherits sys.path; fall back to
        # the platform default where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        self._mp_context = (
            multiprocessing.get_context("fork") if "fork" in methods else None
        )

    # -- public ----------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        progress: Optional[Callable[[WorkResult], None]] = None,
    ) -> PoolOutcome:
        """Run ``fn`` over ``items``; results come back in submission order.

        ``progress`` is called once per completed item *in completion
        order* (it exists for live logging, not for aggregation — use
        ``outcome.results``, which is submission-ordered, for anything
        that feeds a payload).
        """
        items = list(items)
        start = time.perf_counter()
        if self.jobs == 1 or len(items) <= 1:
            outcome = self._map_inline(fn, items, progress)
        else:
            outcome = self._map_parallel(fn, items, progress)
        outcome.wall_s = time.perf_counter() - start
        outcome.results.sort(key=lambda r: r.index)
        outcome.infra_failures.sort(key=lambda f: f.index)
        return outcome

    # -- inline reference path -------------------------------------------

    def _map_inline(self, fn, items, progress) -> PoolOutcome:
        outcome = PoolOutcome(jobs=1)
        for index, item in enumerate(items):
            status, payload, wall_s = _invoke(fn, item, self.timeout_s)
            if status == "ok":
                result = WorkResult(index=index, value=payload, wall_s=wall_s)
                outcome.results.append(result)
                if progress is not None:
                    progress(result)
            else:
                reason = "timeout" if status == "timeout" else "worker-exception"
                outcome.infra_failures.append(
                    InfraFailure(
                        index=index,
                        item=repr(item),
                        reason=reason,
                        detail=payload,
                        attempts=1,
                    )
                )
        return outcome

    # -- process fan-out --------------------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._mp_context
        )

    def _map_parallel(self, fn, items, progress) -> PoolOutcome:
        outcome = PoolOutcome(jobs=self.jobs)
        queue = deque(_Pending(index, item) for index, item in enumerate(items))
        # Items co-resident with a pool break. A broken pool kills every
        # in-flight item, but only one of them is (usually) to blame —
        # so casualties are re-run one at a time from this queue
        # ("quarantine"): a solo crash unambiguously identifies the
        # poison item and charges only *its* retry budget, instead of
        # burning innocent neighbours' budgets on collateral losses.
        suspects: deque = deque()
        executor = self._new_executor()
        in_flight: Dict[Any, _Pending] = {}  # future -> pending
        deadlines: Dict[Any, float] = {}  # future -> watchdog deadline
        watchdog_s = (
            self.timeout_s * WATCHDOG_FACTOR + WATCHDOG_SLACK_S
            if self.timeout_s is not None
            else None
        )
        try:
            while queue or suspects or in_flight:
                if suspects:
                    if not in_flight:
                        pending = suspects.popleft()
                        pending.attempts += 1
                        future = executor.submit(
                            _invoke, fn, pending.item, self.timeout_s
                        )
                        in_flight[future] = pending
                        if watchdog_s is not None:
                            deadlines[future] = time.perf_counter() + watchdog_s
                else:
                    while queue and len(in_flight) < self.jobs * 2:
                        pending = queue.popleft()
                        pending.attempts += 1
                        future = executor.submit(
                            _invoke, fn, pending.item, self.timeout_s
                        )
                        in_flight[future] = pending
                        if watchdog_s is not None:
                            deadlines[future] = time.perf_counter() + watchdog_s
                done, _ = wait(
                    set(in_flight), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                crashed: List[_Pending] = []
                for future in done:
                    pending = in_flight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        status, payload, wall_s = future.result()
                    except (BrokenProcessPool, Exception):
                        crashed.append(pending)
                        continue
                    if status == "ok":
                        result = WorkResult(
                            index=pending.index,
                            value=payload,
                            wall_s=wall_s,
                            attempts=pending.attempts,
                        )
                        outcome.results.append(result)
                        if progress is not None:
                            progress(result)
                    else:
                        reason = (
                            "timeout" if status == "timeout" else "worker-exception"
                        )
                        outcome.infra_failures.append(
                            InfraFailure(
                                index=pending.index,
                                item=repr(pending.item),
                                reason=reason,
                                detail=payload,
                                attempts=pending.attempts,
                            )
                        )
                if crashed:
                    # everything in flight at the break went down with the
                    # pool: the lone casualty is definitively to blame,
                    # a group goes to quarantine to find the culprit
                    casualties = crashed + list(in_flight.values())
                    if len(casualties) == 1:
                        self._crash_or_requeue(
                            casualties[0], suspects, outcome, "pool broke"
                        )
                    else:
                        suspects.extend(casualties)
                    in_flight.clear()
                    deadlines.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = self._new_executor()
                    continue
                if watchdog_s is not None:
                    overdue = [
                        future
                        for future, deadline in deadlines.items()
                        if time.perf_counter() > deadline and not future.done()
                    ]
                    if overdue:
                        for future in overdue:
                            pending = in_flight.pop(future)
                            deadlines.pop(future, None)
                            outcome.infra_failures.append(
                                InfraFailure(
                                    index=pending.index,
                                    item=repr(pending.item),
                                    reason="timeout",
                                    detail=(
                                        "worker unresponsive past the "
                                        f"{watchdog_s:.1f}s parent watchdog"
                                    ),
                                    attempts=pending.attempts,
                                )
                            )
                        # the hung workers are unrecoverable: kill the
                        # whole pool and restart it. The other in-flight
                        # items are known-innocent (the culprits were
                        # just recorded), so they go straight back to
                        # the main queue, uncharged.
                        self._kill_workers(executor)
                        executor.shutdown(wait=False, cancel_futures=True)
                        queue.extend(in_flight.values())
                        in_flight.clear()
                        deadlines.clear()
                        executor = self._new_executor()
        finally:
            # graceful on the clean path; the hung-worker path already
            # killed its processes above
            executor.shutdown(wait=True, cancel_futures=True)
        return outcome

    def _crash_or_requeue(self, pending, suspects, outcome, detail: str) -> None:
        """A worker died *under ``pending`` alone*: retry it or record it.

        Retries go back to the quarantine queue, so a repeat crash stays
        unambiguous.
        """
        if pending.attempts <= self.retries:
            suspects.append(pending)
        else:
            outcome.infra_failures.append(
                InfraFailure(
                    index=pending.index,
                    item=repr(pending.item),
                    reason="worker-crash",
                    detail=f"worker lost ({detail}); retry budget exhausted",
                    attempts=pending.attempts,
                )
            )

    @staticmethod
    def _kill_workers(executor) -> None:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
