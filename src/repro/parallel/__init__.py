"""Parallel campaign fabric (DESIGN.md §11).

Every campaign this repo runs — chaos seeds, overload seeds, same-seed
determinism double-runs, perf-sweep scenarios — is a bag of fully
independent (seed, scenario) work items. The determinism checker
(DESIGN.md §9.3) proves each item is a pure function of its inputs, so
fanning the bag across cores and merging the results in submission order
is *provably* equivalent to the serial loop. This package is that
fan-out: a :class:`CampaignPool` built on ``ProcessPoolExecutor`` with
explicit worker-lifecycle handling (per-run timeouts, crashed workers,
bounded retry), and a deterministic merge layer that keeps BENCH payloads
byte-identical regardless of job count or completion order.

Failure taxonomy (the distinction every campaign payload now carries):

* **violation** — the run completed and an invariant checker flagged it.
  The system under test is wrong.
* **failed run** — the run itself raised; recorded by the campaign layer
  as a :class:`RunFailure` and the remaining items keep running. The
  harness (or the system) is wrong.
* **infra failure** — the *worker* executing the run crashed, hung past
  its timeout, or was lost with the pool; recorded by the pool as an
  :class:`InfraFailure` after bounded retry. The fabric is wrong.

All three fail the campaign exit code; only violations indict the
dataplane.
"""

from repro.parallel.pool import (
    CampaignPool,
    InfraFailure,
    PoolOutcome,
    WorkResult,
    resolve_jobs,
)
from repro.parallel.merge import (
    RunFailure,
    merge_sanitizer_reports,
    payloads_equal_modulo_meta,
)

__all__ = [
    "CampaignPool",
    "InfraFailure",
    "PoolOutcome",
    "RunFailure",
    "WorkResult",
    "merge_sanitizer_reports",
    "payloads_equal_modulo_meta",
    "resolve_jobs",
]
