"""Deterministic merge helpers shared by every campaign payload builder.

The merge contract (DESIGN.md §11): a campaign payload built from a
:class:`~repro.parallel.pool.PoolOutcome` must be **byte-identical** to
the one the serial loop would have written, apart from ``meta`` fields
that honestly describe the execution (``jobs``, ``wall_s``,
``wall_s_serial_est``). The pool already returns results in submission
order; this module adds the two remaining pieces — a canonical record
for runs that raised (:class:`RunFailure`) and an order-independent
reduction for worker-side sanitizer reports — plus the payload
comparator the CI equivalence gate and the tests share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "RunFailure",
    "merge_sanitizer_reports",
    "payloads_equal_modulo_meta",
]


@dataclass
class RunFailure:
    """A campaign run that raised instead of completing.

    Distinct from an invariant violation (the run finished and was
    wrong) and from an :class:`~repro.parallel.pool.InfraFailure` (the
    worker executing it was lost). Campaign layers catch the exception,
    record one of these, and keep the remaining seeds running.
    """

    scenario: str
    seed: int
    error: str  # "ExcType: message"
    context: Dict[str, Any] = field(default_factory=dict)  # e.g. autoscale

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "error": self.error,
        }
        for key in sorted(self.context):
            out[key] = self.context[key]
        return out


def merge_sanitizer_reports(
    reports: Iterable[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Fold per-run sanitizer counter dicts into one campaign report.

    Counters sum; ``*_peak`` keys take the max (matching
    ``SanitizerSuite.report`` semantics). The result is key-sorted so the
    merged report is independent of completion order. Returns ``None``
    when no run produced a report.
    """
    merged: Dict[str, Any] = {}
    saw_any = False
    for report in reports:
        if report is None:
            continue
        saw_any = True
        for key, value in report.items():
            if not isinstance(value, (int, float)):
                merged[key] = value
            elif key.endswith("_peak"):
                merged[key] = max(merged.get(key, 0), value)
            else:
                merged[key] = merged.get(key, 0) + value
    if not saw_any:
        return None
    return {key: merged[key] for key in sorted(merged)}


def payloads_equal_modulo_meta(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Tuple[bool, List[str]]:
    """Compare two BENCH payloads ignoring their ``meta`` blocks.

    Returns ``(equal, diff_keys)`` where ``diff_keys`` names the
    top-level keys that differ — enough for a CI gate to print something
    actionable without dumping both payloads.
    """
    keys = (set(a) | set(b)) - {"meta"}
    diffs = sorted(key for key in keys if a.get(key) != b.get(key))
    return (not diffs, diffs)
