"""Global registry for the opt-in runtime sanitizer suite.

Product modules (store, NIC, RPC, instance, root) import *this* module
only — it has no dependencies on the rest of ``repro``, so the hooks
cannot introduce import cycles. A hook is::

    from repro.analysis import runtime as sanitize
    ...
    suite = sanitize.ACTIVE
    if suite is not None:
        suite.note_store_apply(self.sim, key, instance)

When no suite is installed ``ACTIVE`` is ``None`` and the hook costs a
single module-attribute read — zero allocations, no call.

The suite auto-resets when it observes a different :class:`Simulator`
object than the one it is bound to, so campaign drivers can install one
suite around hundreds of runs without per-run bookkeeping.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - the lazy import avoids a cycle
    from repro.analysis.sanitizers import SanitizerSuite

#: The currently installed sanitizer suite, or ``None`` (the default).
ACTIVE: Optional["SanitizerSuite"] = None


def active():
    """Return the installed suite, or ``None``."""
    return ACTIVE


def install(suite):
    """Install ``suite`` as the process-wide sanitizer suite."""
    global ACTIVE
    ACTIVE = suite
    return suite


def uninstall() -> None:
    """Remove the installed suite (hooks go back to zero-cost)."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def sanitized(**kwargs) -> Iterator:
    """Context manager: install a fresh :class:`SanitizerSuite`.

    Keyword arguments are forwarded to the suite constructor
    (``ownership=``, ``clocks=``, ``deadlock=``). The suite is
    uninstalled on exit even if the body raises.
    """
    from repro.analysis.sanitizers import SanitizerSuite

    suite = SanitizerSuite(**kwargs)
    install(suite)
    try:
        yield suite
    finally:
        uninstall()
