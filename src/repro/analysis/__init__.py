"""Correctness tooling for the CHC reproduction (DESIGN.md §9).

Three layers, all optional at runtime:

- :mod:`repro.analysis.lint` — **chclint**, an AST lint pass enforcing the
  house rules every CHC guarantee rests on (seeded randomness, virtual
  time, no ``id()`` keys, store-mediated NF state). Run as
  ``python -m repro.analysis.lint src/repro``.
- :mod:`repro.analysis.sanitizers` — opt-in runtime sanitizers (ownership
  races, logical-clock monotonicity, backpressure deadlock cycles),
  installed via :func:`repro.analysis.runtime.sanitized`. Product code
  carries ``if ACTIVE is not None`` hooks that cost one global read when
  the suite is off.
- :mod:`repro.analysis.determinism` — same-seed double-run digesting, the
  direct guard for BENCH_* trustworthiness (``tools/determinism_check.py``).

Only :mod:`repro.analysis.runtime` is imported by product modules; it is
stdlib-only, so the hooks add no import weight and no cycles.
"""

from repro.analysis import runtime

__all__ = ["runtime"]
