"""Same-seed double-run determinism checking (DESIGN.md §9.3).

Every BENCH_* number and every chaos/overload invariant gate assumes a
scenario run is a pure function of its seed. This module makes that
checkable: run a scenario N times under one seed, digest the full
observable stream of each run (ordered egress, drop ledger, shed causes,
per-component stats, engine counters), and compare. Any divergence —
a stray ``set`` iteration, a wall-clock read, a process-global counter
leaking into routing — shows up as a digest mismatch.

Driven by ``tools/determinism_check.py`` and the CI determinism-smoke
job.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, List, Optional, Sequence


def _canon(obj: Any) -> Any:
    """Canonicalise ``obj`` into a deterministically-reprable structure."""
    if isinstance(obj, dict):
        return tuple(sorted((repr(_canon(k)), _canon(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(_canon(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted(repr(_canon(item)) for item in obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canon(dataclasses.asdict(obj))
    if isinstance(obj, float):
        return repr(obj)
    return obj


def _stats_of(component: Any) -> Any:
    stats = getattr(component, "stats", None)
    if stats is None:
        return None
    if dataclasses.is_dataclass(stats) and not isinstance(stats, type):
        return _canon(dataclasses.asdict(stats))
    return _canon(vars(stats))


def runtime_digest(runtime) -> str:
    """SHA-256 over the run's full observable stream, in event order."""
    egress = [
        (
            vertex,
            packet.payload,
            packet.clock,
            packet.five_tuple.canonical().key(),
        )
        for vertex, packet in runtime.egress._items
    ]
    record: List[Any] = [
        ("now", repr(runtime.sim.now)),
        ("egress", _canon(egress)),
        ("egress_sojourns", _canon(list(runtime.egress_recorder.values))),
        ("duplicates_suppressed", runtime.duplicates_suppressed),
        ("drops", _canon(dict(runtime.network.drops))),
        ("engine", _canon(runtime.engine_report())),
        (
            "instances",
            _canon(
                {
                    instance_id: _stats_of(instance)
                    for instance_id, instance in runtime.instances.items()
                }
            ),
        ),
        ("stores", _canon({store.name: _stats_of(store) for store in runtime.stores})),
        ("roots", _canon({root.name: _stats_of(root) for root in runtime.roots})),
    ]
    return hashlib.sha256(repr(record).encode("utf-8")).hexdigest()


# --- fast-path equivalence (DESIGN.md §10) ------------------------------
#
# The batched fast path re-times everything (one generator resume per
# batch, lumped proc-time debt), so ``runtime_digest`` — which folds in
# sojourn times and engine counters — legitimately differs between
# batching on and off. What the fast path *does* promise (its equivalence
# contract) is byte-identical egress content and per-flow order, plus
# identical per-flow state. The helpers below digest exactly that surface
# so the contract is checkable per seed.

# Value-compared: the final value is a function of that flow's own packet
# sequence only, so batching must reproduce it byte-for-byte.
_PER_FLOW_TABLES = ("conn_allowed", "bucket", "hits")
# Key-compared: per-flow *bindings* drawn from a cross-flow allocator
# (NAT ports, LB backends). Which value a flow drew depends on the
# cross-flow interleaving of allocations — batching may legally pick a
# different (equally valid) serialization — but the *set of flows bound*
# must be identical.
_ALLOCATION_TABLES = ("port_map", "conn_map")


def flow_egress_digest(runtime) -> str:
    """SHA-256 over per-flow egress content and order (not global timing).

    For each canonical flow key, the ordered sequence of its egress
    packets' observable bytes: payload, directed five-tuple, size, flags,
    clock. Global interleaving across flows, sojourn times, and engine
    event counts are deliberately excluded — the fast path does not
    promise those.
    """
    flows: Dict[Any, List[Any]] = {}
    for _vertex, packet in runtime.egress._items:
        key = packet.five_tuple.canonical().key()
        flows.setdefault(key, []).append(
            (
                packet.payload,
                packet.five_tuple.key(),
                packet.size_bytes,
                packet.flags,
                packet.clock,
            )
        )
    record = tuple(sorted((repr(_canon(k)), _canon(v)) for k, v in flows.items()))
    return hashlib.sha256(repr(record).encode("utf-8")).hexdigest()


def per_flow_state(runtime) -> Dict[str, Any]:
    """The comparable per-flow state surface of a finished run.

    Flow-deterministic tables contribute ``key: value``; allocation-backed
    bindings contribute ``key: "<bound>"`` (presence, not value — see
    ``_ALLOCATION_TABLES``). Pure cross-flow state (``available_ports``,
    ``server_conns``, counters) is excluded entirely.
    """
    from repro.chaos.invariants import chain_state

    surface: Dict[str, Any] = {}
    for key, value in chain_state(runtime).items():
        if any(table in key for table in _PER_FLOW_TABLES):
            surface[key] = value
        elif any(table in key for table in _ALLOCATION_TABLES):
            surface[key] = "<bound>" if value is not None else None
    return surface


def _declarative_chain():
    """The standard all-declarative 4-NF chain used by equivalence runs."""
    from repro.core.dag import LogicalChain
    from repro.nfs.firewall import Firewall
    from repro.nfs.load_balancer import LoadBalancer
    from repro.nfs.nat import Nat
    from repro.nfs.rate_limiter import RateLimiter

    chain = LogicalChain("fp-equiv")
    chain.add_vertex("firewall", Firewall, entry=True)
    chain.add_vertex("nat", Nat)
    chain.add_vertex("ratelimiter", RateLimiter)
    chain.add_vertex("lb", LoadBalancer)
    chain.add_edge("firewall", "nat")
    chain.add_edge("nat", "ratelimiter")
    chain.add_edge("ratelimiter", "lb")
    return chain


def seeded_workload(seed: int, packets: int, flows: int) -> List[Any]:
    """Deterministic packet list: seeded flow interleaving, SYN-led flows,
    occasional FINs — exercises every branch of the four declarative NFs."""
    import random

    from repro.traffic.packet import ACK, FIN, SYN, FiveTuple, Packet

    rng = random.Random(seed)
    started = [False] * flows
    seq = [0] * flows
    out: List[Any] = []
    for _ in range(packets):
        f = rng.randrange(flows)
        ft = FiveTuple(
            f"10.0.{f % 4}.{1 + f}",
            f"52.0.0.{1 + (f % 5)}",
            5000 + f,
            80,
            6,
        )
        if not started[f]:
            flags = SYN
            started[f] = True
        elif rng.random() < 0.02:
            flags = FIN | ACK
        else:
            flags = ACK
        out.append(Packet(ft, flags=flags, payload=f"f{f}-{seq[f]}"))
        seq[f] += 1
    return out


def run_equivalence_once(
    seed: int,
    fastpath: bool,
    packets: int = 400,
    flows: int = 12,
    batch: int = 16,
    gap_us: float = 0.8,
    fault: Optional[Any] = None,
    horizon_us: float = 10_000_000.0,
):
    """One seeded run of the declarative chain; returns the runtime.

    ``fault``, if given, is called as ``fault(sim, runtime)`` after setup
    so tests can schedule mid-run handovers or NF crashes.
    """
    from repro.core.chain_runtime import ChainRuntime, RuntimeParams
    from repro.simnet.engine import Simulator

    sim = Simulator()
    params = RuntimeParams(fastpath_enabled=fastpath, fastpath_batch=batch)
    runtime = ChainRuntime(sim, _declarative_chain(), params=params)
    workload = seeded_workload(seed, packets, flows)

    def source():
        for packet in workload:
            runtime.inject(packet)
            yield sim.timeout(gap_us)

    sim.process(source())
    if fault is not None:
        fault(sim, runtime)
    sim.run(until=horizon_us)
    return runtime


def _equivalence_case(item: Dict[str, Any]) -> Dict[str, Any]:
    """Pool work function: one seed's batching-off-vs-on comparison."""
    seed = item["seed"]
    packets, flows, batch = item["packets"], item["flows"], item["batch"]
    try:
        off = run_equivalence_once(seed, False, packets, flows, batch)
        on = run_equivalence_once(seed, True, packets, flows, batch)
    except Exception as exc:
        return {
            "seed": seed,
            "error": f"{type(exc).__name__}: {exc}",
            "fast_hits": 0,
            "ok": False,
        }
    fast_hits = sum(
        instance._fastpath.stats_fast
        for instance in on.instances.values()
        if instance._fastpath is not None
    )
    egress_off = flow_egress_digest(off)
    egress_on = flow_egress_digest(on)
    state_off = per_flow_state(off)
    state_on = per_flow_state(on)
    return {
        "seed": seed,
        "egress_off": egress_off,
        "egress_on": egress_on,
        "egress_match": egress_off == egress_on,
        "state_match": state_off == state_on,
        "state_diff": sorted(
            key
            for key in set(state_off) | set(state_on)
            if state_off.get(key) != state_on.get(key)
        )[:8],
        "fast_hits": fast_hits,
        "egress_packets": on.egress_meter.packets,
        "ok": egress_off == egress_on
        and state_off == state_on
        and fast_hits > 0,
    }


def check_fastpath_equivalence(
    seeds: Sequence[int],
    packets: int = 400,
    flows: int = 12,
    batch: int = 16,
    progress: Optional[Any] = None,
    jobs: Any = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
) -> Dict[str, Any]:
    """Run batching off/on per seed; compare the equivalence surface.

    A case passes when per-flow egress digests match, per-flow state
    matches, and the batched run actually took the fast path for at
    least one packet (otherwise the check is vacuous). ``jobs`` fans the
    per-seed cases across worker processes.
    """
    from repro.parallel import CampaignPool

    items = [
        {"seed": seed, "packets": packets, "flows": flows, "batch": batch}
        for seed in seeds
    ]
    pool = CampaignPool(jobs=jobs, timeout_s=timeout_s, retries=retries)

    def on_result(result) -> None:
        if progress is not None:
            progress(result.value)

    pooled = pool.map(_equivalence_case, items, progress=on_result)
    cases: List[Dict[str, Any]] = pooled.values()
    infra_failures = [failure.as_dict() for failure in pooled.infra_failures]
    return {
        "packets": packets,
        "flows": flows,
        "batch": batch,
        "seeds": list(seeds),
        "cases": cases,
        "mismatches": [case for case in cases if not case["ok"]],
        "infra_failures": infra_failures,
        "pool": pooled.stats(),
        "ok": all(case["ok"] for case in cases) and not infra_failures,
    }


def chaos_digest(scenario: str, seed: int, sanitize: bool = False) -> str:
    """Digest one chaos-campaign run of ``scenario`` under ``seed``."""
    from repro.analysis.runtime import sanitized
    from repro.chaos.campaign import SCENARIOS, run_scenario

    spec = SCENARIOS[scenario]
    captured: List[str] = []

    def collect(runtime) -> None:
        captured.append(runtime_digest(runtime))

    if sanitize:
        with sanitized():
            run_scenario(spec, seed, collect_runtime=collect)
    else:
        run_scenario(spec, seed, collect_runtime=collect)
    return captured[0]


def overload_digest(
    scenario: str, seed: int, autoscale: bool = False, sanitize: bool = False
) -> str:
    """Digest one overload-scenario run of ``scenario`` under ``seed``."""
    from repro.analysis.runtime import sanitized
    from repro.chaos.overload import SCENARIOS, run_overload_scenario

    spec = SCENARIOS[scenario]
    captured: List[str] = []

    def collect(runtime) -> None:
        captured.append(runtime_digest(runtime))

    if sanitize:
        with sanitized():
            run_overload_scenario(spec, seed, autoscale=autoscale, collect_runtime=collect)
    else:
        run_overload_scenario(spec, seed, autoscale=autoscale, collect_runtime=collect)
    return captured[0]


def _determinism_case(item: Dict[str, Any]) -> Dict[str, Any]:
    """Pool work function: one (kind, scenario, seed) double-run case.

    A run that raises yields a failed case (``ok: False`` with the
    error recorded) instead of aborting the whole check — per-run
    isolation, matching the campaign runners.
    """
    digest_fn = chaos_digest if item["kind"] == "chaos" else overload_digest
    case: Dict[str, Any] = {
        "kind": item["kind"],
        "scenario": item["scenario"],
        "seed": item["seed"],
        "digests": [],
        "ok": False,
    }
    try:
        case["digests"] = [
            digest_fn(item["scenario"], item["seed"], sanitize=item["sanitize"])
            for _ in range(item["runs"])
        ]
        case["ok"] = len(set(case["digests"])) == 1
    except Exception as exc:
        case["error"] = f"{type(exc).__name__}: {exc}"
    return case


def check_determinism(
    seeds: Sequence[int],
    runs: int = 2,
    chaos: Sequence[str] = (),
    overload: Sequence[str] = (),
    sanitize: bool = False,
    progress: Optional[Any] = None,
    jobs: Any = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
) -> Dict[str, Any]:
    """Run each scenario ``runs`` times per seed; report digest mismatches.

    Returns a report dict with one entry per (scenario, seed) giving the
    digests observed and whether they all agree; ``report["ok"]`` is the
    overall verdict. ``jobs`` fans the independent cases across worker
    processes (the ``runs`` same-seed executions of one case stay inside
    one worker so their digests compare within a single process); lost
    or hung workers appear under ``report["infra_failures"]`` and fail
    the verdict.
    """
    from repro.parallel import CampaignPool

    items = [
        {"kind": "chaos", "scenario": name, "seed": seed, "runs": runs,
         "sanitize": sanitize}
        for name in chaos
        for seed in seeds
    ] + [
        {"kind": "overload", "scenario": name, "seed": seed, "runs": runs,
         "sanitize": sanitize}
        for name in overload
        for seed in seeds
    ]
    pool = CampaignPool(jobs=jobs, timeout_s=timeout_s, retries=retries)

    def on_result(result) -> None:
        if progress is not None:
            progress(result.value)

    pooled = pool.map(_determinism_case, items, progress=on_result)
    cases: List[Dict[str, Any]] = pooled.values()  # submission order
    infra_failures = [failure.as_dict() for failure in pooled.infra_failures]

    # Different seeds should (almost always) produce different streams;
    # identical cross-seed digests suggest the seed isn't reaching the run.
    by_scenario: Dict[str, set] = {}
    for case in cases:
        if case["ok"]:
            by_scenario.setdefault(f"{case['kind']}:{case['scenario']}", set()).add(
                case["digests"][0]
            )
    seed_sensitivity = {
        scenario: len(digests) > 1 or len(seeds) <= 1
        for scenario, digests in by_scenario.items()
    }
    return {
        "runs_per_seed": runs,
        "seeds": list(seeds),
        "cases": cases,
        "seed_sensitivity": seed_sensitivity,
        "mismatches": [case for case in cases if not case["ok"]],
        "infra_failures": infra_failures,
        "pool": pooled.stats(),
        "ok": all(case["ok"] for case in cases) and not infra_failures,
    }
