"""Same-seed double-run determinism checking (DESIGN.md §9.3).

Every BENCH_* number and every chaos/overload invariant gate assumes a
scenario run is a pure function of its seed. This module makes that
checkable: run a scenario N times under one seed, digest the full
observable stream of each run (ordered egress, drop ledger, shed causes,
per-component stats, engine counters), and compare. Any divergence —
a stray ``set`` iteration, a wall-clock read, a process-global counter
leaking into routing — shows up as a digest mismatch.

Driven by ``tools/determinism_check.py`` and the CI determinism-smoke
job.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, List, Optional, Sequence


def _canon(obj: Any) -> Any:
    """Canonicalise ``obj`` into a deterministically-reprable structure."""
    if isinstance(obj, dict):
        return tuple(sorted((repr(_canon(k)), _canon(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(_canon(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted(repr(_canon(item)) for item in obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canon(dataclasses.asdict(obj))
    if isinstance(obj, float):
        return repr(obj)
    return obj


def _stats_of(component: Any) -> Any:
    stats = getattr(component, "stats", None)
    if stats is None:
        return None
    if dataclasses.is_dataclass(stats) and not isinstance(stats, type):
        return _canon(dataclasses.asdict(stats))
    return _canon(vars(stats))


def runtime_digest(runtime) -> str:
    """SHA-256 over the run's full observable stream, in event order."""
    egress = [
        (
            vertex,
            packet.payload,
            packet.clock,
            packet.five_tuple.canonical().key(),
        )
        for vertex, packet in runtime.egress._items
    ]
    record: List[Any] = [
        ("now", repr(runtime.sim.now)),
        ("egress", _canon(egress)),
        ("egress_sojourns", _canon(list(runtime.egress_recorder.values))),
        ("duplicates_suppressed", runtime.duplicates_suppressed),
        ("drops", _canon(dict(runtime.network.drops))),
        ("engine", _canon(runtime.engine_report())),
        (
            "instances",
            _canon(
                {
                    instance_id: _stats_of(instance)
                    for instance_id, instance in runtime.instances.items()
                }
            ),
        ),
        ("stores", _canon({store.name: _stats_of(store) for store in runtime.stores})),
        ("roots", _canon({root.name: _stats_of(root) for root in runtime.roots})),
    ]
    return hashlib.sha256(repr(record).encode("utf-8")).hexdigest()


def chaos_digest(scenario: str, seed: int, sanitize: bool = False) -> str:
    """Digest one chaos-campaign run of ``scenario`` under ``seed``."""
    from repro.analysis.runtime import sanitized
    from repro.chaos.campaign import SCENARIOS, run_scenario

    spec = SCENARIOS[scenario]
    captured: List[str] = []

    def collect(runtime) -> None:
        captured.append(runtime_digest(runtime))

    if sanitize:
        with sanitized():
            run_scenario(spec, seed, collect_runtime=collect)
    else:
        run_scenario(spec, seed, collect_runtime=collect)
    return captured[0]


def overload_digest(
    scenario: str, seed: int, autoscale: bool = False, sanitize: bool = False
) -> str:
    """Digest one overload-scenario run of ``scenario`` under ``seed``."""
    from repro.analysis.runtime import sanitized
    from repro.chaos.overload import SCENARIOS, run_overload_scenario

    spec = SCENARIOS[scenario]
    captured: List[str] = []

    def collect(runtime) -> None:
        captured.append(runtime_digest(runtime))

    if sanitize:
        with sanitized():
            run_overload_scenario(spec, seed, autoscale=autoscale, collect_runtime=collect)
    else:
        run_overload_scenario(spec, seed, autoscale=autoscale, collect_runtime=collect)
    return captured[0]


def check_determinism(
    seeds: Sequence[int],
    runs: int = 2,
    chaos: Sequence[str] = (),
    overload: Sequence[str] = (),
    sanitize: bool = False,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run each scenario ``runs`` times per seed; report digest mismatches.

    Returns a report dict with one entry per (scenario, seed) giving the
    digests observed and whether they all agree; ``report["ok"]`` is the
    overall verdict.
    """
    cases: List[Dict[str, Any]] = []
    for name in chaos:
        for seed in seeds:
            digests = [chaos_digest(name, seed, sanitize=sanitize) for _ in range(runs)]
            case = {
                "kind": "chaos",
                "scenario": name,
                "seed": seed,
                "digests": digests,
                "ok": len(set(digests)) == 1,
            }
            cases.append(case)
            if progress is not None:
                progress(case)
    for name in overload:
        for seed in seeds:
            digests = [overload_digest(name, seed, sanitize=sanitize) for _ in range(runs)]
            case = {
                "kind": "overload",
                "scenario": name,
                "seed": seed,
                "digests": digests,
                "ok": len(set(digests)) == 1,
            }
            cases.append(case)
            if progress is not None:
                progress(case)

    # Different seeds should (almost always) produce different streams;
    # identical cross-seed digests suggest the seed isn't reaching the run.
    by_scenario: Dict[str, set] = {}
    for case in cases:
        if case["ok"]:
            by_scenario.setdefault(f"{case['kind']}:{case['scenario']}", set()).add(
                case["digests"][0]
            )
    seed_sensitivity = {
        scenario: len(digests) > 1 or len(seeds) <= 1
        for scenario, digests in by_scenario.items()
    }
    return {
        "runs_per_seed": runs,
        "seeds": list(seeds),
        "cases": cases,
        "seed_sensitivity": seed_sensitivity,
        "mismatches": [case for case in cases if not case["ok"]],
        "ok": all(case["ok"] for case in cases),
    }
