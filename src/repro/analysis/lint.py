"""chclint — AST lint rules for the CHC reproduction's house invariants.

Every guarantee this repo reproduces (loss-free Figure-4 handover, XOR
bit-vector log draining, TS-selection recovery, seed-reproducible
campaigns) rests on conventions the language does not enforce. chclint
turns them into machine-checked rules:

====== =================================================================
Code   Rule
====== =================================================================
CHC001 Unseeded / module-level randomness: ``random.*`` calls (other
       than constructing a ``random.Random``), ``from random import
       ...``, or any use of ``numpy.random`` inside ``src/repro``. All
       nondeterminism must flow through seeded ``random.Random``
       instances.
CHC002 Wall-clock reads (``time.time``, ``perf_counter``, ``monotonic``,
       ``datetime.now`` …) outside ``tools/`` / benchmark code / the
       ``repro/parallel`` campaign fabric. The simulator is the only
       clock; wall-clock reads break seed-reproducibility and
       virtual-time accounting.
CHC003 Iterating a ``set``/``frozenset`` or ``dict.values()`` where the
       loop body schedules or emits (``put``, ``send``, ``emit``,
       ``process``, …) without ``sorted(...)``. Set order depends on
       PYTHONHASHSEED; it is the classic silent nondeterminism leak.
CHC004 ``id(obj)`` used as a persisted key (dict subscript,
       ``get``/``setdefault``/``pop``/``add``/``discard``/``remove``,
       or membership tests). A GC'd object's id is reused, so a later
       object can silently collide with a dead one's entry.
CHC005 NF code (``repro/nfs/``) writing state outside the store API:
       ``self.<attr>`` assignment outside ``__init__``, ``global``
       statements, or reaching into store internals (``_data``,
       ``_cache``, ``_owners``). Per-flow/shared state must go through
       the scope API or it is invisible to handover and recovery.
CHC006 Declarative NF (``repro/nfs/``) breaking its match-action
       contract: ``fast_action`` touching a state object not listed in
       ``match_action_form()``'s ``tables``, a non-literal table name
       (not statically checkable), or ``fast_match`` touching state at
       all. The fused fast path (DESIGN.md §10) plans shared lookups
       and cache bracketing from the declared table set, so an
       undeclared access would execute against unjournaled state and
       slip past the batching on/off equivalence guarantee.
CHC007 Splitter membership / instance retirement mutated outside the
       sanctioned control-plane modules: assigning to or calling
       mutating methods on ``.hash_members``, or calling
       ``.retire_instance(...)``, anywhere but the splitter itself, the
       autoscaler, the chain runtime, recovery, or the maintenance
       director (``repro/ops``). ``hash_members`` is a *stable* list —
       poking it mid-traffic silently remaps flow partitions without a
       Figure-4 handover (state loss), and retiring an instance that
       has not been drained through the director APIs strands owned
       state.
CHC008 ``import socket`` / ``import pickle`` anywhere but
       ``repro/dist/transport.py``. The transport module is the single
       place raw sockets and wire encoding live: it frames messages,
       uses an explicit registered-class codec (never bare pickle,
       which executes arbitrary constructors on decode), and counts
       faults. Any other module opening sockets would bypass the
       reconnect/backoff/fault-counter machinery the distributed-fabric
       evidence checks rely on.
====== =================================================================

Suppression: append ``# chclint: disable=CHC003`` (comma-separate for
several codes, or ``disable=all``) to the offending line.

Run as ``python -m repro.analysis.lint [paths ...]``; add ``--json`` for
a machine-readable report. Exit status: 0 clean, 1 findings, 2 bad
input/syntax errors.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

ALL_RULES: Dict[str, str] = {
    "CHC001": "unseeded or module-level randomness",
    "CHC002": "wall-clock read outside tools/benchmarks",
    "CHC003": "unsorted set/dict.values() iteration feeding scheduling or emission",
    "CHC004": "id(obj) used as a persisted key",
    "CHC005": "NF state write bypassing the store API",
    "CHC006": "declarative NF touching state outside its declared match-action tables",
    "CHC007": "splitter membership or retirement mutated outside director/autoscaler APIs",
    "CHC008": "raw socket/pickle import outside repro.dist.transport",
}

#: Path fragments whose files may read the wall clock (CHC002 exempt):
#: host-side drivers, benchmark harnesses, the parallel campaign fabric
#: (``repro/parallel`` — worker timeouts and per-run wall accounting are
#: host-side measurements, never simulation clocks), and the distributed
#: shard fabric (``repro/dist`` — real processes paced against real
#: wall-clock time is the whole point).
WALL_CLOCK_EXEMPT_PARTS = ("tools", "benchmarks", "bench", "parallel", "dist")

#: Modules whose import is confined to ``repro/dist/transport.py``
#: (CHC008): raw sockets and ambient-authority serialization.
RAW_TRANSPORT_MODULES = ("socket", "pickle")

#: Modules sanctioned to mutate splitter membership / retire instances
#: (CHC007 exempt): the splitter's own implementation, the control-plane
#: layers that drive Figure-4 handovers (autoscaler, chain runtime,
#: recovery), and the maintenance director package (``repro/ops``).
MEMBERSHIP_EXEMPT_FILES = {
    "splitter.py",
    "autoscaler.py",
    "chain_runtime.py",
    "recovery.py",
}
MEMBERSHIP_EXEMPT_PARTS = ("ops",)

#: List-mutating method names: calling any of these on ``.hash_members``
#: rewrites the stable hash partition in place.
MUTATING_LIST_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "sort",
    "reverse",
    "__setitem__",
}

WALL_CLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}
WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Call names that mean "this loop feeds the scheduler or the wire".
EMIT_NAMES = {
    "put",
    "put_forced",
    "put_front",
    "send",
    "emit",
    "inject",
    "enqueue",
    "dispatch",
    "schedule",
    "process",
    "succeed",
    "fail",
    "respond",
    "call_soon",
}

#: Container methods whose first argument becomes a persisted key.
ID_KEY_METHODS = {"get", "setdefault", "pop", "add", "discard", "remove", "append"}

#: numpy.random names that *construct seeded generators* — these are the
#: sanctioned way to use numpy randomness, not the process-global state.
NUMPY_SEEDED_CTORS = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}

_SUPPRESS_RE = re.compile(r"chclint:\s*disable=([A-Za-z0-9, ]+)")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → set of suppressed codes (``{"all"}`` for all)."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = {part.strip() for part in match.group(1).split(",") if part.strip()}
            out.setdefault(tok.start[0], set()).update(
                {"all"} if "all" in {c.lower() for c in codes} else codes
            )
    except tokenize.TokenError:
        pass
    return out


def _exempt_codes(path: Path) -> Set[str]:
    parts = set(path.parts)
    exempt: Set[str] = set()
    if parts & set(WALL_CLOCK_EXEMPT_PARTS):
        exempt.add("CHC002")
    if "nfs" not in parts:
        exempt.add("CHC005")
        exempt.add("CHC006")
    if path.name in MEMBERSHIP_EXEMPT_FILES or parts & set(MEMBERSHIP_EXEMPT_PARTS):
        exempt.add("CHC007")
    if path.name == "transport.py" and "dist" in parts:
        exempt.add("CHC008")
    return exempt


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    )


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.findings: List[Finding] = []
        self.disabled = _exempt_codes(path)
        # CHC001 alias tracking
        self.random_modules: Set[str] = set()
        self.random_funcs: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        # CHC002 alias tracking
        self.time_modules: Set[str] = set()
        self.datetime_names: Set[str] = set()  # names bound to the datetime class/module
        # CHC003 set inference: per-scope known-set names; class-level set attrs
        self.scope_sets: List[Set[str]] = [set()]
        self.self_set_attrs: Set[str] = set()
        # CHC005 context
        self.function_stack: List[str] = []

    # ------------------------------------------------------------------

    def report(self, node: ast.AST, code: str, message: str) -> None:
        if code in self.disabled:
            return
        self.findings.append(
            Finding(
                path=self.rel,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # ------------------------------------------------------------------
    # imports (alias bookkeeping + CHC001/CHC002 from-imports)
    # ------------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_modules.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                self.numpy_modules.add(bound)
                if alias.name == "numpy.random":
                    self.report(
                        node,
                        "CHC001",
                        "numpy.random is process-global state; use a seeded "
                        "random.Random (or numpy Generator) instance",
                    )
            elif alias.name == "time":
                self.time_modules.add(bound)
            elif alias.name == "datetime":
                self.datetime_names.add(bound)
            if alias.name.split(".")[0] in RAW_TRANSPORT_MODULES:
                self.report(
                    node,
                    "CHC008",
                    f"import {alias.name}: raw sockets/pickle are confined to "
                    "repro.dist.transport — use its framed connections and "
                    "registered-class codec instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] in RAW_TRANSPORT_MODULES:
            self.report(
                node,
                "CHC008",
                f"from {node.module} import ...: raw sockets/pickle are "
                "confined to repro.dist.transport — use its framed "
                "connections and registered-class codec instead",
            )
        if node.module == "random":
            for alias in node.names:
                if alias.name in ("Random", "SystemRandom"):
                    continue
                self.random_funcs.add(alias.asname or alias.name)
                self.report(
                    node,
                    "CHC001",
                    f"'from random import {alias.name}' binds the module-level "
                    "(unseeded) generator; use a seeded random.Random instance",
                )
        elif node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_TIME_ATTRS:
                    self.report(
                        node,
                        "CHC002",
                        f"'from time import {alias.name}' reads the wall clock; "
                        "simulation code must use sim.now",
                    )
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self.datetime_names.add(alias.asname or alias.name)
        elif node.module in ("numpy", "numpy.random"):
            for alias in node.names:
                if node.module == "numpy" and alias.name == "random":
                    self.numpy_modules.add("numpy")
                    self.report(
                        node,
                        "CHC001",
                        "numpy.random is process-global state; use a seeded "
                        "random.Random (or numpy Generator) instance",
                    )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # calls: CHC001, CHC002, CHC004 (method-key forms)
    # ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self.random_modules and func.attr not in ("Random", "SystemRandom"):
                self.report(
                    node,
                    "CHC001",
                    f"random.{func.attr}() uses the module-level (unseeded) "
                    "generator; use a seeded random.Random instance",
                )
            if owner in self.time_modules and func.attr in WALL_CLOCK_TIME_ATTRS:
                self.report(
                    node,
                    "CHC002",
                    f"time.{func.attr}() reads the wall clock; simulation code "
                    "must use sim.now",
                )
            if owner in self.datetime_names and func.attr in WALL_CLOCK_DATETIME_ATTRS:
                self.report(
                    node,
                    "CHC002",
                    f"datetime.{func.attr}() reads the wall clock; simulation "
                    "code must use sim.now",
                )
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id in self.datetime_names
                and func.attr in WALL_CLOCK_DATETIME_ATTRS
            ):
                self.report(
                    node,
                    "CHC002",
                    f"datetime.datetime.{func.attr}() reads the wall clock; "
                    "simulation code must use sim.now",
                )
        if isinstance(func, ast.Name) and func.id in self.random_funcs:
            self.report(
                node,
                "CHC001",
                f"{func.id}() is the module-level (unseeded) random generator; "
                "use a seeded random.Random instance",
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ID_KEY_METHODS
            and node.args
            and _is_id_call(node.args[0])
        ):
            self.report(
                node,
                "CHC004",
                f".{func.attr}(id(...)) persists an object id as a key; ids are "
                "reused after GC — key on a monotonic id field instead",
            )
        # CHC007: .hash_members.<mutator>(...) and .retire_instance(...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_LIST_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "hash_members"
        ):
            self.report(
                node,
                "CHC007",
                f".hash_members.{func.attr}(...) rewrites the stable hash "
                "partition in place — membership changes must go through "
                "Splitter.replace_instance / the director and autoscaler APIs",
            )
        if isinstance(func, ast.Attribute) and func.attr == "retire_instance":
            self.report(
                node,
                "CHC007",
                ".retire_instance(...) called directly — retirement must go "
                "through the maintenance director or autoscaler, which drain "
                "owned state via the Figure-4 handover first",
            )
        self.generic_visit(node)

    # CHC001: attribute access on numpy's `random` submodule. Seeded
    # generator constructors (np.random.default_rng(seed), …) are the
    # sanctioned idiom and pass; everything else is process-global state.
    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.numpy_modules
        ):
            if node.attr not in NUMPY_SEEDED_CTORS:
                self.report(
                    node,
                    "CHC001",
                    f"numpy.random.{node.attr} is process-global state; use a "
                    "seeded random.Random (or np.random.default_rng) instance",
                )
            return  # don't re-flag the inner np.random access
        if (
            node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.numpy_modules
        ):
            self.report(
                node,
                "CHC001",
                "numpy.random is process-global state; use a seeded "
                "random.Random (or np.random.default_rng) instance",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # CHC004: subscript / membership forms
    # ------------------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        key = node.slice
        if isinstance(key, ast.Index):  # pragma: no cover - py<3.9 AST shape
            key = key.value  # type: ignore[attr-defined]
        if _is_id_call(key):
            self.report(
                node,
                "CHC004",
                "subscripting with id(...) persists an object id as a key; ids "
                "are reused after GC — key on a monotonic id field instead",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if (
            _is_id_call(node.left)
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.In, ast.NotIn))
        ):
            self.report(
                node,
                "CHC004",
                "membership test on stored id(...) keys; ids are reused after "
                "GC — key on a monotonic id field instead",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # CHC003: set / dict.values() iteration feeding emission
    # ------------------------------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self.scope_sets)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.self_set_attrs
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    @staticmethod
    def _is_values_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and not node.args
        )

    @staticmethod
    def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
        if isinstance(annotation, ast.Subscript) and isinstance(annotation.value, ast.Name):
            return annotation.value.id in ("set", "frozenset", "Set", "FrozenSet")
        return False

    def _note_assignment(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        is_set = value is not None and self._is_set_expr(value)
        if isinstance(target, ast.Name):
            if is_set:
                self.scope_sets[-1].add(target.id)
            else:
                self.scope_sets[-1].discard(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and is_set
        ):
            self.self_set_attrs.add(target.attr)

    def _body_emits(self, body: Sequence[ast.stmt]) -> Optional[ast.Call]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = _call_name(node)
                    if name in EMIT_NAMES:
                        return node
        return None

    def _check_chc007_assign(self, targets: Iterable[ast.AST], node: ast.AST) -> None:
        if "CHC007" in self.disabled:
            return
        for target in targets:
            is_direct = isinstance(target, ast.Attribute) and target.attr == "hash_members"
            is_item = (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "hash_members"
            )
            if is_direct or is_item:
                self.report(
                    node,
                    "CHC007",
                    "assignment to .hash_members rewrites the stable hash "
                    "partition — membership changes must go through "
                    "Splitter.replace_instance / the director and autoscaler "
                    "APIs",
                )

    def visit_Delete(self, node: ast.Delete) -> None:
        if "CHC007" not in self.disabled:
            for target in node.targets:
                inner = target.value if isinstance(target, ast.Subscript) else target
                if isinstance(inner, ast.Attribute) and inner.attr == "hash_members":
                    self.report(
                        node,
                        "CHC007",
                        "del on .hash_members rewrites the stable hash "
                        "partition — membership changes must go through the "
                        "director and autoscaler APIs",
                    )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_assignment(target, node.value)
        self.generic_visit(node)
        self._check_chc005_assign(node.targets, node)
        self._check_chc007_assign(node.targets, node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._annotation_is_set(node.annotation) and isinstance(node.target, ast.Name):
            self.scope_sets[-1].add(node.target.id)
        elif (
            self._annotation_is_set(node.annotation)
            and isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "self"
        ):
            self.self_set_attrs.add(node.target.attr)
        else:
            self._note_assignment(node.target, node.value)
        self.generic_visit(node)
        self._check_chc005_assign([node.target], node)
        self._check_chc007_assign([node.target], node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        self._check_chc005_assign([node.target], node)
        self._check_chc007_assign([node.target], node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node.body, node)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.AST, body: Sequence[ast.stmt], where: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            emit = self._body_emits(body)
            if emit is not None:
                self.report(
                    where,
                    "CHC003",
                    "iterating a set in a loop that emits/schedules "
                    f"(.{_call_name(emit)}) — set order depends on the hash "
                    "seed; wrap the iterable in sorted(...)",
                )
        elif self._is_values_call(iter_node):
            emit = self._body_emits(body)
            if emit is not None:
                self.report(
                    where,
                    "CHC003",
                    "iterating dict.values() in a loop that emits/schedules "
                    f"(.{_call_name(emit)}) — make the order explicit with "
                    "sorted(...) over keys or items",
                )

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter) or self._is_values_call(gen.iter):
                elt = getattr(node, "elt", None) or getattr(node, "value", None)
                emit = self._body_emits([ast.Expr(value=elt)]) if elt is not None else None
                if emit is not None:
                    self.report(
                        node,
                        "CHC003",
                        "comprehension over a set/dict.values() whose element "
                        f"expression emits/schedules (.{_call_name(emit)}); wrap "
                        "the iterable in sorted(...)",
                    )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # ------------------------------------------------------------------
    # CHC005: NF state discipline (only active under repro/nfs/)
    # ------------------------------------------------------------------

    def _check_chc005_assign(self, targets: Iterable[ast.AST], node: ast.AST) -> None:
        if "CHC005" in self.disabled:
            return
        if not self.function_stack or self.function_stack[-1] in ("__init__", "state_specs"):
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.report(
                    node,
                    "CHC005",
                    f"NF writes self.{target.attr} outside __init__ — per-flow/"
                    "shared state must go through the store scope API or it is "
                    "invisible to handover and recovery",
                )

    def visit_Global(self, node: ast.Global) -> None:
        if "CHC005" not in self.disabled and self.function_stack:
            self.report(
                node,
                "CHC005",
                "NF mutates module globals — state must go through the store "
                "scope API or it is invisible to handover and recovery",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # CHC006: declarative fast path confined to declared tables
    # (only active under repro/nfs/)
    # ------------------------------------------------------------------

    @staticmethod
    def _declared_tables(cls: ast.ClassDef) -> Optional[Set[str]]:
        """The ``tables=(...)`` literal of the class's MatchActionForm,
        or None when the class declares no form / no checkable literal."""
        for item in cls.body:
            if not (isinstance(item, ast.FunctionDef) and item.name == "match_action_form"):
                continue
            for node in ast.walk(item):
                if not (isinstance(node, ast.Call) and _call_name(node) == "MatchActionForm"):
                    continue
                tables_arg: Optional[ast.AST] = node.args[0] if node.args else None
                for keyword in node.keywords:
                    if keyword.arg == "tables":
                        tables_arg = keyword.value
                if isinstance(tables_arg, (ast.Tuple, ast.List)) and all(
                    isinstance(el, ast.Constant) and isinstance(el.value, str)
                    for el in tables_arg.elts
                ):
                    return {el.value for el in tables_arg.elts}
        return None

    #: FastState accessors whose first argument names a state object.
    FAST_STATE_METHODS = {"get", "read", "update", "delete"}

    def _check_chc006(self, cls: ast.ClassDef) -> None:
        if "CHC006" in self.disabled:
            return
        declared = self._declared_tables(cls)
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name == "fast_match":
                self._chc006_match_is_pure(item)
            elif item.name == "fast_action" and declared is not None:
                self._chc006_action_tables(item, declared)

    def _state_param(self, fn: ast.FunctionDef) -> Optional[str]:
        # fast_action(self, packet, state) — the FastState is the third arg
        args = fn.args.args
        return args[2].arg if len(args) >= 3 else None

    def _chc006_match_is_pure(self, fn: ast.FunctionDef) -> None:
        # fast_match(self, packet): any extra arg would be state — and the
        # contract says match is a pure header predicate
        state_names = {arg.arg for arg in fn.args.args[2:]}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and (
                    node.func.value.id in state_names
                    or (node.func.value.id == "state")
                )
            ):
                self.report(
                    node,
                    "CHC006",
                    "fast_match must be a pure header predicate — it runs "
                    "before the executor decides state availability, so any "
                    "state access here is unjournaled",
                )

    def _chc006_action_tables(self, fn: ast.FunctionDef, declared: Set[str]) -> None:
        state_name = self._state_param(fn)
        if state_name is None:
            return
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == state_name
                and node.func.attr in self.FAST_STATE_METHODS
            ):
                continue
            first = node.args[0] if node.args else None
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if first.value not in declared:
                    self.report(
                        node,
                        "CHC006",
                        f"fast_action touches state object {first.value!r} "
                        "not listed in match_action_form tables — the fused "
                        "plan cannot journal or bracket it, breaking "
                        "batching on/off equivalence",
                    )
            else:
                self.report(
                    node,
                    "CHC006",
                    f"fast_action passes a non-literal table name to "
                    f"{state_name}.{node.func.attr}(...) — the declared-"
                    "tables contract must be statically checkable",
                )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_chc006(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # scope bookkeeping
    # ------------------------------------------------------------------

    def _visit_function(self, node) -> None:
        self.function_stack.append(node.name)
        self.scope_sets.append(set())
        for arg in list(node.args.args) + list(getattr(node.args, "kwonlyargs", ())):
            if self._annotation_is_set(arg.annotation):
                self.scope_sets[-1].add(arg.arg)
        self.generic_visit(node)
        self.scope_sets.pop()
        self.function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def check_source(source: str, path: Path, root: Optional[Path] = None) -> List[Finding]:
    """Lint one file's source; returns suppression-filtered findings."""
    rel = str(path)
    if root is not None:
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="CHC000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    checker = _Checker(path, rel)
    checker.visit(tree)
    suppressed = _suppressions(source)
    out = []
    for finding in checker.findings:
        codes = suppressed.get(finding.line, ())
        if "all" in codes or finding.code in codes:
            continue
        out.append(finding)
    return sorted(out, key=lambda f: (f.path, f.line, f.col, f.code))


def check_file(path: Path, root: Optional[Path] = None) -> List[Finding]:
    return check_source(path.read_text(encoding="utf-8"), path, root=root)


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" in sub.parts or any(
                    part.startswith(".") for part in sub.parts
                ):
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path


def run_paths(
    paths: Sequence[Path],
    select: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, root=root))
    if select:
        findings = [f for f in findings if f.code in select or f.code == "CHC000"]
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chclint", description="CHC repo-invariant linter (see DESIGN.md §9.1)"
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule codes to enable (default: all)",
    )
    args = parser.parse_args(argv)

    select = {code.strip() for code in args.select.split(",") if code.strip()} or None
    if select and not select <= set(ALL_RULES):
        parser.error(f"unknown rule codes: {sorted(select - set(ALL_RULES))}")

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {missing[0]}")

    findings = run_paths(paths, select=select)
    if args.json:
        report = {
            "tool": "chclint",
            "rules": ALL_RULES,
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"chclint: {len(findings)} finding(s)")
    if any(f.code == "CHC000" for f in findings):
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
