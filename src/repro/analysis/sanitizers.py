"""Runtime sanitizers for CHC invariants (DESIGN.md §9.2).

Three detectors, each loud-by-construction — they *raise* at the first
violation, naming the parties, instead of letting a race corrupt state
silently or a backpressure cycle hang until pytest-timeout:

- :class:`OwnershipSanitizer` — a TSan analogue for CHC state: records
  ``storage key → (writer instance, handover epoch)`` and raises
  :class:`OwnershipRaceError` when a *different* instance's write is
  applied to per-flow state without an intervening ownership transfer
  (Figure-4 bulk move, associate/disassociate, takeover, or clone
  registration). Shared (cross-flow) objects carry no instance ID and are
  serialized by the store — multi-writer access to them is legal and
  ignored. Writes the store *rejects* are already defended and are only
  counted, not raised.
- :class:`ClockSanitizer` — logical clocks must be strictly monotone per
  root, **across failovers**: a recovered root that re-issues an old
  clock would resurrect retired log entries and break duplicate
  suppression. Raises :class:`ClockMonotonicityError`.
- :class:`WaitGraph` — a deadlock detector over the backpressure wait
  edges (worker-queue ``space_event``, NIC ``deliver_wait``, hop-space
  waits, RPC call waiters). Every park registers a labelled edge
  ``waiter → holder``; a cycle raises :class:`DeadlockError` naming the
  full loop at the moment it closes.

All state is keyed to one :class:`~repro.simnet.engine.Simulator`; the
suite resets itself when it sees a different simulator object, so one
installed suite serves an entire multi-run campaign.

Errors derive from :class:`AssertionError`: a sanitizer firing inside a
simulator process aborts ``sim.run`` with the diagnostic, exactly like a
failed invariant assertion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

KEY_SEP = "\x1f"  # StateKey.storage_key separator: vertex \x1f obj \x1f flow


class SanitizerError(AssertionError):
    """Base class for all sanitizer violations."""


class OwnershipRaceError(SanitizerError):
    """Two instances wrote one per-flow key without a handover between."""


class ClockMonotonicityError(SanitizerError):
    """A root issued a logical clock that does not exceed its last one."""


class DeadlockError(SanitizerError):
    """The backpressure wait graph closed a cycle."""


class OwnershipSanitizer:
    """Track per-flow writers and handover epochs; raise on silent races."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        # key -> (writer instance, epoch at time of write)
        self._writers: Dict[str, Tuple[str, int]] = {}
        # key -> (client-side cache writer, epoch at time of write)
        self._cache_writers: Dict[str, Tuple[str, int]] = {}
        # key -> current handover epoch (bumped by every transfer)
        self._epochs: Dict[str, int] = {}
        # clone -> original (clones legitimately co-write the original's keys)
        self._clone_of: Dict[str, str] = {}
        self.writes_checked = 0
        self.cache_writes_checked = 0
        self.transfers_seen = 0
        self.rejects_seen = 0

    @staticmethod
    def _is_shared(key: str) -> bool:
        """Shared/cross-flow objects (empty flow part) allow multi-writer."""
        parts = key.split(KEY_SEP)
        return len(parts) != 3 or parts[2] == ""

    def _same_party(self, a: str, b: str) -> bool:
        if a == b:
            return True
        return self._clone_of.get(a) == b or self._clone_of.get(b) == a

    def note_transfer(self, key: str, new_owner: Optional[str], kind: str) -> None:
        """An ownership transfer touched ``key`` (move/associate/takeover)."""
        self.transfers_seen += 1
        self._epochs[key] = self._epochs.get(key, 0) + 1

    def note_clone(self, original: str, clone: str, register: bool) -> None:
        if register:
            self._clone_of[clone] = original
        else:
            self._clone_of.pop(clone, None)

    def note_reject(self, key: str, instance: str, owner: Optional[str]) -> None:
        """The store refused a wrong-owner write — defended, just counted."""
        self.rejects_seen += 1

    def note_apply(self, key: str, instance: str) -> None:
        """A mutation by ``instance`` is about to be applied to ``key``."""
        if not instance or self._is_shared(key):
            return
        self.writes_checked += 1
        epoch = self._epochs.get(key, 0)
        previous = self._writers.get(key)
        if (
            previous is not None
            and previous[1] == epoch
            and not self._same_party(previous[0], instance)
        ):
            raise OwnershipRaceError(
                f"ownership race on per-flow key {key.replace(KEY_SEP, '/')!r}: "
                f"instance {instance!r} wrote after {previous[0]!r} with no "
                f"ownership transfer in between (handover epoch {epoch}) — "
                "a Figure-4 move, associate, or takeover must separate writers"
            )
        self._writers[key] = (instance, epoch)

    def note_cache_write(self, key: str, instance: str) -> None:
        """``instance`` populated its client-side cache for ``key``.

        Two clients caching the same per-flow key inside one handover
        epoch means both believe they own the flow: the next local apply
        on either side silently diverges from the store. A planned
        re-home (rolling upgrade, store replacement) is exactly when this
        window opens, so cache fills are checked with the same
        epoch/clone discipline as store applies.
        """
        if not instance or self._is_shared(key):
            return
        self.cache_writes_checked += 1
        epoch = self._epochs.get(key, 0)
        previous = self._cache_writers.get(key)
        if (
            previous is not None
            and previous[1] == epoch
            and not self._same_party(previous[0], instance)
        ):
            raise OwnershipRaceError(
                f"client cache co-write on per-flow key "
                f"{key.replace(KEY_SEP, '/')!r}: instance {instance!r} cached "
                f"it after {previous[0]!r} with no ownership transfer in "
                f"between (handover epoch {epoch}) — both clients would apply "
                "locally against diverging copies"
            )
        self._cache_writers[key] = (instance, epoch)


class ClockSanitizer:
    """Logical clocks strictly increase per root, across failovers."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._last: Dict[int, Tuple[int, str]] = {}  # root_id -> (clock, issuer)
        self.clocks_checked = 0

    def note_issue(self, root_id: int, clock: int, issuer: str) -> None:
        self.clocks_checked += 1
        last = self._last.get(root_id)
        if last is not None and clock <= last[0]:
            raise ClockMonotonicityError(
                f"root id {root_id} ({issuer!r}) issued clock {clock} after "
                f"{last[0]} (issued by {last[1]!r}) — logical clocks must be "
                "strictly monotone per root, including across failover resume"
            )
        self._last[root_id] = (clock, issuer)


class WaitGraph:
    """Labelled backpressure wait edges with eager cycle detection.

    Nodes are strings (``rx:<instance>``, ``wkr:<instance>``,
    ``nic:<instance>``, ``rpc:<endpoint>``). Edges are counted — the same
    park can be outstanding multiple times — and removed when the wait
    completes. Adding an edge whose destination can already reach its
    source raises :class:`DeadlockError` with the full cycle spelled out.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._edges: Dict[str, Dict[str, int]] = {}
        # timed (soft) waits: a timeout breaks them, so they can never
        # wedge the system — tracked for the report, excluded from cycles
        self._soft_edges: Dict[str, Dict[str, int]] = {}
        self.edges_added = 0
        self.soft_edges_added = 0
        self.max_outstanding = 0

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """A path start→…→goal along current edges, or ``None``."""
        parents: Dict[str, Optional[str]] = {start: None}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in self._edges.get(node, ()):
                if nxt in parents:
                    continue
                parents[nxt] = node
                if nxt == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])  # type: ignore[arg-type]
                    path.reverse()
                    return path
                frontier.append(nxt)
        return None

    def add(self, src: str, dst: str, soft: bool = False) -> None:
        if soft:
            # A timed wait (RPC retransmission timer, bounded drain poll)
            # is broken by its own timeout: a cycle through it resolves on
            # its own, so reporting it as a deadlock would be a false
            # positive — exactly what long planned-operation drains used
            # to trip. Count it, keep it out of the reachability graph.
            outgoing = self._soft_edges.setdefault(src, {})
            outgoing[dst] = outgoing.get(dst, 0) + 1
            self.soft_edges_added += 1
            return
        back = self._path(dst, src)
        outgoing = self._edges.setdefault(src, {})
        outgoing[dst] = outgoing.get(dst, 0) + 1
        self.edges_added += 1
        outstanding = sum(
            count for targets in self._edges.values() for count in targets.values()
        )
        self.max_outstanding = max(self.max_outstanding, outstanding)
        if back is not None:
            cycle = [src] + back  # src -> dst -> ... -> src
            raise DeadlockError("backpressure deadlock: " + " -> ".join(cycle))

    def remove(self, src: str, dst: str, soft: bool = False) -> None:
        table = self._soft_edges if soft else self._edges
        outgoing = table.get(src)
        if not outgoing or dst not in outgoing:
            return  # reset() may have dropped the edge mid-wait
        if outgoing[dst] <= 1:
            del outgoing[dst]
            if not outgoing:
                del table[src]
        else:
            outgoing[dst] -= 1


class SanitizerSuite:
    """The installable bundle; product hooks call the ``note_*``/``wait_*``
    methods below (see :mod:`repro.analysis.runtime` for the hook idiom)."""

    def __init__(self, ownership: bool = True, clocks: bool = True, deadlock: bool = True):
        self.ownership = OwnershipSanitizer() if ownership else None
        self.clocks = ClockSanitizer() if clocks else None
        self.waits = WaitGraph() if deadlock else None
        self._sim = None
        self.runs_observed = 0
        self._totals: Dict[str, int] = {}

    def _current_counters(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        if self.ownership is not None:
            out["writes_checked"] = self.ownership.writes_checked
            out["cache_writes_checked"] = self.ownership.cache_writes_checked
            out["transfers_seen"] = self.ownership.transfers_seen
            out["rejects_seen"] = self.ownership.rejects_seen
        if self.clocks is not None:
            out["clocks_checked"] = self.clocks.clocks_checked
        if self.waits is not None:
            out["wait_edges_added"] = self.waits.edges_added
            out["wait_soft_edges_added"] = self.waits.soft_edges_added
            out["wait_edges_peak"] = self.waits.max_outstanding
        return out

    def bind(self, sim) -> None:
        """Reset all detectors when a different simulator shows up."""
        if sim is not self._sim:
            for key, value in self._current_counters().items():
                if key.endswith("_peak"):
                    self._totals[key] = max(self._totals.get(key, 0), value)
                else:
                    self._totals[key] = self._totals.get(key, 0) + value
            self._sim = sim
            self.runs_observed += 1
            for detector in (self.ownership, self.clocks, self.waits):
                if detector is not None:
                    detector.reset()

    # ------------------------------------------------------------------
    # store-side hooks
    # ------------------------------------------------------------------

    def note_store_apply(self, sim, key: str, instance: str) -> None:
        if self.ownership is not None:
            self.bind(sim)
            self.ownership.note_apply(key, instance)

    def note_store_reject(self, sim, key: str, instance: str, owner: Optional[str]) -> None:
        if self.ownership is not None:
            self.bind(sim)
            self.ownership.note_reject(key, instance, owner)

    def note_store_transfer(self, sim, key: str, new_owner: Optional[str], kind: str) -> None:
        if self.ownership is not None:
            self.bind(sim)
            self.ownership.note_transfer(key, new_owner, kind)

    def note_store_clone(self, sim, original: str, clone: str, register: bool) -> None:
        if self.ownership is not None:
            self.bind(sim)
            self.ownership.note_clone(original, clone, register)

    def note_cache_write(self, sim, key: str, instance: str) -> None:
        if self.ownership is not None:
            self.bind(sim)
            self.ownership.note_cache_write(key, instance)

    # ------------------------------------------------------------------
    # clock hook
    # ------------------------------------------------------------------

    def note_clock_issue(self, sim, root_id: int, clock: int, issuer: str) -> None:
        if self.clocks is not None:
            self.bind(sim)
            self.clocks.note_issue(root_id, clock, issuer)

    # ------------------------------------------------------------------
    # wait-graph hooks
    # ------------------------------------------------------------------

    def wait_edge(self, sim, src: str, dst: str, soft: bool = False) -> None:
        if self.waits is not None:
            self.bind(sim)
            self.waits.add(src, dst, soft=soft)

    def release_edge(self, src: str, dst: str, soft: bool = False) -> None:
        if self.waits is not None:
            self.waits.remove(src, dst, soft=soft)

    # ------------------------------------------------------------------

    def report(self) -> Dict[str, int]:
        """Cumulative counters across every run this suite observed."""
        out = dict(self._totals)
        for key, value in self._current_counters().items():
            if key.endswith("_peak"):
                out[key] = max(out.get(key, 0), value)
            else:
                out[key] = out.get(key, 0) + value
        out["runs_observed"] = self.runs_observed
        return out
