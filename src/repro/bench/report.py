"""Paper-vs-measured reporting for the benchmark harness.

Each benchmark builds a :class:`ResultTable` with the same rows/series
the paper reports, prints it, and persists it under
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence


def results_dir() -> str:
    """benchmarks/results/ next to this repository's benchmarks."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


@dataclass
class ResultTable:
    """A titled table with optional paper-reference annotations."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells) -> None:
        self.rows.append(cells)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        headers = [str(h) for h in self.headers]
        widths = [len(h) for h in headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(row: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

        out = [self.title, "=" * len(self.title), line(headers), line(["-" * w for w in widths])]
        out.extend(line(row) for row in cells)
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def write_result(experiment_id: str, tables: Iterable[ResultTable], echo: bool = True) -> str:
    """Persist (and print) an experiment's tables; returns the file path."""
    body = "\n\n".join(table.render() for table in tables) + "\n"
    path = os.path.join(results_dir(), f"{experiment_id}.txt")
    with open(path, "w") as fh:
        fh.write(body)
    if echo:
        print()
        print(body)
    return path


def fmt_us(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}us"


def fmt_gbps(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}Gbps"
