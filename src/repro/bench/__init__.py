"""Benchmark harness helpers.

* :mod:`~repro.bench.calibration` — the calibrated simulation constants
  and the §7.1 externalization-model factory.
* :mod:`~repro.bench.scenarios` — reusable experiment builders (single-NF
  runs under each model, the paper's 4-NF chain, the Figure 2 trojan
  chain).
* :mod:`~repro.bench.report` — paper-vs-measured tables, written both to
  stdout and to ``benchmarks/results/``.
"""

from repro.bench.calibration import (
    MODELS,
    CalibratedParams,
    bench_scale,
    params_for_model,
)
from repro.bench.report import ResultTable, results_dir, write_result
from repro.bench.scenarios import (
    SingleNfResult,
    build_paper_chain,
    build_trojan_chain,
    run_single_nf,
)

__all__ = [
    "CalibratedParams",
    "MODELS",
    "ResultTable",
    "SingleNfResult",
    "bench_scale",
    "build_paper_chain",
    "build_trojan_chain",
    "params_for_model",
    "results_dir",
    "run_single_nf",
    "write_result",
]
