"""Calibrated simulation constants (DESIGN.md §4).

Calibration anchors, all from the paper:

* traditional NF: median per-packet processing ≈ 2.1µs, per-instance
  throughput ≈ 9.5Gbps (Figures 8, 10);
* one blocking store access, uncontended ≈ 29µs (§7.2 clock persistence);
* store instance ≈ 5.1M ops/s over 4 threads (§7.1).

Everything else follows from the protocols. ``params_for_model`` builds
the §7.1 externalization models:

====== ===========================================================
T        traditional NF (local state; separate harness, no store)
EO       externalized state, non-blocking ops, ACKs awaited
EO+C     + Table 1 caching
EO+C+NA  + no ACK wait (framework handles retransmission) — CHC's
         default configuration
====== ===========================================================
"""

from __future__ import annotations

import os

from repro.core.chain_runtime import RuntimeParams

CalibratedParams = RuntimeParams  # the calibrated defaults live on RuntimeParams

MODELS = ("T", "EO", "EO+C", "EO+C+NA")


def params_for_model(model: str, **overrides) -> RuntimeParams:
    """RuntimeParams for one of the §7.1 externalization models."""
    if model == "EO":
        config = dict(caching_enabled=False, wait_for_acks=True)
    elif model == "EO+C":
        config = dict(caching_enabled=True, wait_for_acks=True)
    elif model == "EO+C+NA":
        config = dict(caching_enabled=True, wait_for_acks=False)
    elif model == "T":
        raise ValueError(
            "the traditional model runs on TraditionalNFHarness, not ChainRuntime"
        )
    else:
        raise ValueError(f"unknown model {model!r}; expected one of {MODELS}")
    config.update(overrides)
    return RuntimeParams(**config)


def bench_scale(default: float = 0.002) -> float:
    """Trace scale for benchmarks; override with REPRO_BENCH_SCALE.

    0.002 means ~12.8K packets of the Trace2 analogue per run — enough for
    stable percentiles while keeping a full benchmark pass to minutes.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", default))
