"""Reusable experiment builders for the benchmark harness and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.baselines.traditional import TraditionalNFHarness
from repro.bench.calibration import params_for_model
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.nf_api import NetworkFunction
from repro.nfs import (
    Firewall,
    LoadBalancer,
    Nat,
    PortscanDetector,
    Scrubber,
    TrojanDetector,
)
from repro.simnet.engine import Simulator
from repro.simnet.monitor import LatencyRecorder
from repro.traffic.trace import Trace
from repro.traffic.workload import ReplaySource


@dataclass
class SingleNfResult:
    """Outcome of one single-NF model run."""

    model: str
    recorder: LatencyRecorder
    gbps: float
    processed: int
    sim_time_us: float
    runtime: Optional[ChainRuntime] = None
    harness: Optional[TraditionalNFHarness] = None


def run_single_nf(
    nf_factory: Callable[[], NetworkFunction],
    model: str,
    trace: Trace,
    load_fraction: float = 0.5,
    until_us: float = 60_000_000.0,
    params: Optional[RuntimeParams] = None,
) -> SingleNfResult:
    """Run one NF over a trace under one §7.1 externalization model.

    ``model`` is "T", "EO", "EO+C" or "EO+C+NA". Returns per-packet
    processing times and goodput.
    """
    sim = Simulator()
    if model == "T":
        harness = TraditionalNFHarness(sim, nf_factory(), name=f"T-{nf_factory().name}")
        ReplaySource(sim, trace.packets, harness.inject, load_fraction=load_fraction)
        sim.run(until=until_us)
        return SingleNfResult(
            model=model,
            recorder=harness.recorder,
            gbps=harness.throughput.gbps(),
            processed=harness.processed,
            sim_time_us=sim.now,
            harness=harness,
        )

    run_params = params or params_for_model(model)
    chain = LogicalChain(f"single-{model}")
    chain.add_vertex("nf", nf_factory, entry=True)
    runtime = ChainRuntime(sim, chain, params=run_params)
    ReplaySource(sim, trace.packets, runtime.inject, load_fraction=load_fraction)
    sim.run(until=until_us)
    instance = runtime.instances_of("nf")[0]
    return SingleNfResult(
        model=model,
        recorder=instance.recorder,
        gbps=instance.throughput.gbps(),
        processed=instance.stats.processed,
        sim_time_us=sim.now,
        runtime=runtime,
    )


def build_paper_chain(
    sim: Simulator,
    params: Optional[RuntimeParams] = None,
    nat_parallelism: int = 1,
    scan_parallelism: int = 1,
) -> ChainRuntime:
    """The §7.1 evaluation chain: NAT -> portscan -> load balancer, with
    the trojan detector operating off-path attached to the NAT."""
    chain = LogicalChain("paper-chain")
    chain.add_vertex("nat", Nat, parallelism=nat_parallelism, entry=True)
    chain.add_vertex("scan", PortscanDetector, parallelism=scan_parallelism)
    chain.add_vertex("lb", LoadBalancer)
    chain.add_vertex("trojan", TrojanDetector)
    chain.add_edge("nat", "scan")
    chain.add_edge("scan", "lb")
    chain.add_edge("nat", "trojan", mirror=True)
    return ChainRuntime(sim, chain, params=params)


def build_trojan_chain(
    sim: Simulator,
    params: Optional[RuntimeParams] = None,
    use_clocks: bool = True,
    n_scrubbers: int = 3,
) -> ChainRuntime:
    """The Figure 2 chain: firewall -> scrubbers -> off-path trojan
    detector. Scrubber instances are per-protocol (SSH/FTP/IRC flows land
    on different instances via port-based partitioning)."""
    chain = LogicalChain("figure2")
    chain.add_vertex("firewall", Firewall, entry=True)
    chain.add_vertex("scrubber", Scrubber, parallelism=n_scrubbers)
    chain.add_vertex("trojan", lambda: TrojanDetector(use_clocks=use_clocks))
    chain.add_edge("firewall", "scrubber")
    chain.add_edge("scrubber", "trojan", mirror=True)
    runtime = ChainRuntime(sim, chain, params=params)
    # Per-protocol scrubbing: partition scrubber traffic by destination
    # port so each protocol's flows share one instance (the Figure 2
    # setup: "Each scrubber instance processes either FTP, SSH, or IRC").
    runtime.splitter("scrubber").partition_fields = ("dst_port",)
    runtime._apply_exclusivity()  # re-derive caching rights under the new split
    return runtime
