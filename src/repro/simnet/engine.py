"""Generator-based discrete-event simulation engine.

The engine is deliberately small (a SimPy-flavoured core) but complete enough
to model the CHC dataplane: processes are Python generators that ``yield``
:class:`Event` objects; the simulator resumes them when the event fires.

Time is a ``float`` in **microseconds**. All ordering is deterministic: every
scheduled callback is keyed by ``(time, sequence_number)`` so two events
scheduled for the same instant fire in scheduling order, and no wall-clock or
unseeded randomness is consulted anywhere.

Hot-path design (see DESIGN.md "Engine performance model"):

* Zero-delay work — event callback delivery, process resumption, interrupts —
  goes onto a **microtask FIFO** (a ``deque``) instead of the time heap. A
  microtask's key is ``(now, seq)``, exactly what the heap would have used,
  and the run loop interleaves the two queues by that key, so the observable
  event order is bit-for-bit identical to a single-heap engine (the
  determinism regression test in ``tests/test_engine_hotpath.py`` proves it
  against a reference implementation).
* :class:`Channel` stores items and parked getters in ``deque``s: ``put`` /
  ``get`` / ``put_front`` are O(1) where the seed engine paid O(n) per packet
  for ``list.pop(0)`` / ``insert(0)``.
* Every engine object declares ``__slots__``, and the run loops bind heap
  ops and queue methods to locals.

The simulator exposes cheap counters (``events_processed``,
``microtasks_processed``, ``heap_peak``; channels track ``depth_peak``)
surfaced through :mod:`repro.simnet.monitor` for perf harnesses.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class ProcessKilled(Exception):
    """Thrown into a process generator when it is killed (fail-stop)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    waiting processes are resumed at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_ok", "_value", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        # Lazily created on first add_callback: most events (channel gets,
        # timeouts with a single waiter) carry 0–1 callbacks, and the empty
        # list showed up in hot-path allocation profiles.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._triggered = False
        self._ok = True
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self._schedule_callbacks()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception; waiters have it raised."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self._triggered = True
        self._ok = False
        self._value = exc
        self._schedule_callbacks()
        return self

    def _schedule_callbacks(self) -> None:
        callbacks = self.callbacks
        if not callbacks:
            return
        self.callbacks = None
        call_soon = self.sim.call_soon
        for callback in callbacks:
            call_soon(callback, self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event triggers (possibly now)."""
        if self._triggered:
            self.sim.call_soon(callback, self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> bool:
        """Detach a not-yet-delivered callback; returns whether it was found."""
        if not self.callbacks:
            return False
        try:
            self.callbacks.remove(callback)
            return True
        except ValueError:
            return False


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # A static name: timeouts are created per packet per hop, and the
        # formatted name was a measurable share of hot-path allocation.
        super().__init__(sim, name="timeout")
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a ``(event, value)`` pair identifying which event won. A
    failed child event fails the :class:`AnyOf` with the child's exception.

    When the first child fires, the :class:`AnyOf` detaches its callback from
    every still-pending child, so losers no longer hold a reference to (or
    fire into) the triggered parent — e.g. the RPC retransmission path races
    a response against a timer per attempt, and the losing event of each
    race must not accumulate stale callbacks.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children: tuple = tuple(events)
        for event in self._children:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        children, self._children = self._children, ()
        for child in children:
            if child is not event and not child._triggered:
                child.remove_callback(self._on_child)
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


class AllOf(Event):
    """Fires when every child event has fired successfully."""

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self._triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return on_child


class Process(Event):
    """Drives a generator; itself an event that fires when the body returns.

    Killing a process (:meth:`kill`) models fail-stop crashes: the generator
    is abandoned immediately and never resumed, and pending wake-ups for it
    are ignored.
    """

    __slots__ = ("_generator", "_alive", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._alive = True
        self._waiting_on: Optional[Event] = None
        sim.call_soon(self._step, None, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Fail-stop the process: it never runs again."""
        if not self._alive:
            return
        self._alive = False
        self._waiting_on = None
        self._generator.close()
        if not self._triggered:
            self.fail(ProcessKilled(self.name))

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its wait point."""
        if not self._alive:
            return
        self.sim.call_soon(self._step, None, Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if not self._alive or event is not self._waiting_on:
            return  # stale wake-up (process was killed or interrupted)
        self._waiting_on = None
        if event._ok:
            self._step(event._value, None)
        else:
            self._step(None, event._value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            if not self._triggered:
                self.succeed(stop.value)
            return
        except ProcessKilled:
            self._alive = False
            if not self._triggered:
                self.fail(ProcessKilled(self.name))
            return
        except BaseException as error:  # noqa: BLE001 - a crashed process
            # fails its Process event instead of unwinding the event loop.
            self._alive = False
            if not self._triggered:
                self.fail(error)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Channel:
    """Unbounded FIFO channel with event-based ``get``.

    Models the framework-managed message queues between NF instances
    (§4.2). The framework can *operate on queue contents* — e.g. delete
    duplicate messages before they are consumed (§5.3) — via
    :meth:`remove_if`, and inspect depth via :func:`len` (used by straggler
    detection logic).

    Items and parked getters live in ``deque``s, so every queue operation on
    the packet path is O(1). ``depth_peak`` records the high-water mark of
    the queue (a free byproduct of ``put`` useful for perf forensics).

    A channel may be given a ``capacity``: :meth:`put` then refuses items
    (returns ``False``) once the backlog reaches the bound, and producers
    can park on :meth:`space_event` until a consumer drains an item.
    Control-plane traffic that must never be refused uses
    :meth:`put_forced`. The capacity machinery stays entirely off the hot
    path when unused (``capacity is None`` and no space waiters).
    """

    __slots__ = ("sim", "name", "capacity", "_items", "_getters",
                 "_space_waiters", "depth_peak")

    def __init__(self, sim: "Simulator", name: str = "",
                 capacity: Optional[int] = None):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque = deque()
        self._space_waiters: deque = deque()
        self.depth_peak = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> bool:
        """Enqueue ``item``; wakes one waiting getter if any.

        Returns ``False`` (item NOT enqueued) when the channel is bounded
        and full; otherwise ``True``. An item handed straight to a parked
        getter never counts against the bound.
        """
        items = self._items
        if (
            self.capacity is not None
            and not self._getters
            and len(items) >= self.capacity
        ):
            return False
        items.append(item)
        if self._getters:
            self._dispatch()
        elif len(items) > self.depth_peak:
            self.depth_peak = len(items)
        return True

    def put_forced(self, item: Any) -> None:
        """Enqueue ``item`` ignoring any capacity bound (control traffic)."""
        items = self._items
        items.append(item)
        if self._getters:
            self._dispatch()
        elif len(items) > self.depth_peak:
            self.depth_peak = len(items)

    def put_front(self, item: Any) -> None:
        """Enqueue ``item`` at the head (used when re-queuing after replay)."""
        self._items.appendleft(item)
        if self._getters:
            self._dispatch()
        elif len(self._items) > self.depth_peak:
            self.depth_peak = len(self._items)

    def _dispatch(self) -> None:
        getters, items = self._getters, self._items
        while getters and items:
            getters.popleft().succeed(items.popleft())
        if self._space_waiters:
            self._notify_space()

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.sim, name=self.name)
        items = self._items
        if items:
            event.succeed(items.popleft())
            if self._space_waiters:
                self._notify_space()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Dequeue immediately, or return ``None`` if empty."""
        if self._items:
            item = self._items.popleft()
            if self._space_waiters:
                self._notify_space()
            return item
        return None

    def has_space(self) -> bool:
        """Whether an ordinary :meth:`put` would currently be accepted."""
        if self.capacity is None or self._getters:
            return True
        return len(self._items) < self.capacity

    def space_event(self) -> Event:
        """An event that fires once the channel can accept a :meth:`put`.

        Fires immediately when there is already room. Waiters are woken in
        FIFO order, one per slot freed, so competing producers make
        progress fairly.
        """
        event = Event(self.sim, name=self.name)
        if self.has_space():
            event.succeed(None)
        else:
            self._space_waiters.append(event)
        return event

    def _notify_space(self) -> None:
        # One waiter per free slot: a woken producer usually puts
        # immediately, so over-waking would just thrash.
        waiters = self._space_waiters
        while waiters and self.has_space():
            waiter = waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(None)
                # The woken producer has not put yet; reserve its slot by
                # waking at most one waiter per notify round when bounded.
                if self.capacity is not None:
                    break

    def items(self) -> List[Any]:
        """A snapshot of queued items (read-only view for the framework)."""
        return list(self._items)

    def remove_if(self, predicate: Callable[[Any], bool]) -> int:
        """Delete queued items matching ``predicate``; returns count removed."""
        before = len(self._items)
        self._items = deque(item for item in self._items if not predicate(item))
        removed = before - len(self._items)
        if removed and self._space_waiters:
            self._notify_space()
        return removed

    def clear(self) -> int:
        removed = len(self._items)
        self._items.clear()
        if removed and self._space_waiters:
            self._notify_space()
        return removed


class Simulator:
    """The discrete event loop.

    ``now`` is virtual time in microseconds. Determinism: every callback is
    keyed by ``(time, seq)`` where ``seq`` is a monotone counter shared by
    the time heap and the microtask FIFO, and the run loop always executes
    the smallest key next.

    Invariants the microtask fast-path relies on:

    * heap entries never lie in the past (``time >= now`` whenever the loop
      is choosing what to run), and
    * a microtask's due time is the ``now`` at which it was enqueued, and the
      loop never advances ``now`` while a microtask is pending — so a
      pending microtask is always due exactly at ``now``.

    Hence the next callback is the microtask head unless the heap head is due
    at ``now`` with a smaller ``seq`` (scheduled earlier at this instant).
    """

    __slots__ = (
        "_now",
        "_heap",
        "_micro",
        "_seq",
        "events_processed",
        "microtasks_processed",
        "heap_peak",
    )

    def __init__(self):
        self._now = 0.0
        self._heap: List[tuple] = []
        self._micro: deque = deque()
        self._seq = 0
        self.events_processed = 0
        self.microtasks_processed = 0
        self.heap_peak = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` microseconds."""
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            self._micro.append((seq, callback, args))
            return
        if delay < 0:
            self._seq = seq
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heap = self._heap
        heapq.heappush(heap, (self._now + delay, seq, callback, args))
        if len(heap) > self.heap_peak:
            self.heap_peak = len(heap)

    def call_soon(self, callback: Callable, *args: Any) -> None:
        """Enqueue ``callback(*args)`` to run at the current instant.

        Equivalent to ``schedule(0.0, ...)`` minus the delay checks — this is
        the microtask fast-path used by event callback delivery and process
        resumption.
        """
        seq = self._seq
        self._seq = seq + 1
        self._micro.append((seq, callback, args))

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a process driving ``generator``; returns its Process event."""
        return Process(self, generator, name=name)

    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> float:
        """Run until both queues drain or ``until`` (µs) is reached.

        Returns the simulation time when the run stopped. ``max_events`` is a
        runaway-loop backstop, not a tuning knob.
        """
        heap = self._heap
        micro = self._micro
        heappop = heapq.heappop
        popleft = micro.popleft
        count = 0
        micro_count = 0
        now = self._now  # mirror of self._now; only this loop advances it
        try:
            while heap or micro:
                if micro and (
                    not heap or heap[0][0] > now or heap[0][1] > micro[0][0]
                ):
                    _seq, callback, args = popleft()
                    micro_count += 1
                else:
                    time = heap[0][0]
                    if until is not None and time > until:
                        self._now = until
                        return until
                    _time, _seq, callback, args = heappop(heap)
                    now = self._now = time
                callback(*args)
                count += 1
                if count > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self.events_processed += count
            self.microtasks_processed += micro_count
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def next_event_time(self) -> Optional[float]:
        """Due time of the earliest pending work, or None when idle.

        The distributed shard loop (repro.dist) paces virtual time against
        the wall clock and needs to know how long it may block on a socket
        before the simulation has something to do: a pending microtask is
        due *now*; otherwise the heap head bounds the sleep.
        """
        if self._micro:
            return self._now
        if self._heap:
            return self._heap[0][0]
        return None

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Start a process, run until *it* completes, return its value.

        Stops stepping as soon as the process triggers — background
        periodic processes (checkpoint loops, pollers) keep the heap
        non-empty forever and must not keep this call spinning.
        """
        proc = self.process(generator, name=name)
        heap = self._heap
        micro = self._micro
        heappop = heapq.heappop
        popleft = micro.popleft
        count = 0
        micro_count = 0
        now = self._now
        try:
            while (heap or micro) and not proc._triggered:
                if micro and (
                    not heap or heap[0][0] > now or heap[0][1] > micro[0][0]
                ):
                    _seq, callback, args = popleft()
                    micro_count += 1
                else:
                    time, _seq, callback, args = heappop(heap)
                    now = self._now = time
                callback(*args)
                count += 1
                if count > 200_000_000:
                    raise SimulationError("run_process exceeded event budget")
        finally:
            self.events_processed += count
            self.microtasks_processed += micro_count
        if not proc._triggered:
            raise SimulationError(f"process {proc.name!r} never completed (deadlock?)")
        if not proc._ok:
            raise proc._value
        return proc._value
