"""Point-to-point links and a named-endpoint network fabric.

The network does **not** guarantee ordering or delivery (the paper's §2.1:
"The network today already reorders or drops packets"); links can be
configured with latency jitter (which reorders) and a loss probability. The
defaults are lossless, constant-latency links, which is what the evaluation
testbed (a single rack) behaves like.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.simnet.engine import Channel, Simulator


@dataclass
class Link:
    """One-way link properties between two endpoints.

    ``latency_us`` is the one-way propagation delay; ``jitter_us`` adds a
    uniform random extra delay in ``[0, jitter_us]`` (this is what reorders
    packets); ``loss`` is an independent drop probability per message.
    """

    latency_us: float = 14.0
    jitter_us: float = 0.0
    loss: float = 0.0

    def delay(self, rng: random.Random) -> Optional[float]:
        """One sampled traversal delay, or ``None`` if the message is lost."""
        if self.loss > 0 and rng.random() < self.loss:
            return None
        if self.jitter_us > 0:
            return self.latency_us + rng.random() * self.jitter_us
        return self.latency_us


class Envelope:
    """A message in flight on the network.

    Slotted plain class: one envelope is allocated per message, making this
    one of the hottest allocation sites in the simulator.
    """

    __slots__ = ("src", "dst", "payload", "sent_at")

    def __init__(self, src: str, dst: str, payload: Any, sent_at: float = 0.0):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.sent_at = sent_at

    def __repr__(self) -> str:
        return f"Envelope({self.src!r} -> {self.dst!r}, sent_at={self.sent_at})"


class Network:
    """A fabric of named endpoints joined by configurable links.

    Endpoints register an inbox (:class:`Channel`) or a delivery callback.
    ``default_link`` is used for any pair without an explicit link, which
    keeps experiment setup terse (one RTT constant for the whole testbed).
    """

    def __init__(self, sim: Simulator, default_link: Optional[Link] = None, seed: int = 0):
        self.sim = sim
        self.default_link = default_link or Link()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._inboxes: Dict[str, Channel] = {}
        self._callbacks: Dict[str, Callable[[Envelope], None]] = {}
        self._down: set = set()
        self.rng = random.Random(seed)
        self.delivered = 0
        self.dropped = 0

    def register(self, name: str) -> Channel:
        """Register ``name`` and return its inbox channel.

        Re-registering a previously failed name clears its down flag (a
        failover component may adopt its predecessor's address).
        """
        if name in self._inboxes or name in self._callbacks:
            raise ValueError(f"endpoint {name!r} already registered")
        inbox = Channel(self.sim, name=f"inbox({name})")
        self._inboxes[name] = inbox
        self._down.discard(name)
        return inbox

    def register_callback(self, name: str, callback: Callable[[Envelope], None]) -> None:
        """Register ``name`` with a delivery callback instead of an inbox."""
        if name in self._inboxes or name in self._callbacks:
            raise ValueError(f"endpoint {name!r} already registered")
        self._callbacks[name] = callback
        self._down.discard(name)

    def unregister(self, name: str) -> None:
        self._inboxes.pop(name, None)
        self._callbacks.pop(name, None)

    def set_down(self, name: str, down: bool = True) -> None:
        """Mark an endpoint down (fail-stop): messages to it are dropped."""
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    def connect(self, src: str, dst: str, link: Link, bidirectional: bool = True) -> None:
        """Install an explicit link for the (src, dst) pair."""
        self._links[(src, dst)] = link
        if bidirectional:
            self._links[(dst, src)] = link

    def link_for(self, src: str, dst: str) -> Link:
        return self._links.get((src, dst), self.default_link)

    def send(self, src: str, dst: str, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst`` over the appropriate link."""
        link = self._links.get((src, dst)) or self.default_link
        delay = link.delay(self.rng)
        if delay is None:
            self.dropped += 1
            return
        self.sim.schedule(
            delay, self._deliver, Envelope(src, dst, payload, self.sim.now)
        )

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.dst in self._down:
            self.dropped += 1
            return
        inbox = self._inboxes.get(envelope.dst)
        if inbox is not None:
            inbox.put(envelope)
            self.delivered += 1
            return
        callback = self._callbacks.get(envelope.dst)
        if callback is not None:
            callback(envelope)
            self.delivered += 1
            return
        self.dropped += 1  # no such endpoint (e.g. crashed and unregistered)
