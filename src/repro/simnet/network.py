"""Point-to-point links and a named-endpoint network fabric.

The network does **not** guarantee ordering or delivery (the paper's §2.1:
"The network today already reorders or drops packets"); links can be
configured with latency jitter (which reorders) and a loss probability. The
defaults are lossless, constant-latency links, which is what the evaluation
testbed (a single rack) behaves like.

Beyond static links the fabric supports the adversarial conditions the
chaos campaigns (:mod:`repro.chaos`) compose:

* **partitions** — :meth:`Network.partition` splits the endpoints into
  groups; messages between different groups are dropped until
  :meth:`Network.heal`;
* **time-windowed degradation** — :meth:`Network.degrade` overlays extra
  loss / jitter / latency on matching (src, dst) pairs for a time window
  (loss bursts and latency spikes that start and stop mid-run);
* **drop accounting by cause** — every dropped message is attributed to
  ``loss``, ``endpoint_down``, ``unregistered`` or ``partition`` in
  :attr:`Network.drops`, so campaign reports can explain where messages
  went. ``Network.dropped`` stays as the total for backward compatibility.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.simnet.engine import Channel, Simulator


@dataclass
class Link:
    """One-way link properties between two endpoints.

    ``latency_us`` is the one-way propagation delay; ``jitter_us`` adds a
    uniform random extra delay in ``[0, jitter_us]`` (this is what reorders
    packets); ``loss`` is an independent drop probability per message.
    """

    latency_us: float = 14.0
    jitter_us: float = 0.0
    loss: float = 0.0

    def delay(self, rng: random.Random) -> Optional[float]:
        """One sampled traversal delay, or ``None`` if the message is lost."""
        if self.loss > 0 and rng.random() < self.loss:
            return None
        if self.jitter_us > 0:
            return self.latency_us + rng.random() * self.jitter_us
        return self.latency_us


@dataclass
class Degradation:
    """A time-windowed overlay on top of the static link parameters.

    ``src`` / ``dst`` of ``None`` match any endpoint. ``loss`` composes with
    the link's own loss as independent drop chances; ``jitter_us`` and
    ``extra_latency_us`` add to the link's values. Active while
    ``start <= now < end``.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    loss: float = 0.0
    jitter_us: float = 0.0
    extra_latency_us: float = 0.0
    start: float = 0.0
    end: float = math.inf

    def matches(self, src: str, dst: str, now: float) -> bool:
        if now < self.start or now >= self.end:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


class Envelope:
    """A message in flight on the network.

    Slotted plain class: one envelope is allocated per message, making this
    one of the hottest allocation sites in the simulator.
    """

    __slots__ = ("src", "dst", "payload", "sent_at")

    def __init__(self, src: str, dst: str, payload: Any, sent_at: float = 0.0):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.sent_at = sent_at

    def __repr__(self) -> str:
        return f"Envelope({self.src!r} -> {self.dst!r}, sent_at={self.sent_at})"


class Network:
    """A fabric of named endpoints joined by configurable links.

    Endpoints register an inbox (:class:`Channel`) or a delivery callback.
    ``default_link`` is used for any pair without an explicit link, which
    keeps experiment setup terse (one RTT constant for the whole testbed).
    """

    def __init__(self, sim: Simulator, default_link: Optional[Link] = None, seed: int = 0):
        self.sim = sim
        self.default_link = default_link or Link()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._inboxes: Dict[str, Channel] = {}
        self._callbacks: Dict[str, Callable[[Envelope], None]] = {}
        self._down: set = set()
        self.seed = seed
        self.rng = random.Random(seed)
        self.delivered = 0
        # drop accounting by cause; `dropped` (total) is derived from this
        self.drops: Dict[str, int] = {
            "loss": 0,
            "endpoint_down": 0,
            "unregistered": 0,
            "partition": 0,
        }
        # RPC-layer counters (incremented by RpcEndpoint; surfaced through
        # monitor.EngineCounters so campaign reports can attribute control-
        # plane churn).
        self.rpc_retries = 0
        self.rpc_timeouts = 0
        self.rpc_gaveups = 0
        self._partition: Optional[Dict[str, int]] = None  # endpoint -> group
        self._degradations: List[Degradation] = []
        # Distributed bridging hook (repro.dist, DESIGN.md §13): when an
        # envelope reaches an endpoint nobody registered locally, the
        # default route may claim it (returns True) — the shard bridge uses
        # this to put store-bound traffic on the wire. Unclaimed envelopes
        # still land in drops["unregistered"].
        self.default_route: Optional[Callable[[Envelope], bool]] = None
        self.bridged = 0

    @property
    def dropped(self) -> int:
        """Total messages dropped, all causes (backward-compatible view)."""
        return sum(self.drops.values())

    def account_drop(self, cause: str, count: int = 1) -> None:
        """Fold an out-of-fabric drop (NIC ring, overload shed) into the
        per-cause ledger so invariant checkers see one unified account."""
        self.drops[cause] = self.drops.get(cause, 0) + count

    def register(self, name: str) -> Channel:
        """Register ``name`` and return its inbox channel.

        Re-registering a previously failed name clears its down flag (a
        failover component may adopt its predecessor's address).
        """
        if name in self._inboxes or name in self._callbacks:
            raise ValueError(f"endpoint {name!r} already registered")
        inbox = Channel(self.sim, name=f"inbox({name})")
        self._inboxes[name] = inbox
        self._down.discard(name)
        return inbox

    def register_callback(self, name: str, callback: Callable[[Envelope], None]) -> None:
        """Register ``name`` with a delivery callback instead of an inbox."""
        if name in self._inboxes or name in self._callbacks:
            raise ValueError(f"endpoint {name!r} already registered")
        self._callbacks[name] = callback
        self._down.discard(name)

    def unregister(self, name: str) -> None:
        self._inboxes.pop(name, None)
        self._callbacks.pop(name, None)

    def set_down(self, name: str, down: bool = True) -> None:
        """Mark an endpoint down (fail-stop): messages to it are dropped."""
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    # ------------------------------------------------------------------
    # partitions and time-windowed degradation (chaos campaign hooks)
    # ------------------------------------------------------------------

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Partition the fabric: endpoints in different groups can't talk.

        ``groups`` is a list of endpoint-name collections. Messages whose
        src and dst both appear in (different) groups are dropped at send
        time and accounted as ``partition`` drops. Endpoints not listed in
        any group are unrestricted — they see every side (this models a
        partition of a subset of the rack, e.g. NFs cut off from the store
        while the root still reaches both). Calling :meth:`partition` again
        replaces the previous partition; :meth:`heal` removes it.
        """
        membership: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                membership[name] = index
        self._partition = membership

    def heal(self) -> None:
        """Remove the current partition (messages flow everywhere again)."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def _blocked_by_partition(self, src: str, dst: str) -> bool:
        membership = self._partition
        if membership is None:
            return False
        src_group = membership.get(src)
        dst_group = membership.get(dst)
        return src_group is not None and dst_group is not None and src_group != dst_group

    def degrade(
        self,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        *,
        loss: float = 0.0,
        jitter_us: float = 0.0,
        extra_latency_us: float = 0.0,
        start: Optional[float] = None,
        duration_us: Optional[float] = None,
    ) -> Degradation:
        """Overlay loss / jitter / latency on matching traffic for a window.

        ``src=None`` / ``dst=None`` are wildcards. The window defaults to
        starting now and never ending; expired degradations are pruned
        lazily. Returns the :class:`Degradation`, which can be removed early
        with :meth:`remove_degradation`.
        """
        begin = self.sim.now if start is None else start
        end = math.inf if duration_us is None else begin + duration_us
        degradation = Degradation(
            src=src,
            dst=dst,
            loss=loss,
            jitter_us=jitter_us,
            extra_latency_us=extra_latency_us,
            start=begin,
            end=end,
        )
        self._degradations.append(degradation)
        return degradation

    def remove_degradation(self, degradation: Degradation) -> None:
        try:
            self._degradations.remove(degradation)
        except ValueError:
            pass

    def _degraded_delay(self, link: Link, src: str, dst: str) -> Optional[float]:
        """Link delay with all active degradations applied (or None = lost)."""
        now = self.sim.now
        live: List[Degradation] = []
        loss = link.loss
        jitter = link.jitter_us
        extra = 0.0
        changed = False
        for degradation in self._degradations:
            if now >= degradation.end:
                changed = True  # expired; prune below
                continue
            live.append(degradation)
            if degradation.matches(src, dst, now):
                # independent drop chances compose
                loss = 1.0 - (1.0 - loss) * (1.0 - degradation.loss)
                jitter += degradation.jitter_us
                extra += degradation.extra_latency_us
        if changed:
            self._degradations = live
        rng = self.rng
        if loss > 0 and rng.random() < loss:
            return None
        delay = link.latency_us + extra
        if jitter > 0:
            delay += rng.random() * jitter
        return delay

    # ------------------------------------------------------------------
    # links and transmission
    # ------------------------------------------------------------------

    def connect(self, src: str, dst: str, link: Link, bidirectional: bool = True) -> None:
        """Install an explicit link for the (src, dst) pair."""
        self._links[(src, dst)] = link
        if bidirectional:
            self._links[(dst, src)] = link

    def link_for(self, src: str, dst: str) -> Link:
        return self._links.get((src, dst), self.default_link)

    def send(self, src: str, dst: str, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst`` over the appropriate link."""
        if self._partition is not None and self._blocked_by_partition(src, dst):
            self.drops["partition"] += 1
            return
        link = self._links.get((src, dst)) or self.default_link
        if self._degradations:
            delay = self._degraded_delay(link, src, dst)
        else:
            delay = link.delay(self.rng)
        if delay is None:
            self.drops["loss"] += 1
            return
        self.sim.schedule(
            delay, self._deliver, Envelope(src, dst, payload, self.sim.now)
        )

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.dst in self._down:
            self.drops["endpoint_down"] += 1
            return
        inbox = self._inboxes.get(envelope.dst)
        if inbox is not None:
            inbox.put(envelope)
            self.delivered += 1
            return
        callback = self._callbacks.get(envelope.dst)
        if callback is not None:
            callback(envelope)
            self.delivered += 1
            return
        # no such endpoint: offer it to the distributed bridge before
        # declaring it a drop (e.g. crashed and unregistered)
        if self.default_route is not None and self.default_route(envelope):
            self.bridged += 1
            return
        self.drops["unregistered"] += 1
