"""Request/response messaging with timeout and retransmission.

NF instances talk to the datastore over RPC. CHC's client-side library
retransmits un-ACK'd state updates (§4.3, §6); that retransmission machinery
lives here so both the store client and the framework reuse it.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.analysis import runtime as _sanitize
from repro.simnet.engine import Channel, Event, Simulator
from repro.simnet.network import Envelope, Network
from repro.util import stable_hash


class RpcError(RuntimeError):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """A call exhausted its retries without receiving a response."""


class RpcGaveUp(RpcTimeout):
    """The retry budget is spent: the endpoint stopped retransmitting.

    Subclasses :class:`RpcTimeout` so existing ``except RpcTimeout``
    handlers keep working; new code can distinguish "one attempt timed
    out" from "the caller has given up on this destination".
    """


class RpcRequest:
    """An incoming request as seen by a server.

    A plain ``__slots__`` class rather than a dataclass: one is allocated
    per request on the packet path, and slotted instances are both smaller
    and faster to construct.
    """

    __slots__ = ("request_id", "src", "dst", "payload", "received_at")

    def __init__(
        self,
        request_id: int,
        src: str,
        dst: str,
        payload: Any,
        received_at: float = 0.0,
    ):
        self.request_id = request_id
        self.src = src
        self.dst = dst
        self.payload = payload
        self.received_at = received_at

    def __repr__(self) -> str:
        return (
            f"RpcRequest(request_id={self.request_id!r}, src={self.src!r}, "
            f"dst={self.dst!r}, payload={self.payload!r})"
        )


class _Wire:
    """On-the-wire RPC frame (slotted; one per message on the wire)."""

    __slots__ = ("kind", "request_id", "payload", "ok")

    def __init__(self, kind: str, request_id: int, payload: Any, ok: bool = True):
        self.kind = kind  # "request" | "response" | "oneway"
        self.request_id = request_id
        self.payload = payload
        self.ok = ok


class RpcEndpoint:
    """A network endpoint speaking request/response and one-way messages.

    Servers consume :attr:`requests` (a channel of :class:`RpcRequest`) and
    answer with :meth:`respond`. Clients use :meth:`call` (a generator to be
    driven with ``yield from``) or :meth:`call_event` for event-style use.
    One-way messages land in :attr:`messages`.
    """

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, network: Network, name: str):
        self.sim = sim
        self.network = network
        self.name = name
        self.requests = Channel(sim, name=f"rpc-requests({name})")
        self.messages = Channel(sim, name=f"rpc-messages({name})")
        self._pending: Dict[int, Event] = {}
        self._alive = True
        # Lame-duck mode: the endpoint keeps receiving and processing but
        # every outbound frame (response or one-way) is silently dropped.
        # Planned store replacement uses this to close the ack-then-crash
        # window — un-ACK'd clients retransmit to the successor instead of
        # trusting an instance that is about to be torn down.
        self.mute_output = False
        # Selective lame-duck: when set, responses whose *request* matches
        # the predicate are dropped while everything else keeps flowing.
        # Store scale-out uses this to mute ACKs for one migrating vertex's
        # keys without taking the whole node out of service.
        self.mute_filter: Optional[Callable[[RpcRequest], bool]] = None
        # Deterministic per-endpoint jitter source for retransmission
        # backoff: seeded from the endpoint name and the network seed, so a
        # rerun with the same seeds retransmits at identical instants.
        self._retry_rng = random.Random(
            stable_hash(name) ^ (getattr(network, "seed", 0) * 0x9E3779B1)
        )
        network.register_callback(name, self._on_envelope)

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Fail-stop this endpoint: unregister, drop all pending calls."""
        if not self._alive:
            return
        self._alive = False
        self.network.set_down(self.name)
        self.network.unregister(self.name)
        self._pending.clear()

    def _on_envelope(self, envelope: Envelope) -> None:
        if not self._alive:
            return
        wire: _Wire = envelope.payload
        if wire.kind == "request":
            self.requests.put(
                RpcRequest(
                    request_id=wire.request_id,
                    src=envelope.src,
                    dst=self.name,
                    payload=wire.payload,
                    received_at=self.sim.now,
                )
            )
        elif wire.kind == "response":
            waiter = self._pending.pop(wire.request_id, None)
            if waiter is not None and not waiter.triggered:
                if wire.ok:
                    waiter.succeed(wire.payload)
                else:
                    waiter.fail(RpcError(wire.payload))
        elif wire.kind == "oneway":
            # Unwrap the wire frame: consumers see the application payload.
            envelope.payload = wire.payload
            self.messages.put(envelope)

    def send(self, dst: str, payload: Any) -> None:
        """Fire a one-way message (no response expected)."""
        if self.mute_output:
            return
        self.network.send(self.name, dst, _Wire("oneway", 0, payload))

    def _issue(self, dst: str, payload: Any) -> Tuple[int, Event]:
        """Send one request frame; returns ``(request_id, waiter)``."""
        request_id = next(self._ids)
        waiter = self.sim.event(name="rpc")
        self._pending[request_id] = waiter
        self.network.send(self.name, dst, _Wire("request", request_id, payload))
        return request_id, waiter

    def call_event(self, dst: str, payload: Any) -> Event:
        """Issue a request; returns the event that fires with the response.

        No timeout handling — callers that need retransmission use
        :meth:`call`.
        """
        return self._issue(dst, payload)[1]

    def call(
        self,
        dst: str,
        payload: Any,
        timeout_us: Optional[float] = None,
        max_retries: int = 0,
        backoff: float = 2.0,
        jitter_frac: float = 0.1,
        max_timeout_us: Optional[float] = None,
    ) -> Generator:
        """Generator: issue a request, retransmitting on timeout.

        ``dst`` may be a name or a zero-arg callable returning a name; a
        callable is re-resolved on every attempt, so a retransmission can
        follow routing changes (e.g. a store failover swapping the cluster
        map mid-call).

        Use as ``value = yield from endpoint.call(...)``. Retransmission is
        *bounded*: each retry multiplies the wait by ``backoff`` (capped at
        ``max_timeout_us``, default 16x the base timeout) plus a
        deterministic seeded jitter of up to ``jitter_frac`` of the current
        wait — a storm of clients timing out together de-synchronises
        instead of retransmitting in lockstep. After the budget of
        ``max_retries`` retransmissions is spent the call raises
        :class:`RpcGaveUp` (a :class:`RpcTimeout`).

        A timed-out attempt leaves nothing behind: the stale waiter is
        dropped from ``_pending`` by its remembered request id (O(1), where
        the seed scanned the whole table), and the lost race's
        :class:`~repro.simnet.engine.AnyOf` detaches from the loser, so a
        late response for a retransmitted id is simply discarded. Each
        timed-out attempt bumps ``network.rpc_timeouts``; each retransmit
        bumps ``network.rpc_retries`` (surfaced through
        :class:`repro.simnet.monitor.EngineCounters`).
        """
        resolve = dst if callable(dst) else None
        attempts = max_retries + 1
        wait = timeout_us
        if timeout_us is not None and max_timeout_us is None:
            max_timeout_us = timeout_us * 16.0
        for attempt in range(attempts):
            target = resolve() if resolve is not None else dst
            request_id, waiter = self._issue(target, payload)
            # Deadlock-sanitizer edge: this endpoint is parked on `target`.
            # A timed wait is soft — its own timeout breaks it, so it can
            # never close a real deadlock; recording it as a hard edge made
            # long planned-operation drains read as false cycles. Only an
            # untimed wait (no retransmission timer) is a hard edge.
            soft = timeout_us is not None
            suite = _sanitize.ACTIVE
            if suite is not None:
                suite.wait_edge(
                    self.sim, f"rpc:{self.name}", f"rpc:{target}", soft=soft
                )
            try:
                if timeout_us is None:
                    value = yield waiter
                    return value
                timer = self.sim.timeout(wait)
                winner, value = yield self.sim.any_of([waiter, timer])
            finally:
                if suite is not None:
                    suite.release_edge(
                        f"rpc:{self.name}", f"rpc:{target}", soft=soft
                    )
            if winner is waiter:
                return value
            # timed out: forget the stale waiter and retransmit
            self._pending.pop(request_id, None)
            self.network.rpc_timeouts += 1
            if attempt + 1 < attempts:
                self.network.rpc_retries += 1
                wait = min(wait * backoff, max_timeout_us)
                if jitter_frac > 0.0:
                    wait += self._retry_rng.random() * jitter_frac * wait
        self.network.rpc_gaveups += 1
        where = target if resolve is not None else dst
        raise RpcGaveUp(f"{self.name} -> {where}: no response after {attempts} attempts")

    def respond(self, request: RpcRequest, value: Any, ok: bool = True) -> None:
        """Answer ``request`` (server side)."""
        if self.mute_output:
            return
        if self.mute_filter is not None and self.mute_filter(request):
            return
        self.network.send(
            self.name, request.src, _Wire("response", request.request_id, value, ok=ok)
        )
