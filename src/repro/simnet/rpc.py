"""Request/response messaging with timeout and retransmission.

NF instances talk to the datastore over RPC. CHC's client-side library
retransmits un-ACK'd state updates (§4.3, §6); that retransmission machinery
lives here so both the store client and the framework reuse it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from repro.simnet.engine import Channel, Event, Simulator
from repro.simnet.network import Envelope, Network


class RpcError(RuntimeError):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """A call exhausted its retries without receiving a response."""


@dataclass
class RpcRequest:
    """An incoming request as seen by a server."""

    request_id: int
    src: str
    dst: str
    payload: Any
    received_at: float = 0.0


@dataclass
class _Wire:
    """On-the-wire RPC frame."""

    kind: str  # "request" | "response" | "oneway"
    request_id: int
    payload: Any
    ok: bool = True


class RpcEndpoint:
    """A network endpoint speaking request/response and one-way messages.

    Servers consume :attr:`requests` (a channel of :class:`RpcRequest`) and
    answer with :meth:`respond`. Clients use :meth:`call` (a generator to be
    driven with ``yield from``) or :meth:`call_event` for event-style use.
    One-way messages land in :attr:`messages`.
    """

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, network: Network, name: str):
        self.sim = sim
        self.network = network
        self.name = name
        self.requests = Channel(sim, name=f"rpc-requests({name})")
        self.messages = Channel(sim, name=f"rpc-messages({name})")
        self._pending: Dict[int, Event] = {}
        self._alive = True
        network.register_callback(name, self._on_envelope)

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Fail-stop this endpoint: unregister, drop all pending calls."""
        if not self._alive:
            return
        self._alive = False
        self.network.set_down(self.name)
        self.network.unregister(self.name)
        self._pending.clear()

    def _on_envelope(self, envelope: Envelope) -> None:
        if not self._alive:
            return
        wire: _Wire = envelope.payload
        if wire.kind == "request":
            self.requests.put(
                RpcRequest(
                    request_id=wire.request_id,
                    src=envelope.src,
                    dst=self.name,
                    payload=wire.payload,
                    received_at=self.sim.now,
                )
            )
        elif wire.kind == "response":
            waiter = self._pending.pop(wire.request_id, None)
            if waiter is not None and not waiter.triggered:
                if wire.ok:
                    waiter.succeed(wire.payload)
                else:
                    waiter.fail(RpcError(wire.payload))
        elif wire.kind == "oneway":
            # Unwrap the wire frame: consumers see the application payload.
            envelope.payload = wire.payload
            self.messages.put(envelope)

    def send(self, dst: str, payload: Any) -> None:
        """Fire a one-way message (no response expected)."""
        self.network.send(self.name, dst, _Wire(kind="oneway", request_id=0, payload=payload))

    def call_event(self, dst: str, payload: Any) -> Event:
        """Issue a request; returns the event that fires with the response.

        No timeout handling — callers that need retransmission use
        :meth:`call`.
        """
        request_id = next(self._ids)
        waiter = self.sim.event(name=f"rpc({self.name}->{dst}#{request_id})")
        self._pending[request_id] = waiter
        self.network.send(self.name, dst, _Wire(kind="request", request_id=request_id, payload=payload))
        return waiter

    def call(
        self,
        dst: str,
        payload: Any,
        timeout_us: Optional[float] = None,
        max_retries: int = 0,
    ) -> Generator:
        """Generator: issue a request, retransmitting on timeout.

        Use as ``value = yield from endpoint.call(...)``. Raises
        :class:`RpcTimeout` after ``max_retries`` retransmissions time out.
        """
        attempts = max_retries + 1
        for attempt in range(attempts):
            waiter = self.call_event(dst, payload)
            if timeout_us is None:
                value = yield waiter
                return value
            timer = self.sim.timeout(timeout_us)
            winner, value = yield self.sim.any_of([waiter, timer])
            if winner is waiter:
                return value
            # timed out: forget the stale waiter and retransmit
            for request_id, pending in list(self._pending.items()):
                if pending is waiter:
                    del self._pending[request_id]
        raise RpcTimeout(f"{self.name} -> {dst}: no response after {attempts} attempts")

    def respond(self, request: RpcRequest, value: Any, ok: bool = True) -> None:
        """Answer ``request`` (server side)."""
        self.network.send(
            self.name,
            request.src,
            _Wire(kind="response", request_id=request.request_id, payload=value, ok=ok),
        )
