"""Measurement helpers: latency recorders, throughput meters, percentiles.

These produce the series the paper's figures plot: per-packet processing
time percentiles (Figure 8), CDFs (Figures 11–12), time series of
per-packet latency (Figures 9 and 13), and Gbps goodput (Figure 10).

This module also surfaces the engine's hot-path counters (events processed,
microtasks, heap peak, channel depth peaks) for the perf harness in
``benchmarks/bench_engine_micro.py`` — see DESIGN.md "Engine performance
model".
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

PERCENTILES_FIG8 = (5, 25, 50, 75, 95)


@dataclass
class EngineCounters:
    """A snapshot of the simulator's hot-path counters.

    ``events_processed`` counts every executed callback (heap + microtask);
    ``microtasks_processed`` is the subset that took the zero-delay FIFO
    fast-path; ``heap_peak`` is the timer heap's high-water mark. The
    microtask share is the fraction of work that skipped the O(log n) heap.
    """

    now: float
    events_processed: int
    microtasks_processed: int
    heap_peak: int
    heap_size: int
    # RPC-layer churn (populated when a Network is passed to
    # engine_counters): timed-out attempts, retransmissions, and calls that
    # exhausted their retry budget (RpcGaveUp).
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    rpc_gaveups: int = 0

    @property
    def heap_events(self) -> int:
        return self.events_processed - self.microtasks_processed

    @property
    def microtask_share(self) -> float:
        if self.events_processed == 0:
            return 0.0
        return self.microtasks_processed / self.events_processed

    def as_dict(self) -> Dict[str, float]:
        return {
            "now_us": self.now,
            "events_processed": self.events_processed,
            "microtasks_processed": self.microtasks_processed,
            "heap_events": self.heap_events,
            "microtask_share": round(self.microtask_share, 4),
            "heap_peak": self.heap_peak,
            "heap_size": self.heap_size,
            "rpc_retries": self.rpc_retries,
            "rpc_timeouts": self.rpc_timeouts,
            "rpc_gaveups": self.rpc_gaveups,
        }


def engine_counters(sim, network=None) -> EngineCounters:
    """Snapshot a :class:`~repro.simnet.engine.Simulator`'s counters.

    Pass the :class:`~repro.simnet.network.Network` too to fold in the RPC
    retransmission counters (retries / timeouts / give-ups)."""
    return EngineCounters(
        now=sim.now,
        events_processed=sim.events_processed,
        microtasks_processed=sim.microtasks_processed,
        heap_peak=sim.heap_peak,
        heap_size=len(sim._heap),
        rpc_retries=getattr(network, "rpc_retries", 0),
        rpc_timeouts=getattr(network, "rpc_timeouts", 0),
        rpc_gaveups=getattr(network, "rpc_gaveups", 0),
    )


def channel_depth_peaks(channels: Mapping[str, object]) -> Dict[str, int]:
    """``{name: depth_peak}`` for a mapping of named channels.

    Channels that never queued anything (peak 0) are omitted — experiment
    reports only care about where backpressure actually built up.
    """
    peaks = {}
    for name, channel in channels.items():
        peak = getattr(channel, "depth_peak", 0)
        if peak:
            peaks[name] = peak
    return peaks


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (linear interpolation)."""
    if len(samples) == 0:
        raise ValueError("no samples")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def percentiles(samples: Sequence[float], qs: Iterable[float] = PERCENTILES_FIG8) -> Dict[float, float]:
    """Several percentiles at once, as a ``{q: value}`` dict.

    An empty sample set yields ``{}`` rather than raising: campaign
    payload builders aggregate whatever a scenario produced, and a
    scenario whose every run crashed (or recorded zero recoveries) must
    serialize as an empty distribution, not abort the report. A single
    sample is its own value at every percentile (``np.percentile``
    handles that natively).
    """
    if len(samples) == 0:
        return {}
    array = np.asarray(samples, dtype=float)
    return {float(q): float(np.percentile(array, q)) for q in qs}


class LatencyRecorder:
    """Collects (timestamp, value) latency samples.

    ``record`` is called with the measured per-packet processing time; the
    timestamp defaults to nothing (pure distribution) but experiments that
    plot time series (Figures 9, 13) pass the simulation clock.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.values: List[float] = []
        self.timestamps: List[Optional[float]] = []

    def record(self, value: float, timestamp: Optional[float] = None) -> None:
        self.values.append(value)
        self.timestamps.append(timestamp)

    def __len__(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def summary(self, qs: Iterable[float] = PERCENTILES_FIG8) -> Dict[float, float]:
        return percentiles(self.values, qs)

    def median(self) -> float:
        return self.percentile(50)

    def mean(self) -> float:
        if not self.values:
            raise ValueError("no samples")
        return float(np.mean(self.values))

    def cdf(self, points: int = 200) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for CDF plots."""
        if not self.values:
            return []
        ordered = np.sort(np.asarray(self.values, dtype=float))
        n = len(ordered)
        indices = np.unique(np.linspace(0, n - 1, min(points, n)).astype(int))
        return [(float(ordered[i]), float((i + 1) / n)) for i in indices]

    def windowed_mean(self, window_us: float) -> List[Tuple[float, float]]:
        """Average latency per time window — Figure 13's 500µs windows."""
        samples = [
            (t, v) for t, v in zip(self.timestamps, self.values) if t is not None
        ]
        if not samples:
            return []
        samples.sort()
        out: List[Tuple[float, float]] = []
        start = samples[0][0]
        bucket: List[float] = []
        for t, v in samples:
            while t >= start + window_us:
                if bucket:
                    out.append((start, float(np.mean(bucket))))
                    bucket = []
                start += window_us
            bucket.append(v)
        if bucket:
            out.append((start, float(np.mean(bucket))))
        return out


@dataclass
class TimelineEvent:
    """One entry in a :class:`RecoveryTimeline`."""

    at: float
    kind: str  # "failed" | "detected" | "recovery_started" | "recovered" | "recovery_failed"
    component: str
    detail: Dict[str, object] = dataclass_field(default_factory=dict)


class RecoveryTimeline:
    """An ordered log of failure / detection / recovery events.

    The :class:`repro.core.supervisor.Supervisor` records here; chaos
    campaign reports read it to reconstruct per-component recovery times
    (detected -> recovered) and end-to-end outage windows (failed ->
    recovered, which includes the detector's latency).
    """

    def __init__(self):
        self.events: List[TimelineEvent] = []

    def record(self, at: float, kind: str, component: str, **detail) -> TimelineEvent:
        event = TimelineEvent(at=at, kind=kind, component=component, detail=detail)
        self.events.append(event)
        return event

    def of_kind(self, kind: str) -> List[TimelineEvent]:
        return [event for event in self.events if event.kind == kind]

    def recovery_durations(self, since: str = "failed") -> Dict[str, float]:
        """``{component: duration_us}`` from ``since`` to "recovered".

        ``since`` is "failed" (outage window, detection latency included)
        or "detected" / "recovery_started" (pure protocol time). Components
        without a completed recovery are omitted.
        """
        starts: Dict[str, float] = {}
        durations: Dict[str, float] = {}
        for event in self.events:
            if event.kind == since and event.component not in starts:
                starts[event.component] = event.at
            elif event.kind == "recovered" and event.component in starts:
                durations[event.component] = event.at - starts.pop(event.component)
        return durations

    def as_dicts(self) -> List[Dict[str, object]]:
        return [
            {"at_us": e.at, "kind": e.kind, "component": e.component, **e.detail}
            for e in self.events
        ]


class ThroughputMeter:
    """Counts bits over simulated time, reporting Gbps goodput."""

    def __init__(self, name: str = ""):
        self.name = name
        self.bits = 0
        self.packets = 0
        self.first_at: Optional[float] = None
        self.last_at: Optional[float] = None

    def add(self, size_bits: int, now: float) -> None:
        if self.first_at is None:
            self.first_at = now
        self.last_at = now
        self.bits += size_bits
        self.packets += 1

    def gbps(self, duration_us: Optional[float] = None) -> float:
        """Goodput over ``duration_us`` (or first-to-last sample span)."""
        if duration_us is None:
            if self.first_at is None or self.last_at is None or self.last_at <= self.first_at:
                return 0.0
            duration_us = self.last_at - self.first_at
        if duration_us <= 0:
            return 0.0
        return self.bits / duration_us / 1_000.0  # bits/µs -> Gbps
