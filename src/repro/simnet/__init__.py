"""Discrete-event simulation substrate for the CHC reproduction.

This package replaces the paper's hardware testbed (CloudLab servers, 10G
NICs, kernel-bypass networking) with a deterministic discrete-event
simulator. Virtual time is measured in **microseconds** throughout, matching
the units the paper reports.

Public surface:

* :class:`~repro.simnet.engine.Simulator` — the event loop; processes are
  plain Python generators that ``yield`` events.
* :class:`~repro.simnet.engine.Channel` — a FIFO message channel between
  processes (the paper's per-downstream-instance message queues map onto
  these).
* :class:`~repro.simnet.network.Link` / :class:`~repro.simnet.network.Network`
  — latency/loss/reorder-modelled links between named endpoints.
* :class:`~repro.simnet.rpc.RpcEndpoint` — request/response messaging with
  timeouts and retransmission, used for NF <-> datastore traffic.
* :class:`~repro.simnet.nic.Nic` — a bandwidth-limited egress queue used to
  model line-rate limits in throughput experiments.
* :mod:`~repro.simnet.monitor` — latency recorders / throughput meters.
* :mod:`~repro.simnet.failures` — fail-stop failure injection.
"""

from repro.simnet.engine import (
    Channel,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    Simulator,
)
from repro.simnet.failures import FailureInjector
from repro.simnet.monitor import (
    LatencyRecorder,
    RecoveryTimeline,
    ThroughputMeter,
    TimelineEvent,
    percentile,
    percentiles,
)
from repro.simnet.network import Degradation, Link, Network
from repro.simnet.nic import Nic
from repro.simnet.rpc import RpcEndpoint, RpcError, RpcGaveUp, RpcRequest, RpcTimeout

__all__ = [
    "Channel",
    "Degradation",
    "Event",
    "FailureInjector",
    "Interrupt",
    "LatencyRecorder",
    "Link",
    "Network",
    "Nic",
    "Process",
    "ProcessKilled",
    "RecoveryTimeline",
    "RpcEndpoint",
    "RpcError",
    "RpcGaveUp",
    "RpcRequest",
    "RpcTimeout",
    "Simulator",
    "ThroughputMeter",
    "TimelineEvent",
    "percentile",
    "percentiles",
]
