"""Fail-stop failure injection (§5.4 failure model).

The paper assumes "the standard fail-stop model, that a machine/node can
crash at any time and that the other machines/nodes in the system can
immediately detect the failure". The injector schedules crashes at chosen
simulation times and immediately notifies registered observers, who run the
relevant recovery protocol.
"""

from __future__ import annotations

from typing import Any, Callable, List, Protocol, runtime_checkable

from repro.simnet.engine import Simulator


@runtime_checkable
class Failable(Protocol):
    """Anything that can fail-stop."""

    def fail(self) -> None: ...


class FailureInjector:
    """Schedules fail-stop crashes and dispatches immediate detection.

    ``on_failure(component)`` observers model the cluster's instantaneous
    failure detector; they typically launch failover (a new NF instance, a
    new root, or a new datastore instance).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._observers: List[Callable[[Any], None]] = []
        self.failed: List[Any] = []

    def on_failure(self, observer: Callable[[Any], None]) -> None:
        self._observers.append(observer)

    def fail_now(self, component: Failable) -> None:
        """Crash ``component`` immediately and notify observers.

        Idempotent: a component that already failed (either through this
        injector or because something else called its ``fail()``) is not
        re-crashed and observers are not re-notified — a randomized chaos
        schedule may legitimately pick the same target twice.
        """
        if any(component is seen for seen in self.failed):
            return
        if getattr(component, "alive", True) is False:
            # crashed out-of-band; record it but don't double-notify
            self.failed.append(component)
            return
        component.fail()
        self.failed.append(component)
        self._notify(component)

    def _notify(self, component: Failable) -> None:
        """Dispatch detection. The base injector models the paper's
        instantaneous detector; subclasses may insert detection latency."""
        for observer in self._observers:
            observer(component)

    def fail_at(self, time_us: float, component: Failable) -> None:
        """Crash ``component`` at absolute simulation time ``time_us``.

        ``time_us == sim.now`` is allowed (the crash lands on the microtask
        queue of the current instant) so schedules can be armed from inside
        event callbacks without off-by-now errors.
        """
        delay = time_us - self.sim.now
        if delay < 0:
            raise ValueError(f"fail_at({time_us}) is in the past (now={self.sim.now})")
        self.sim.schedule(delay, self.fail_now, component)

    def fail_together_at(self, time_us: float, components: List[Failable]) -> None:
        """Correlated failure: several components crash at the same instant."""
        for component in components:
            self.fail_at(time_us, component)
