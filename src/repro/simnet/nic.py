"""Bandwidth-limited egress queue, modelling a NIC port.

Throughput experiments (Figure 10) need a line-rate ceiling: a traditional
NF is CPU/NIC bound near 9.5Gbps, while an NF blocked on per-packet store
RTTs drains far below line rate. The :class:`Nic` serialises transmissions
at a configured rate and exposes counters for goodput measurement.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simnet.engine import Channel, Simulator

GBPS_TO_BITS_PER_US = 1_000.0  # 1 Gbps == 1000 bits per microsecond


class Nic:
    """A FIFO transmit queue drained at ``rate_gbps``.

    ``deliver`` is invoked with each item once its serialisation delay has
    elapsed. ``queue_limit`` (packets) models a finite ring: when exceeded,
    new packets are dropped and counted (tail drop).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_gbps: float,
        deliver: Callable[[Any], None],
        name: str = "nic",
        queue_limit: Optional[int] = None,
        per_packet_overhead_bits: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.rate_bits_per_us = rate_gbps * GBPS_TO_BITS_PER_US
        self.deliver = deliver
        self.queue_limit = queue_limit
        self.per_packet_overhead_bits = per_packet_overhead_bits
        self._queue = Channel(sim, name=f"{name}-txq")
        self.tx_packets = 0
        self.tx_bits = 0
        self.drops = 0
        self._alive = True
        sim.process(self._drain(), name=f"{name}-drain")

    @property
    def txq_depth_peak(self) -> int:
        """High-water mark of the transmit ring (perf forensics)."""
        return self._queue.depth_peak

    def fail(self) -> None:
        self._alive = False
        self._queue.clear()

    def send(self, item: Any, size_bits: int) -> bool:
        """Enqueue ``item`` for transmission; returns False on tail drop."""
        if not self._alive:
            return False
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self.drops += 1
            return False
        self._queue.put((item, size_bits))
        return True

    def _drain(self):
        while True:
            item, size_bits = yield self._queue.get()
            if not self._alive:
                return
            wire_bits = size_bits + self.per_packet_overhead_bits
            yield self.sim.timeout(wire_bits / self.rate_bits_per_us)
            if not self._alive:
                return
            self.tx_packets += 1
            self.tx_bits += size_bits
            self.deliver(item)
