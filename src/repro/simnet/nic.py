"""Bandwidth-limited egress queue, modelling a NIC port.

Throughput experiments (Figure 10) need a line-rate ceiling: a traditional
NF is CPU/NIC bound near 9.5Gbps, while an NF blocked on per-packet store
RTTs drains far below line rate. The :class:`Nic` serialises transmissions
at a configured rate and exposes counters for goodput measurement.

Overload semantics (§8 of DESIGN): a finite ring (``queue_limit``) tail
drops, and every drop is reported through ``on_drop`` so the runtime can
fold it into the Network per-cause ledger — ring drops are never silent.
``never_drop`` exempts control-plane items (handover markers) from tail
drop, and ``deliver_wait`` lets the receiving NF push back: when
``deliver`` returns ``False`` the drain loop parks until the receiver has
space, which in turn fills this ring and slows *its* upstream — hop-by-hop
backpressure.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.analysis import runtime as _sanitize
from repro.simnet.engine import Channel, Event, Simulator

GBPS_TO_BITS_PER_US = 1_000.0  # 1 Gbps == 1000 bits per microsecond


class Nic:
    """A FIFO transmit queue drained at ``rate_gbps``.

    ``deliver`` is invoked with each item once its serialisation delay has
    elapsed. ``queue_limit`` (packets) models a finite ring: when exceeded,
    new packets are dropped, counted (tail drop), and reported via
    ``on_drop``.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_gbps: float,
        deliver: Callable[[Any], Any],
        name: str = "nic",
        queue_limit: Optional[int] = None,
        per_packet_overhead_bits: int = 0,
        on_drop: Optional[Callable[[Any], None]] = None,
        never_drop: Optional[Callable[[Any], bool]] = None,
        deliver_wait: Optional[Callable[[], Event]] = None,
        wait_labels: Optional[tuple] = None,
    ):
        self.sim = sim
        self.name = name
        # (this NIC's wait-graph node, its receiver's node) — used by the
        # deadlock sanitizer when the drain parks on ``deliver_wait``.
        self.wait_labels = wait_labels or (f"nic:{name}", f"rx:{name}")
        self.rate_bits_per_us = rate_gbps * GBPS_TO_BITS_PER_US
        self.deliver = deliver
        self.queue_limit = queue_limit
        self.per_packet_overhead_bits = per_packet_overhead_bits
        self.on_drop = on_drop
        self.never_drop = never_drop
        self.deliver_wait = deliver_wait
        self._queue = Channel(sim, name=f"{name}-txq", capacity=queue_limit)
        self.tx_packets = 0
        self.tx_bits = 0
        self.drops = 0
        self.deliver_stalls = 0
        self._alive = True
        sim.process(self._drain(), name=f"{name}-drain")

    @property
    def txq_depth_peak(self) -> int:
        """High-water mark of the transmit ring (perf forensics)."""
        return self._queue.depth_peak

    def fail(self) -> None:
        self._alive = False
        self._queue.clear()

    def has_space(self) -> bool:
        """Whether :meth:`send` would currently be accepted (not tail drop)."""
        return self._alive and self._queue.has_space()

    def space_event(self) -> Event:
        """Event firing when the ring can accept a packet (backpressure)."""
        return self._queue.space_event()

    def send(self, item: Any, size_bits: int) -> bool:
        """Enqueue ``item`` for transmission; returns False on tail drop."""
        if not self._alive:
            return False
        if self.never_drop is not None and self.never_drop(item):
            # Control-plane traffic (handover markers) bypasses the bound:
            # losing a marker would wedge the Figure-4 barrier.
            self._queue.put_forced((item, size_bits))
            return True
        if not self._queue.put((item, size_bits)):
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(item)
            return False
        return True

    def _drain(self):
        while True:
            item, size_bits = yield self._queue.get()
            if not self._alive:
                return
            wire_bits = size_bits + self.per_packet_overhead_bits
            yield self.sim.timeout(wire_bits / self.rate_bits_per_us)
            if not self._alive:
                return
            while True:
                accepted = self.deliver(item)
                # Legacy receivers return None (always accept); a bounded
                # receiver returns False to push back.
                if accepted is False and self.deliver_wait is not None:
                    self.deliver_stalls += 1
                    suite = _sanitize.ACTIVE
                    if suite is not None:
                        suite.wait_edge(self.sim, *self.wait_labels)
                    try:
                        yield self.deliver_wait()
                    finally:
                        if suite is not None:
                            suite.release_edge(*self.wait_labels)
                    if not self._alive:
                        return
                    continue
                break
            self.tx_packets += 1
            self.tx_bits += size_bits
