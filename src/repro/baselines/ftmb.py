"""FTMB-style rollback recovery [28] (§7.3 R1 comparison, Figure 12).

FTMB checkpoints NF state periodically and logs inputs between
checkpoints (for replay-based recovery). The checkpoint stalls packet
processing; the paper, unable to obtain FTMB's code, "emulate[s] its
checkpointing overhead using a queuing delay of 5000µs after every 200ms
(from Figure 6 in [28])" — this harness does exactly that, on top of the
traditional NF thread model, and also implements the recovery side
(restore last checkpoint, replay the input log).
"""

from __future__ import annotations

import copy
from typing import Generator, List, Optional

from repro.baselines.traditional import TraditionalNFHarness
from repro.core.nf_api import NetworkFunction
from repro.simnet.engine import Simulator
from repro.traffic.packet import Packet

CHECKPOINT_INTERVAL_US = 200_000.0  # 200 ms
CHECKPOINT_STALL_US = 5_000.0       # 5000 µs queuing delay (paper §7.3)
PAL_LOGGING_US = 1.0                # per-packet access log (FTMB's PALs/VOR)


class FtmbHarness(TraditionalNFHarness):
    """Traditional NF + periodic checkpoint stalls + input logging."""

    def __init__(
        self,
        sim: Simulator,
        nf: NetworkFunction,
        name: str = "ftmb",
        checkpoint_interval_us: float = CHECKPOINT_INTERVAL_US,
        checkpoint_stall_us: float = CHECKPOINT_STALL_US,
        pal_logging_us: float = PAL_LOGGING_US,
        **kwargs,
    ):
        super().__init__(sim, nf, name=name, **kwargs)
        self.checkpoint_interval_us = checkpoint_interval_us
        self.checkpoint_stall_us = checkpoint_stall_us
        self.pal_logging_us = pal_logging_us
        self.checkpoints_taken = 0
        self._stalled_until = 0.0
        self._checkpoint_state: Optional[dict] = None
        self._input_log: List[Packet] = []
        self._processes.append(
            sim.process(self._checkpoint_loop(), name=f"{name}-checkpoint")
        )

    # -- checkpointing ----------------------------------------------------

    def _checkpoint_loop(self) -> Generator:
        while self._alive:
            yield self.sim.timeout(self.checkpoint_interval_us)
            if not self._alive:
                return
            # Stall the pipeline: workers arriving during the window wait.
            self._stalled_until = self.sim.now + self.checkpoint_stall_us
            self._checkpoint_state = copy.deepcopy(self.state.data)
            self._input_log.clear()
            self.checkpoints_taken += 1

    def _process_packet(self, packet: Packet) -> Generator:
        if self.sim.now < self._stalled_until:
            yield self.sim.timeout(self._stalled_until - self.sim.now)
        if self.pal_logging_us:
            # packet access logs + vector-clock ordering info are written
            # synchronously on the critical path (FTMB §5/§6)
            yield self.sim.timeout(self.pal_logging_us)
        self._input_log.append(packet)
        yield from super()._process_packet(packet)

    # -- recovery ----------------------------------------------------------

    def recover(self) -> Generator:
        """Rollback recovery: restore the last checkpoint and replay logged
        inputs (process body; returns the recovery duration in µs)."""
        started = self.sim.now
        self.state.data = copy.deepcopy(self._checkpoint_state or {})
        replay = list(self._input_log)
        self._input_log.clear()
        for packet in replay:
            yield self.sim.timeout(self.proc_time_us)
            yield from self.nf.process(packet, self.state)
        return self.sim.now - started
