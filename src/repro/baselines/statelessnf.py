"""StatelessNF-style remote state access [17] — the "naive approach".

Every state access is a blocking round trip to the store; shared objects
are protected by store-side locks. An update therefore costs **two RTTs**
(lock+read, then write+unlock) plus any lock wait — the discipline §7.1's
operation-offloading experiment compares CHC against ("it not only
requires 2 RTTs to update state ... but it may also have NFs wait to
acquire locks").

The same vertex programs run unchanged: :class:`LockingStateAPI` is just
another :class:`StateAPI`.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.baselines.traditional import TraditionalNFHarness
from repro.core.nf_api import NetworkFunction, StateAPI
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.rpc import RpcEndpoint
from repro.store.keys import StateKey
from repro.store.operations import OperationRegistry, default_registry
from repro.store.protocol import LockReadRequest, NonDetRequest, ReadRequest, WriteUnlockRequest
from repro.traffic.packet import Packet


class LockingStateAPI(StateAPI):
    """lock+read / compute / write+unlock against a real store instance."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        store_endpoint: str,
        vertex_id: str,
        instance_id: str,
        registry: Optional[OperationRegistry] = None,
    ):
        self.sim = sim
        self.store_endpoint = store_endpoint
        self.vertex_id = vertex_id
        self.instance_id = instance_id
        self.registry = registry or default_registry()
        self.endpoint = RpcEndpoint(sim, network, instance_id)
        self._clock = 0
        self.lock_round_trips = 0

    def _key(self, obj_name: str, flow_key: Optional[Tuple]) -> str:
        return StateKey(self.vertex_id, obj_name, flow_key).storage_key()

    def begin_packet(self, packet: Optional[Packet]) -> None:
        self._clock = packet.clock if packet is not None else 0

    def read(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        result = yield self.endpoint.call_event(
            self.store_endpoint,
            ReadRequest(key=self._key(obj_name, flow_key), instance=self.instance_id),
        )
        return result.value

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
    ) -> Generator:
        key = self._key(obj_name, flow_key)
        # RTT 1 (+ lock wait): acquire the lock and read the value.
        result = yield self.endpoint.call_event(
            self.store_endpoint, LockReadRequest(key=key, instance=self.instance_id)
        )
        new_value, return_value = self.registry.apply(op, result.value, args)
        # RTT 2: write back and release.
        yield self.endpoint.call_event(
            self.store_endpoint,
            WriteUnlockRequest(key=key, value=new_value, instance=self.instance_id),
        )
        self.lock_round_trips += 2
        return return_value

    def nondet(self, purpose: str, kind: str = "random") -> Generator:
        value = yield self.endpoint.call_event(
            self.store_endpoint,
            NonDetRequest(clock=self._clock, purpose=purpose, kind=kind),
        )
        return value


class StatelessNfHarness(TraditionalNFHarness):
    """Traditional thread model + all state accessed via LockingStateAPI."""

    def __init__(
        self,
        sim: Simulator,
        nf: NetworkFunction,
        network: Network,
        store_endpoint: str,
        name: str = "statelessnf",
        **kwargs,
    ):
        super().__init__(sim, nf, name=name, **kwargs)
        locking = LockingStateAPI(
            sim, network, store_endpoint, vertex_id=nf.name, instance_id=name
        )
        for op_name, op_fn in nf.custom_operations().items():
            locking.registry.register(op_name, op_fn, allow_replace=True)
        self.state = locking  # replaces the LocalStateAPI

    def _process_packet(self, packet: Packet) -> Generator:
        self.state.begin_packet(packet)
        yield from super()._process_packet(packet)
