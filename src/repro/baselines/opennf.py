"""OpenNF-style controller-mediated state management [16].

Two disciplines are reproduced, matching how §7.3 measures against them:

* **Strongly consistent shared state** (Figure 11's comparator): "The
  OpenNF controller receives all packets from NFs; each is forwarded to
  every instance; the next packet is released only after all instances
  ACK." The controller is a serial server: per shared-state-updating
  packet it pays one NF->controller hop, a forward to each instance and
  an ACK wait, and releases packets in order.

* **Loss-free move** (the R2 comparator): per-flow state is extracted
  from the old instance, shipped through the controller, and installed at
  the new instance — cost proportional to the number of flows moved,
  unlike CHC's metadata-only move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.baselines.traditional import TraditionalNFHarness
from repro.core.nf_api import NetworkFunction
from repro.simnet.engine import Channel, Event, Simulator
from repro.traffic.packet import Packet

CONTROLLER_LINK_US = 50.0     # NF <-> controller one-way (software SDN hop)
PER_INSTANCE_FORWARD_US = 8.0  # controller-side per-instance forward cost
EXTRACT_PER_FLOW_US = 0.55     # serialize one flow's state out of the NF
INSTALL_PER_FLOW_US = 0.55     # install one flow's state into the NF


class OpenNfController:
    """Controller mediating strongly-consistent shared updates.

    Each mediated packet pays: the hop to the controller, a per-instance
    forward, and a forward+ACK round trip — ~166us with two instances,
    matching Figure 11's plateau. The controller is multi-threaded
    (requests overlap); ``serialize=True`` degrades it to one-at-a-time
    handling for worst-case ordering studies.
    """

    def __init__(
        self,
        sim: Simulator,
        n_instances: int,
        link_us: float = CONTROLLER_LINK_US,
        per_instance_us: float = PER_INSTANCE_FORWARD_US,
        serialize: bool = False,
    ):
        self.sim = sim
        self.n_instances = n_instances
        self.link_us = link_us
        self.per_instance_us = per_instance_us
        self.serialize = serialize
        self._queue = Channel(sim, name="opennf-ctrl")
        self.mediated = 0
        if serialize:
            sim.process(self._serial_loop(), name="opennf-controller")

    def _service_us(self) -> float:
        return (
            self.link_us  # packet reaches the controller
            + self.per_instance_us * self.n_instances  # per-instance forwards
            + 2 * self.link_us  # farthest forward + its ACK
        )

    def mediate(self) -> Event:
        """Submit one shared-state update; the event fires at release."""
        done = self.sim.event(name="opennf-release")
        if self.serialize:
            self._queue.put(done)
        else:
            def release(event=done):
                self.mediated += 1
                event.succeed()

            self.sim.schedule(self._service_us(), release)
        return done

    def _serial_loop(self) -> Generator:
        while True:
            done: Event = yield self._queue.get()
            yield self.sim.timeout(self._service_us())
            self.mediated += 1
            done.succeed()


class OpenNfSharedStateHarness(TraditionalNFHarness):
    """An NF instance whose shared-state updates are controller-mediated.

    ``shared_update_filter(packet)`` decides which packets touch shared
    state (for the Figure 11 NAT experiment: every packet — the NAT's
    packet counters are shared).
    """

    def __init__(
        self,
        sim: Simulator,
        nf: NetworkFunction,
        controller: OpenNfController,
        shared_update_filter=None,
        name: str = "opennf",
        **kwargs,
    ):
        super().__init__(sim, nf, name=name, **kwargs)
        self.controller = controller
        self.shared_update_filter = shared_update_filter or (lambda packet: True)

    def _process_packet(self, packet: Packet) -> Generator:
        if self.shared_update_filter(packet):
            yield self.controller.mediate()
        yield from super()._process_packet(packet)


@dataclass
class OpenNfMoveResult:
    n_flows: int
    started_at: float
    finished_at: float
    buffered_packets: int = 0

    @property
    def duration_us(self) -> float:
        return self.finished_at - self.started_at


def opennf_move(
    sim: Simulator,
    n_flows: int,
    link_us: float = CONTROLLER_LINK_US,
    extract_per_flow_us: float = EXTRACT_PER_FLOW_US,
    install_per_flow_us: float = INSTALL_PER_FLOW_US,
) -> Generator:
    """OpenNF loss-free move (process body; returns the result).

    The controller (1) signals the old instance to suspend the moved flows
    and buffer events, (2) extracts each flow's state, (3) ships it, (4)
    installs it at the new instance, (5) updates routing and flushes.
    Every step is on the critical path — which is why moving 4000 flows
    takes milliseconds where CHC takes microseconds.
    """
    started = sim.now
    yield sim.timeout(2 * link_us)                       # suspend signal + ack
    yield sim.timeout(extract_per_flow_us * n_flows)     # extract at old NF
    yield sim.timeout(link_us)                           # ship to controller
    yield sim.timeout(link_us)                           # ship to new NF
    yield sim.timeout(install_per_flow_us * n_flows)     # install at new NF
    yield sim.timeout(2 * link_us)                       # route update + flush
    return OpenNfMoveResult(n_flows=n_flows, started_at=started, finished_at=sim.now)
