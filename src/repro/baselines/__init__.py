"""Comparator systems reimplemented for head-to-head evaluation (§2.2, §7).

* :mod:`~repro.baselines.traditional` — "traditional" NFs: state lives
  inside the NF process (no externalization, no fault tolerance). The
  performance baseline every Figure 8/10 experiment is measured against.
* :mod:`~repro.baselines.ftmb` — FTMB-style rollback recovery [28]:
  periodic checkpoints stall packet processing (the paper emulates FTMB
  with a 5000µs queuing delay every 200ms; we do the same), inputs are
  logged and replayed on recovery.
* :mod:`~repro.baselines.opennf` — OpenNF [16]: a controller serializes
  strongly-consistent shared-state updates by forwarding each packet to
  every instance and awaiting ACKs; loss-free moves extract, transfer and
  install per-flow state through the controller.
* :mod:`~repro.baselines.statelessnf` — StatelessNF-style [17] remote
  state: every access is a blocking store round trip, shared objects are
  protected by store-side locks (lock+read, then write+unlock — the
  "naive approach" of §7.1's operation-offloading comparison).

All baselines run the *same* vertex programs (:class:`NetworkFunction`)
as CHC — only the state-management discipline differs.
"""

from repro.baselines.ftmb import FtmbHarness
from repro.baselines.opennf import OpenNfController, OpenNfSharedStateHarness, opennf_move
from repro.baselines.statelessnf import LockingStateAPI, StatelessNfHarness
from repro.baselines.traditional import TraditionalChain, TraditionalNFHarness

__all__ = [
    "FtmbHarness",
    "LockingStateAPI",
    "OpenNfController",
    "OpenNfSharedStateHarness",
    "StatelessNfHarness",
    "TraditionalChain",
    "TraditionalNFHarness",
    "opennf_move",
]
