"""Traditional NFs: all state NF-local, no framework (§7.1's "T").

The harness mirrors :class:`~repro.core.instance.NFInstance`'s thread
model (input NIC, flow-sharded workers, per-packet CPU cost) but serves
every state access from an in-process :class:`LocalStateAPI` at zero
simulated latency — the performance ceiling CHC is compared against, and
also the vulnerable configuration: a crash loses everything (exercised by
the R1/R6 comparisons).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.core.nf_api import LocalStateAPI, NetworkFunction
from repro.simnet.engine import Channel, Process, Simulator
from repro.simnet.monitor import LatencyRecorder, ThroughputMeter
from repro.simnet.nic import Nic
from repro.traffic.packet import Packet
from repro.util import stable_hash


class TraditionalNFHarness:
    """One standalone NF instance with local state."""

    def __init__(
        self,
        sim: Simulator,
        nf: NetworkFunction,
        name: str = "traditional",
        n_workers: int = 8,
        proc_time_us: float = 2.0,
        nic_rate_gbps: float = 10.0,
        nic_overhead_bits: int = 600,
        extra_delay: Optional[Callable[[], float]] = None,
        deliver: Optional[Callable[[Packet], None]] = None,
    ):
        self.sim = sim
        self.nf = nf
        self.name = name
        self.n_workers = n_workers
        self.proc_time_us = proc_time_us
        self.extra_delay = extra_delay
        self.deliver = deliver
        self.state = LocalStateAPI()
        for op_name, op_fn in nf.custom_operations().items():
            self.state.registry.register(op_name, op_fn, allow_replace=True)

        self.recorder = LatencyRecorder(name=name)
        self.sojourn = LatencyRecorder(name=f"{name}-sojourn")
        self.throughput = ThroughputMeter(name=name)
        self.processed = 0
        self._clock = 0  # stand-in clock so NFs relying on packet.clock work
        self._alive = True

        self._worker_queues = [
            Channel(sim, name=f"{name}-w{i}") for i in range(n_workers)
        ]
        self._processes: List[Process] = [
            sim.process(self._worker_loop(q), name=f"{name}-w{i}")
            for i, q in enumerate(self._worker_queues)
        ]
        self.nic = Nic(
            sim,
            nic_rate_gbps,
            deliver=self._dispatch,
            name=f"{name}-nic",
            per_packet_overhead_bits=nic_overhead_bits,
        )

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._worker_queues)

    def fail(self) -> None:
        """Fail-stop: with a traditional NF, all state is simply gone."""
        if not self._alive:
            return
        self._alive = False
        for process in self._processes:
            process.kill()
        self.nic.fail()
        self.state.data.clear()

    def inject(self, packet: Packet) -> None:
        """Offer a packet to the NF's input NIC."""
        if packet.ingress_time == 0.0:
            packet.ingress_time = self.sim.now
        self.nic.send(packet, packet.size_bits)

    def _dispatch(self, packet: Packet) -> None:
        packet.queued_at = self.sim.now
        shard = stable_hash(packet.five_tuple.canonical().key()) % self.n_workers
        if packet.clock == 0:
            self._clock += 1
            packet.clock = self._clock
        self._worker_queues[shard].put(packet)

    def _worker_loop(self, queue: Channel) -> Generator:
        while self._alive:
            packet: Packet = yield queue.get()
            yield from self._process_packet(packet)

    def _process_packet(self, packet: Packet) -> Generator:
        start = self.sim.now
        delay = self.proc_time_us
        if self.extra_delay is not None:
            delay += self.extra_delay()
        yield self.sim.timeout(delay)
        outputs = yield from self.nf.process(packet, self.state)
        if not self._alive:
            return
        self.recorder.record(self.sim.now - start, timestamp=self.sim.now)
        if packet.queued_at:
            self.sojourn.record(self.sim.now - packet.queued_at, timestamp=self.sim.now)
        self.throughput.add(packet.size_bits, self.sim.now)
        self.processed += 1
        if self.deliver is not None:
            for output in outputs or []:
                self.deliver(output.packet)


class TraditionalChain:
    """Several traditional NFs wired in sequence (for the §7.1 chain
    overhead comparison): packet hops cost ``hop_link_us`` each, exactly
    as in the CHC runtime, so the measured difference is pure state
    management overhead."""

    def __init__(
        self,
        sim: Simulator,
        nfs: List[NetworkFunction],
        hop_link_us: float = 3.0,
        n_workers: int = 8,
        proc_time_us: float = 2.0,
        nic_rate_gbps: float = 10.0,
        nic_overhead_bits: int = 600,
    ):
        self.sim = sim
        self.hop_link_us = hop_link_us
        self.egress_recorder = LatencyRecorder(name="traditional-chain")
        self.egress_meter = ThroughputMeter(name="traditional-chain")
        self.stages: List[TraditionalNFHarness] = []
        for index, nf in enumerate(nfs):
            stage = TraditionalNFHarness(
                sim,
                nf,
                name=f"t{index}-{nf.name}",
                n_workers=n_workers,
                proc_time_us=proc_time_us,
                nic_rate_gbps=nic_rate_gbps,
                nic_overhead_bits=nic_overhead_bits,
            )
            self.stages.append(stage)
        for index, stage in enumerate(self.stages):
            if index + 1 < len(self.stages):
                nxt = self.stages[index + 1]
                stage.deliver = self._make_hop(nxt)
            else:
                stage.deliver = self._to_egress

    def _make_hop(self, nxt: TraditionalNFHarness):
        def hop(packet: Packet) -> None:
            self.sim.schedule(self.hop_link_us, nxt.nic.send, packet, packet.size_bits)

        return hop

    def _to_egress(self, packet: Packet) -> None:
        self.egress_recorder.record(
            self.sim.now - packet.ingress_time, timestamp=self.sim.now
        )
        self.egress_meter.add(packet.size_bits, self.sim.now)

    def inject(self, packet: Packet) -> None:
        packet.ingress_time = self.sim.now
        self.sim.schedule(
            self.hop_link_us, self.stages[0].nic.send, packet, packet.size_bits
        )
