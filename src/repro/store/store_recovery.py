"""Datastore-instance failure recovery (§5.4 "Datastore instance", Figure 7).

Recovery of a crashed store instance proceeds per the paper:

* **Per-flow state** is reconstructed from the NF instances' caches — every
  per-flow object has an up-to-date cached copy at its owning instance
  (Theorem B.5.1).
* **Shared (cross-flow) state** is rebuilt from the last checkpoint plus
  the NF-side write-ahead logs:

  - *Case 1* (no instance read the object since the checkpoint): re-execute
    each instance's logged update operations starting after the clocks in
    the checkpoint's ``TS`` — any interleaving yields a state some
    no-failure execution could have produced (Theorem B.5.2).
  - *Case 2* (some instance read in the failure window): pick, via
    **TS-selection**, the TS corresponding to the most recent read before
    the crash; initialise from that read's logged value and re-execute each
    instance's operations after their clocks in the selected TS
    (Theorem B.5.3). "Most recent clock does not correspond to most recent
    read" — the selection traverses each instance's op log in reverse.

Re-executed operations run through the replacement store's normal
``apply_operation`` path, which rebuilds the per-clock update log — so a
client retransmitting an un-ACK'd op after recovery is emulated, not
double-applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.store.cluster import StoreCluster
from repro.store.datastore import Checkpoint, DatastoreInstance
from repro.store.operations import OperationRegistry
from repro.store.protocol import OpRequest
from repro.store.wal import ReadLogEntry, UpdateLogEntry, WriteAheadLog


def select_ts(
    reads: List[ReadLogEntry],
    update_logs: Dict[str, List[UpdateLogEntry]],
) -> Optional[ReadLogEntry]:
    """TS-selection (§5.4): find the read whose TS is the most recent.

    ``reads`` are all logged reads of one key in the failure window, from
    every instance; ``update_logs`` map instance -> that instance's update
    ops on the key, in issue order. Returns the selected read (whose value
    seeds re-execution), or ``None`` when there were no reads (Case 1).

    Mirrors the paper's procedure: form the set of all TS's; traverse each
    instance's op log in reverse to find the latest update whose clock
    appears in any candidate TS; drop candidates not containing that clock.
    """
    if not reads:
        return None
    candidates: List[Tuple[ReadLogEntry, frozenset]] = [
        (read, frozenset(read.ts.values())) for read in reads
    ]
    for instance in sorted(update_logs):
        if len(candidates) <= 1:
            break
        union = frozenset().union(*(clocks for _read, clocks in candidates))
        chosen: Optional[int] = None
        for entry in reversed(update_logs[instance]):
            if entry.clock in union:
                chosen = entry.clock
                break
        if chosen is None:
            continue
        remaining = [(r, c) for r, c in candidates if chosen in c]
        if remaining:  # never eliminate everything (degenerate TS overlap)
            candidates = remaining
    # Identical TS sets can survive; the latest-issued read among them is
    # the one all other constraints are consistent with.
    return max(candidates, key=lambda item: item[0].at)[0]


@dataclass
class RecoveryPlan:
    """How one shared key will be rebuilt: seed value + ops to re-execute."""

    key: str
    base_value: Any
    base_ts: Dict[str, int]
    entries: List[Tuple[str, UpdateLogEntry]]  # (instance, entry) in re-exec order
    case: int  # 1 or 2
    selected_read: Optional[ReadLogEntry] = None


def plan_shared_key_recovery(
    key: str,
    checkpoint: Optional[Checkpoint],
    wals: Dict[str, WriteAheadLog],
) -> RecoveryPlan:
    """Decide Case 1 vs Case 2 for ``key`` and list the ops to re-execute."""
    since = checkpoint.taken_at if checkpoint else 0.0
    window_reads = [
        read
        for wal in wals.values()
        for read in wal.reads_for(key)
        if read.at >= since
    ]
    update_logs = {instance: wal.updates_for(key) for instance, wal in wals.items()}
    selected = select_ts(window_reads, update_logs)

    if selected is not None:
        base_value = selected.value
        base_ts: Dict[str, int] = dict(selected.ts)
        case = 2
    else:
        base_value = checkpoint.data.get(key) if checkpoint else None
        base_ts = dict(checkpoint.ts.get(key, {})) if checkpoint else {}
        case = 1

    entries: List[Tuple[str, UpdateLogEntry]] = []
    for instance in sorted(wals):
        start_clock = base_ts.get(instance)
        if start_clock is None:
            pending = wals[instance].updates_for(key)
        else:
            pending = wals[instance].updates_after(key, start_clock)
        entries.extend((instance, entry) for entry in pending)
    return RecoveryPlan(
        key=key,
        base_value=base_value,
        base_ts=base_ts,
        entries=entries,
        case=case,
        selected_read=selected,
    )


@dataclass
class KeyRecovery:
    """Outcome of recovering one shared key."""

    value: Any
    reexecuted_ops: int
    case: int
    selected_read: Optional[ReadLogEntry] = None


def recover_shared_key(
    key: str,
    checkpoint: Optional[Checkpoint],
    wals: Dict[str, WriteAheadLog],
    registry: OperationRegistry,
) -> KeyRecovery:
    """Pure-algorithm form of one-key recovery (unit-testable, no sim)."""
    plan = plan_shared_key_recovery(key, checkpoint, wals)
    value = plan.base_value
    for _instance, entry in plan.entries:
        value, _rv = registry.apply(entry.op, value, entry.args)
    return KeyRecovery(
        value=value,
        reexecuted_ops=len(plan.entries),
        case=plan.case,
        selected_read=plan.selected_read,
    )


def promote_replica(cluster: StoreCluster, failed: DatastoreInstance, mirror: DatastoreInstance) -> None:
    """Instant recovery path when the failed instance had a mirror: swap
    routing to the replica (its data, ownership metadata and duplicate-
    suppression logs track the primary's). Read-heavy cache callbacks are
    re-established lazily as clients re-register on their next miss.
    """
    cluster.replace_instance(failed.name, mirror)


@dataclass
class StoreRecoveryResult:
    """What a completed store-instance recovery produced."""

    replacement: DatastoreInstance
    started_at: float
    finished_at: float
    shared_keys: Dict[str, KeyRecovery] = field(default_factory=dict)
    per_flow_keys: int = 0
    reexecuted_ops: int = 0

    @property
    def duration_us(self) -> float:
        return self.finished_at - self.started_at


def recover_store_instance(
    sim: Simulator,
    network: Network,
    cluster: StoreCluster,
    failed: DatastoreInstance,
    clients: List,  # List[StoreClient]; untyped to avoid an import cycle
    new_name: str,
    rtt_us: float = 28.0,
    per_key_transfer_us: float = 0.5,
) -> Generator:
    """Drive a full store-instance recovery (a simulation process).

    Steps, with their simulated costs:

    1. boot a replacement instance;
    2. query every NF client for its cached per-flow state (one RTT per
       client plus transfer time per key) and install it, restoring
       ownership metadata;
    3. rebuild every shared key from checkpoint + WALs, re-executing
       logged operations at the store's per-op service time;
    4. swap the replacement into the cluster's routing.

    Returns a :class:`StoreRecoveryResult` (``yield from`` it).
    """
    started_at = sim.now
    checkpoint = failed.last_checkpoint
    replacement = DatastoreInstance(
        sim,
        network,
        new_name,
        n_threads=failed.n_threads,
        op_service_us=failed.op_service_us,
        registry=failed.registry.copy(),
        root_endpoint=failed.root_endpoint,
        checkpoint_interval_us=failed.checkpoint_interval_us,
    )
    result = StoreRecoveryResult(
        replacement=replacement, started_at=started_at, finished_at=started_at
    )

    # -- per-flow state from NF caches (Theorem B.5.1) -------------------
    for client in clients:
        yield sim.timeout(rtt_us)  # query the instance's cached copies
        snapshot = client.per_flow_snapshot()
        # Atomically with the read: the cache subsumes every flushed-but-
        # unACK'd op on these keys, so their retransmissions are cancelled
        # *now* — an op tracked after this instant is not in the snapshot
        # and must still retransmit.
        client.drop_pending_flushes(snapshot)
        if snapshot:
            yield sim.timeout(per_key_transfer_us * len(snapshot))
        for key, value in snapshot.items():
            replacement._data[key] = value
            replacement._owners[key] = client.instance_id
            result.per_flow_keys += 1

    # -- shared state from checkpoint + WALs (Theorems B.5.2/B.5.3) ------
    # Seed the replacement's duplicate-suppression log from the checkpoint:
    # every identity in it is already reflected in the checkpoint data, so
    # a client retransmitting one (its ACK was lost with the old instance)
    # must be emulated, not re-applied.
    covered: set = set()
    if checkpoint:
        for (log_key, clock), seqs in checkpoint.update_log.items():
            for seq, value in seqs.items():
                replacement._log_committed(log_key, clock, seq, value)
                covered.add((log_key, clock, seq))
    wals = {client.instance_id: client.wal for client in clients}
    shared_keys = sorted(
        {entry.key for wal in wals.values() for entry in wal.updates}
        | (set(checkpoint.data) - set(replacement._data) if checkpoint else set())
    )
    for key in shared_keys:
        plan = plan_shared_key_recovery(key, checkpoint, wals)
        if plan.entries:
            yield sim.timeout(replacement.op_service_us * len(plan.entries))
        replacement._data[key] = plan.base_value
        replacement._ts[key] = dict(plan.base_ts)
        for instance, entry in plan.entries:
            covered.add((key, entry.clock, entry.seq))
            replacement.apply_operation(
                OpRequest(
                    key=key,
                    op=entry.op,
                    args=entry.args,
                    instance=instance,
                    clock=entry.clock,
                    seq=entry.seq,
                    log_update=entry.clock > 0,
                )
            )
        result.shared_keys[key] = KeyRecovery(
            value=replacement._data.get(key),
            reexecuted_ops=len(plan.entries),
            case=plan.case,
            selected_read=plan.selected_read,
        )
        result.reexecuted_ops += len(plan.entries)

    # Reconcile clients' pending retransmissions against what the rebuild
    # covers (checkpointed identities + re-executed WAL entries): covered
    # ops must not be retransmitted (double-apply), un-covered ones must
    # keep retransmitting — they were lost in flight and the retransmission
    # to the replacement is exactly what recovers them.
    for client in clients:
        client.cancel_pending_flushes(covered)

    cluster.replace_instance(failed.name, replacement)
    result.finished_at = sim.now
    return result
