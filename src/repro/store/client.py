"""The datastore client-side library NF instances link against (§4.3, §6).

This is where Table 1's strategies live. For each state object (declared
with a :class:`~repro.store.spec.StateObjectSpec`) the client selects:

* ``NON_BLOCKING`` — write-mostly objects: offload the op, optionally
  without even waiting for the ACK (the library retransmits un-ACK'd
  operations; retransmission is idempotent because the store dedups on the
  (key, clock, seq) identity).
* ``PER_FLOW_CACHE`` — per-flow objects: apply locally on a cached copy
  and flush the *operation* to the store with non-blocking semantics, so
  the store stays current for fault tolerance at zero packet latency.
* ``READ_HEAVY_CACHE`` — rarely-written shared objects: reads are local;
  updates go to the store (blocking), which pushes the new value to every
  other caching instance via callbacks handled here, not by NF code.
* ``SPLIT_AWARE`` — often-written shared objects: cached exactly while the
  upstream traffic split gives this instance exclusive access (the
  framework toggles this, §4.3); otherwise every update is a blocking
  store op.

The client also maintains the instance's write-ahead log of shared-state
operations and read snapshots (§5.4), issues per-packet operation sequence
numbers for duplicate suppression, and XORs (vertex || object) tags into
the packet's bit vector (Figure 6, step 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.analysis import runtime as _sanitize
from repro.simnet.engine import Event, Simulator
from repro.simnet.network import Network
from repro.simnet.rpc import RpcEndpoint, RpcGaveUp
from repro.store.breaker import CircuitBreaker
from repro.store.cluster import StoreCluster
from repro.store.keys import StateKey
from repro.store.operations import OperationRegistry, default_registry
from repro.store.protocol import (
    BatchedOpRequest,
    BulkOwnerMove,
    CallbackMessage,
    NonDetRequest,
    OpRequest,
    OpResult,
    Overloaded,
    OwnerRequest,
    ReadRequest,
    ReadResult,
    WatchRequest,
    WriteRequest,
)
from repro.store.spec import CacheStrategy, Scope, StateObjectSpec
from repro.store.wal import WriteAheadLog
from repro.traffic.packet import Packet
from repro.util import stable_hash


@dataclass
class PacketContext:
    """Per-packet state-access context.

    NF instances process packets on several worker threads concurrently;
    each in-flight packet carries its own context (clock for duplicate
    suppression, per-key op sequence numbers, the bit vector) so contexts
    never interleave across workers.
    """

    packet: Optional[Packet] = None
    clock: int = 0
    op_seq: Dict[str, int] = field(default_factory=dict)

    def next_seq(self, storage_key: str) -> int:
        seq = self.op_seq.get(storage_key, 0)
        self.op_seq[storage_key] = seq + 1
        return seq


@dataclass
class ClientStats:
    blocking_ops: int = 0
    nonblocking_ops: int = 0
    local_ops: int = 0
    store_reads: int = 0
    cached_reads: int = 0
    callbacks_received: int = 0
    retransmissions: int = 0
    flushes_gave_up: int = 0
    overload_rejections: int = 0
    stale_reads: int = 0


class StoreClient:
    """Per-NF-instance state access layer. See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        cluster: StoreCluster,
        vertex_id: str,
        instance_id: str,
        specs: Dict[str, StateObjectSpec],
        vector_tags: Optional[Dict[str, int]] = None,
        wait_for_acks: bool = True,
        caching_enabled: bool = True,
        retransmit_timeout_us: Optional[float] = None,
        registry: Optional[OperationRegistry] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.vertex_id = vertex_id
        self.instance_id = instance_id
        self.specs = specs
        self.vector_tags = vector_tags or {}
        self.wait_for_acks = wait_for_acks
        self.caching_enabled = caching_enabled
        self.retransmit_timeout_us = retransmit_timeout_us
        self.registry = registry or default_registry()
        self.breaker = breaker
        # Overload handling (§8): seeded jitter for Overloaded-reply
        # backoff, plus the last successfully read value per key — what an
        # open breaker serves instead of hammering a saturated store.
        self._overload_rng = random.Random(stable_hash(instance_id) ^ 0x0BAD)
        self._stale: Dict[str, Any] = {}
        self.endpoint = RpcEndpoint(sim, network, instance_id)
        self.wal = WriteAheadLog(instance_id)
        self.stats = ClientStats()

        self._cache: Dict[str, Any] = {}          # per-flow + split-aware values
        self._readheavy_cache: Dict[str, Any] = {}
        self._watched: Set[str] = set()
        self._owned: Dict[str, Tuple[str, Optional[Tuple]]] = {}
        self._exclusive: Dict[str, bool] = {}     # obj name -> split allows caching
        self._owner_waiters: Dict[str, List[Event]] = {}
        self._pending_acks: Dict[int, Tuple[Event, Any]] = {}  # ack_id -> (event, request)
        self._ack_seq = 0
        # Fast-path flush batching (§6): while a batch is open, non-blocking
        # flushes are accumulated instead of sent, then coalesced into one
        # BatchedOpRequest per destination store at batch_flush().
        self._batch: Optional[List[OpRequest]] = None
        self.stats_batches_sent = 0

        # default packet context (single-threaded callers / tests); worker
        # threads pass an explicit context instead
        self._default_ctx = PacketContext()

        self._alive = True
        self._callback_proc = sim.process(self._callback_loop(), name=f"{instance_id}-callbacks")

    # ------------------------------------------------------------------
    # lifecycle / packet context
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Fail-stop with the owning NF instance; all cached state is lost.

        The WAL survives (it models a local disk / persistent log, which is
        what datastore recovery reads, §5.4).
        """
        if not self._alive:
            return
        self._alive = False
        self._callback_proc.kill()
        self.endpoint.fail()
        self._cache.clear()
        self._readheavy_cache.clear()
        self._stale.clear()

    def make_context(self, packet: Optional[Packet]) -> PacketContext:
        """A fresh per-packet context (clock, op sequence numbers)."""
        return PacketContext(
            packet=packet, clock=packet.clock if packet is not None else 0
        )

    def begin_packet(self, packet: Optional[Packet]) -> None:
        """Set the *default* packet context (single-threaded use only)."""
        self._default_ctx = self.make_context(packet)

    def _key(self, obj_name: str, flow_key: Optional[Tuple]) -> Tuple[StateKey, str]:
        state_key = StateKey(vertex_id=self.vertex_id, obj_name=obj_name, flow_key=flow_key)
        return state_key, state_key.storage_key()

    def _spec(self, obj_name: str) -> StateObjectSpec:
        spec = self.specs.get(obj_name)
        if spec is None:
            raise KeyError(f"{self.instance_id}: undeclared state object {obj_name!r}")
        return spec

    def _dst(self, storage_key: str) -> str:
        return self.cluster.endpoint_for_key(storage_key)

    # How many times a blocking call / an un-ACK'd flush is reissued before
    # giving up. Generous on purpose: a budget this size outlasts any
    # plausible partition or store-recovery window, while still bounding
    # the retransmission storm a permanently-dead destination can cause.
    BLOCKING_RETRY_BUDGET = 12
    FLUSH_RETRY_BUDGET = 100
    # How many consecutive Overloaded rejections a blocking call absorbs
    # (with exponential backoff) before it is treated like an RPC give-up.
    OVERLOAD_RETRY_BUDGET = 64
    # Flush retransmission backoff: each un-ACK'd reissue waits
    # base * FLUSH_BACKOFF^attempt (exponent capped) before the next
    # timeout check. A *fixed* re-arm interval melts down once the store's
    # round-trip latency exceeds it: every pending flush reissues each
    # interval, the store's inbound backlog grows, replies slip past the
    # next timeout, and the storm feeds itself (congestion collapse —
    # observed on the real-socket fabric, where latency is real).
    FLUSH_BACKOFF = 1.5
    FLUSH_BACKOFF_CAP = 8  # max multiplier 1.5**8 ~ 25.6x the base timeout

    def _blocking_call(self, storage_key: str, payload: Any) -> Generator:
        """Issue a blocking RPC to the store instance holding ``storage_key``.

        With a retransmission timeout configured, the call is retried with
        exponential backoff (seeded jitter, bounded budget) and the
        destination is *re-resolved from the cluster map on every attempt* —
        a retry issued during a store failover lands on the replacement
        instance as soon as the routing swap happens. Safe because the store
        dedups packet-induced ops on their (key, clock, seq) identity and
        reads are idempotent. Without a timeout this is a bare call_event
        (the seed's behaviour: lossless links, no retransmission).

        Overload layer (§8): data-plane calls (ops/reads) pass through the
        circuit breaker when one is configured — an open breaker parks the
        call until a probe window — and an ``Overloaded`` admission
        rejection is retried after seeded-jitter backoff. Control-plane
        calls (ownership moves, watches) bypass the breaker so an overload
        episode cannot wedge handover or recovery.
        """
        breaker = (
            self.breaker
            if isinstance(payload, (OpRequest, ReadRequest))
            else None
        )
        overload_attempts = 0
        while True:
            if breaker is not None:
                yield from breaker.acquire()
            started = self.sim.now
            try:
                if self.retransmit_timeout_us is None:
                    result = yield self.endpoint.call_event(
                        self._dst(storage_key), payload
                    )
                else:
                    result = yield from self.endpoint.call(
                        lambda: self._dst(storage_key),
                        payload,
                        timeout_us=self.retransmit_timeout_us,
                        max_retries=self.BLOCKING_RETRY_BUDGET,
                        backoff=1.5,
                    )
            except RpcGaveUp:
                if breaker is not None:
                    breaker.record_failure()
                raise
            if isinstance(result, Overloaded):
                self.stats.overload_rejections += 1
                if breaker is not None:
                    breaker.record_failure()
                overload_attempts += 1
                if overload_attempts >= self.OVERLOAD_RETRY_BUDGET:
                    raise RpcGaveUp(
                        f"{self.instance_id}: store stayed overloaded for"
                        f" {storage_key}"
                    )
                delay = result.retry_after_us * (1.5 ** min(overload_attempts, 8))
                delay *= 1.0 + 0.25 * self._overload_rng.random()
                yield self.sim.timeout(delay)
                continue
            if breaker is not None:
                breaker.record_result(self.sim.now - started)
            return result

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------

    def update(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        op: str,
        *args: Any,
        need_result: bool = False,
        ctx: Optional[PacketContext] = None,
    ) -> Generator:
        """Issue a state update per the object's Table 1 strategy.

        Generator — drive with ``yield from``. ``need_result=True`` states
        that the NF consumes the operation's return value (e.g. the NAT
        popping a free port); the client then picks the cheapest mechanism
        that can deliver it (a local cached apply, else a blocking op).
        With ``caching_enabled=False`` (the paper's "EO" model) every
        update is offloaded: non-blocking unless a result is needed.
        """
        ctx = ctx or self._default_ctx
        spec = self._spec(obj_name)
        _state_key, storage_key = self._key(obj_name, flow_key)
        strategy = spec.strategy()
        if not self.caching_enabled:
            strategy = None  # force store-side execution below
        seq = ctx.next_seq(storage_key)
        tag = self.vector_tags.get(obj_name, 0)
        if ctx.packet is not None and tag:
            ctx.packet.bitvector ^= tag  # Figure 6 step 1
        if spec.scope is Scope.CROSS_FLOW:
            self.wal.log_update(ctx.clock, storage_key, op, args, seq=seq, at=self.sim.now)

        request = OpRequest(
            key=storage_key,
            op=op,
            args=args,
            instance=self.instance_id,
            clock=ctx.clock,
            seq=seq,
            vector_tag=tag,
            log_update=ctx.clock > 0,
        )

        if strategy is None:
            if need_result:
                request.blocking = True
                result = yield from self._blocking_call(storage_key, request)
                self.stats.blocking_ops += 1
                return result.value
            return (yield from self._nonblocking(request))

        if strategy is CacheStrategy.NON_BLOCKING:
            if need_result:
                request.blocking = True
                result = yield from self._blocking_call(storage_key, request)
                self.stats.blocking_ops += 1
                return result.value
            return (yield from self._nonblocking(request))

        if strategy is CacheStrategy.PER_FLOW_CACHE:
            if storage_key not in self._owned:
                # Ownership is claimed by the key metadata on the first
                # flushed write — no extra round trip (§4.3).
                request.claim_owner = True
                self._owned[storage_key] = (obj_name, flow_key)
            return (yield from self._local_apply_and_flush(request, spec))

        if strategy is CacheStrategy.READ_HEAVY_CACHE:
            # Rare update: blocking; store returns the updated object and
            # pushes callbacks to the other caching instances.
            request.blocking = True
            result: OpResult = yield from self._blocking_call(storage_key, request)
            self.stats.blocking_ops += 1
            if storage_key in self._readheavy_cache or storage_key in self._watched:
                self._readheavy_cache[storage_key] = result.value
            return result.value

        # SPLIT_AWARE
        if self._exclusive.get(obj_name, False):
            return (yield from self._local_apply_and_flush(request, spec))
        request.blocking = True
        result = yield from self._blocking_call(storage_key, request)
        self.stats.blocking_ops += 1
        return result.value

    def _nonblocking(self, request: OpRequest) -> Generator:
        request.blocking = False
        if self._batch is not None and not self.wait_for_acks:
            self._batch.append(request)
            self.stats.nonblocking_ops += 1
            return None
        ack = self.endpoint.call_event(self._dst(request.key), request)
        self.stats.nonblocking_ops += 1
        if self.wait_for_acks:
            yield ack
            return None
        self._track_ack(request, ack)
        return None
        yield  # pragma: no cover - keeps this a generator on all paths

    def _note_cache_fill(self, storage_key: str) -> None:
        """Ownership-sanitizer hook: this client now caches ``storage_key``.

        Per-flow cache fills assert single-writer discipline exactly like
        store applies do — two clients caching one key inside a handover
        epoch is the transient window a planned re-home can open.
        """
        suite = _sanitize.ACTIVE
        if suite is not None:
            suite.note_cache_write(self.sim, storage_key, self.instance_id)

    # Operations that fully overwrite the value need no current state, so a
    # cold cache can apply them locally without first consulting the store.
    _OVERWRITE_OPS = frozenset({"set"})

    def _local_apply_and_flush(self, request: OpRequest, spec: StateObjectSpec) -> Generator:
        """Cached update: apply locally, flush the *operation* (non-blocking).

        A *cold* cache (first touch after instance creation, failover or a
        handover) must not apply against ``initial_value`` — the store may
        hold live state (e.g. the NAT's remaining free ports). In that case
        the op runs blocking at the store, which returns the updated object
        to seed the cache (§4.3); everything after is local.
        """
        if request.key not in self._cache and request.op not in self._OVERWRITE_OPS:
            request.blocking = True
            request.return_state = True
            result: OpResult = yield from self._blocking_call(request.key, request)
            self.stats.blocking_ops += 1
            if result.state is not None or result.emulated:
                if result.state is not None:
                    self._note_cache_fill(request.key)
                    self._cache[request.key] = result.state
                return result.value
            # rejected (not the owner): don't poison the cache
            return result.value
        current = self._cache.get(request.key, spec.initial_value)
        new_value, return_value = self.registry.apply(request.op, current, request.args)
        if request.key not in self._cache:
            self._note_cache_fill(request.key)
        self._cache[request.key] = new_value
        self.stats.local_ops += 1
        # Flushes are non-blocking by design (Table 1): they never stall the
        # packet path; the ACK is tracked so ack_barrier() can fence them.
        request.blocking = False
        if self._batch is not None:
            self._batch.append(request)
        else:
            ack = self.endpoint.call_event(self._dst(request.key), request)
            self._track_ack(request, ack)
        return return_value
        yield  # pragma: no cover - generator protocol

    # ------------------------------------------------------------------
    # fast-path flush batching (§6)
    # ------------------------------------------------------------------

    def batch_begin(self) -> None:
        """Open a flush batch: subsequent non-blocking flushes accumulate."""
        if self._batch is None:
            self._batch = []

    def batch_flush(self) -> List[Event]:
        """Close the batch and send one BatchedOpRequest per store.

        Every accumulated entry keeps its individual (key, clock, seq,
        vector_tag) identity, so dedup, WAL replay and commit signals are
        exactly as if the flushes had been sent one by one. Returns the
        ACK events (tracked for ack_barrier / retransmission like any
        other flush).
        """
        entries = self._batch
        self._batch = None
        if not entries:
            return []
        return self._send_batched(entries)

    def _send_batched(self, entries: List[OpRequest], attempt: int = 0) -> List[Event]:
        # Destinations are resolved at send time (and re-resolved, regrouped
        # on every retransmission) so batches follow a store failover.
        groups: Dict[str, List[OpRequest]] = {}
        for entry in entries:
            groups.setdefault(self._dst(entry.key), []).append(entry)
        acks: List[Event] = []
        for dst, group in groups.items():
            batch = BatchedOpRequest(entries=tuple(group), instance=self.instance_id)
            ack = self.endpoint.call_event(dst, batch)
            self._track_ack(batch, ack, attempt)
            self.stats_batches_sent += 1
            acks.append(ack)
        return acks

    @staticmethod
    def _flush_retryable(request: Any) -> bool:
        """Only packet-induced ops are reissued — their (key, clock, seq)
        identity makes the retry idempotent at the store."""
        if isinstance(request, BatchedOpRequest):
            return any(e.log_update and e.clock for e in request.entries)
        return bool(request.log_update and request.clock)

    def _reissue(self, request: Any, attempt: int) -> None:
        if isinstance(request, BatchedOpRequest):
            self.stats.retransmissions += 1
            self._send_batched(list(request.entries), attempt)
            return
        ack = self.endpoint.call_event(self._dst(request.key), request)
        self.stats.retransmissions += 1
        self._track_ack(request, ack, attempt)

    def _track_ack(self, request: OpRequest, ack: Event, attempt: int = 0) -> None:
        self._ack_seq += 1
        ack_id = self._ack_seq
        self._pending_acks[ack_id] = (ack, request)
        ack.add_callback(
            lambda event: self._on_flush_reply(ack_id, request, attempt, event)
        )
        if self.retransmit_timeout_us is not None:
            delay = self.retransmit_timeout_us * (
                self.FLUSH_BACKOFF ** min(attempt, self.FLUSH_BACKOFF_CAP)
            )
            self.sim.schedule(
                delay, self._maybe_retransmit, ack_id, request, attempt
            )

    def _on_flush_reply(self, ack_id: int, request: OpRequest, attempt: int,
                        event: Event) -> None:
        """A tracked flush got its reply.

        Normally that reply is the ACK; an ``Overloaded`` reply consumed
        the ACK slot but the operation was NOT applied, so the flush is
        reissued after backoff (bounded by the flush budget) — silently
        accepting it would lose state.
        """
        if self._pending_acks.pop(ack_id, None) is None:
            return
        if not (event.ok and isinstance(event.value, Overloaded)):
            return  # a true ACK — done
        self.stats.overload_rejections += 1
        if not self._alive:
            return
        if not self._flush_retryable(request) or (
            attempt + 1 >= self.FLUSH_RETRY_BUDGET
        ):
            # Only packet-induced ops are retried (their (key, clock, seq)
            # identity makes the reissue idempotent at the store).
            self.stats.flushes_gave_up += 1
            return
        delay = event.value.retry_after_us * (1.5 ** min(attempt, 8))
        delay *= 1.0 + 0.25 * self._overload_rng.random()
        self.sim.schedule(delay, self._reissue_overloaded, request, attempt + 1)

    def _reissue_overloaded(self, request: OpRequest, attempt: int) -> None:
        if not self._alive:
            return
        self._reissue(request, attempt)

    def _maybe_retransmit(self, ack_id: int, request: OpRequest, attempt: int) -> None:
        """Reissue an un-ACK'd flush (bounded: FLUSH_RETRY_BUDGET attempts).

        The destination is re-resolved from the cluster map on every
        attempt, so retransmissions follow a store failover. The seed
        retransmitted forever; a budget bounds the storm a permanently
        unreachable store causes, and give-ups are counted so invariant
        checkers can flag potentially-lost state."""
        if not self._alive or ack_id not in self._pending_acks:
            return
        if not self._flush_retryable(request):
            # Only packet-induced ops are retransmitted: their (key, clock,
            # seq) identity makes retransmission idempotent at the store.
            return
        self._pending_acks.pop(ack_id, None)
        if attempt + 1 >= self.FLUSH_RETRY_BUDGET:
            self.stats.flushes_gave_up += 1
            return
        self._reissue(request, attempt + 1)

    def ack_barrier(self) -> Event:
        """An event that fires once every outstanding un-ACK'd op is ACK'd.

        Used by the handover protocol's flush step (Figure 4 step 5): only
        *operations* are flushed, never state — which is why CHC's move is
        so much cheaper than OpenNF's (§7.3 R2).

        An open fast-path batch is force-flushed first: entries accumulated
        but not yet sent would otherwise slip past the handover fence.
        """
        if self._batch:
            entries = self._batch
            self._batch = []
            self._send_batched(entries)
        pending = [
            event for event, _request in self._pending_acks.values() if not event.triggered
        ]
        return self.sim.all_of(pending)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def read(
        self,
        obj_name: str,
        flow_key: Optional[Tuple],
        ctx: Optional[PacketContext] = None,
    ) -> Generator:
        """Read a state object per its strategy (generator, ``yield from``)."""
        ctx = ctx or self._default_ctx
        spec = self._spec(obj_name)
        _state_key, storage_key = self._key(obj_name, flow_key)
        strategy = spec.strategy()
        if not self.caching_enabled:
            result = yield from self._read_through(storage_key, spec, ctx)
            return result.value if result.value is not None else spec.initial_value

        if strategy is CacheStrategy.PER_FLOW_CACHE:
            if storage_key in self._cache:
                self.stats.cached_reads += 1
                return self._cache[storage_key]
            result = yield from self._read_through(storage_key, spec, ctx)
            value = result.value if result.value is not None else spec.initial_value
            self._note_cache_fill(storage_key)
            self._cache[storage_key] = value
            return value

        if strategy is CacheStrategy.READ_HEAVY_CACHE:
            if storage_key in self._readheavy_cache:
                self.stats.cached_reads += 1
                return self._readheavy_cache[storage_key]
            yield from self._blocking_call(
                storage_key,
                WatchRequest(key=storage_key, endpoint=self.instance_id, kind="value"),
            )
            self._watched.add(storage_key)
            result = yield from self._read_through(storage_key, spec, ctx)
            value = result.value if result.value is not None else spec.initial_value
            self._readheavy_cache[storage_key] = value
            return value

        if strategy is CacheStrategy.SPLIT_AWARE and self._exclusive.get(obj_name, False):
            if storage_key in self._cache:
                self.stats.cached_reads += 1
                return self._cache[storage_key]
            result = yield from self._read_through(storage_key, spec, ctx)
            value = result.value if result.value is not None else spec.initial_value
            self._note_cache_fill(storage_key)
            self._cache[storage_key] = value
            return value

        # NON_BLOCKING objects and non-exclusive SPLIT_AWARE: read through.
        result = yield from self._read_through(storage_key, spec, ctx)
        return result.value if result.value is not None else spec.initial_value

    def _read_through(
        self,
        storage_key: str,
        spec: StateObjectSpec,
        ctx: Optional[PacketContext] = None,
    ) -> Generator:
        """A store read, degraded to the last-seen value when the breaker
        is open (§8, Table 1's stale-tolerant path).

        Serving the stale snapshot keeps the packet path moving without
        amplifying load on a saturated store. No WAL read-log entry is
        written for a stale serve: recovery must only see values the store
        actually returned.
        """
        if (
            self.breaker is not None
            and not self.breaker.allows_request()
            and storage_key in self._stale
        ):
            self.stats.stale_reads += 1
            return ReadResult(value=self._stale[storage_key])
        result = yield from self._store_read(storage_key, spec, ctx)
        return result

    def _store_read(
        self,
        storage_key: str,
        spec: StateObjectSpec,
        ctx: Optional[PacketContext] = None,
    ) -> Generator:
        ctx = ctx or self._default_ctx
        result: ReadResult = yield from self._blocking_call(
            storage_key, ReadRequest(key=storage_key, instance=self.instance_id)
        )
        self.stats.store_reads += 1
        if self.breaker is not None:
            self._stale[storage_key] = result.value
        if spec.scope is Scope.CROSS_FLOW:
            self.wal.log_read(ctx.clock, storage_key, result.value, result.ts, at=self.sim.now)
        return result

    # ------------------------------------------------------------------
    # ownership / handover primitives (Figure 4)
    # ------------------------------------------------------------------

    def _ensure_owned(
        self, storage_key: str, obj_name: str = "", flow_key: Optional[Tuple] = None
    ) -> Generator:
        """Associate this instance with a per-flow object on first touch."""
        if storage_key in self._owned:
            return
        yield from self._blocking_call(
            storage_key,
            OwnerRequest(key=storage_key, instance=self.instance_id, action="associate"),
        )
        self._owned[storage_key] = (obj_name, flow_key)

    def get_owner(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        _sk, storage_key = self._key(obj_name, flow_key)
        owner = yield from self._blocking_call(
            storage_key, OwnerRequest(key=storage_key, action="get")
        )
        return owner

    def associate(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        _sk, storage_key = self._key(obj_name, flow_key)
        yield from self._ensure_owned(storage_key, obj_name, flow_key)

    def disassociate(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        """Flush the cached value, then release ownership (Figure 4 step 5)."""
        _sk, storage_key = self._key(obj_name, flow_key)
        if storage_key in self._cache:
            yield from self._blocking_call(
                storage_key,
                WriteRequest(key=storage_key, value=self._cache.pop(storage_key),
                             instance=self.instance_id),
            )
        yield from self._blocking_call(
            storage_key,
            OwnerRequest(key=storage_key, instance=self.instance_id, action="disassociate"),
        )
        self._owned.pop(storage_key, None)

    def watch_owner(self, obj_name: str, flow_key: Optional[Tuple]) -> Generator:
        """Register for ownership-change callbacks on a per-flow object."""
        _sk, storage_key = self._key(obj_name, flow_key)
        yield from self._blocking_call(
            storage_key,
            WatchRequest(key=storage_key, endpoint=self.instance_id, kind="owner"),
        )

    def on_owner_released(self, obj_name: str, flow_key: Optional[Tuple]) -> Event:
        """Event fired when the object's owner becomes vacant (step 6)."""
        _sk, storage_key = self._key(obj_name, flow_key)
        event = self.sim.event(name=f"owner-released({storage_key})")
        self._owner_waiters.setdefault(storage_key, []).append(event)
        return event

    def owned_items(self) -> Dict[str, Tuple[str, Optional[Tuple]]]:
        """storage_key -> (object name, flow key) for owned per-flow state."""
        return dict(self._owned)

    def adopt_keys(self, items) -> int:
        """Record ownership of keys handed over by a completed move.

        ``items`` is an iterable of ``(storage_key, obj_name, flow_key)``
        describing what the old instance's bulk release covered. The store
        already names this instance the owner; recording it client-side is
        what lets a *later* move re-release the keys even if this instance
        never processed a packet of the moved flows in between (a flow moved
        twice in quick succession must not strand its state). Values are not
        adopted — the cache stays cold, so the first touch still seeds from
        the store (§4.3).
        """
        owned = self._owned
        adopted = 0
        for storage_key, obj_name, flow_key in items:
            if storage_key not in owned:
                owned[storage_key] = (obj_name, flow_key)
                adopted += 1
        return adopted

    def release_keys_bulk(
        self, storage_keys: List[str], new_instance: str, notify_key: str
    ) -> Generator:
        """Hand a group of per-flow keys to ``new_instance`` in ONE store
        message (Figure 4 step 5 + §7.3 R2's cheap move). Drops local
        cached copies; cached *operations* were already flushed (the
        caller holds the ack barrier)."""
        if not storage_keys:
            return 0
        by_store: Dict[str, List[str]] = {}
        for key in storage_keys:
            by_store.setdefault(self._dst(key), []).append(key)
            self._cache.pop(key, None)
            self._owned.pop(key, None)
        moved = 0
        for _dst, keys in sorted(by_store.items()):
            # Re-resolve through the group's first key so a retry after a
            # store failover follows the cluster map.
            moved += yield from self._blocking_call(
                keys[0],
                BulkOwnerMove(
                    keys=tuple(keys),
                    old_instance=self.instance_id,
                    new_instance=new_instance,
                    notify_key=notify_key,
                ),
            )
        return moved

    # ------------------------------------------------------------------
    # split-aware cache control (§4.3 "Cross-flow state")
    # ------------------------------------------------------------------

    def set_exclusive(self, obj_name: str, exclusive: bool) -> Generator:
        """Framework notification that the traffic split (no longer) gives
        this instance exclusive access to ``obj_name``.

        Turning exclusivity *off* flushes: outstanding op ACKs are awaited
        and local copies dropped, so other instances see current state.
        """
        was = self._exclusive.get(obj_name, False)
        self._exclusive[obj_name] = exclusive
        if was and not exclusive:
            yield self.ack_barrier()
            prefix = StateKey(self.vertex_id, obj_name).object_id()
            for key in [k for k in self._cache if k.startswith(prefix)]:
                del self._cache[key]
        return None

    # ------------------------------------------------------------------
    # non-determinism (Appendix A)
    # ------------------------------------------------------------------

    def nondet(
        self, purpose: str, kind: str = "random", ctx: Optional[PacketContext] = None
    ) -> Generator:
        """Store-computed non-deterministic value for the current packet."""
        ctx = ctx or self._default_ctx
        _sk, storage_key = self._key("__nondet__", None)
        value = yield from self._blocking_call(
            storage_key, NonDetRequest(clock=ctx.clock, purpose=purpose, kind=kind)
        )
        return value

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------

    def per_flow_snapshot(self) -> Dict[str, Any]:
        """Current cached per-flow values (read by store recovery, §5.4)."""
        return dict(self._cache)

    def drop_pending_flushes(self, storage_keys) -> int:
        """Cancel retransmission of un-ACK'd ops on the given keys.

        Store recovery restores these keys from this client's cache, which
        already reflects every flushed-but-unacknowledged operation —
        retransmitting them afterwards would double-apply.
        """
        keys = set(storage_keys)
        dropped = 0
        for ack_id, (_event, request) in list(self._pending_acks.items()):
            if isinstance(request, BatchedOpRequest):
                surviving = tuple(e for e in request.entries if e.key not in keys)
                if len(surviving) != len(request.entries):
                    dropped += len(request.entries) - len(surviving)
                    if surviving:
                        # The retransmit closure holds this same object, so
                        # shrinking it in place covers future reissues too.
                        request.entries = surviving
                    else:
                        del self._pending_acks[ack_id]
            elif request.key in keys:
                del self._pending_acks[ack_id]
                dropped += 1
        return dropped

    def cancel_pending_flushes(self, identities) -> int:
        """Cancel un-ACK'd flushes whose ``(key, clock, seq)`` is covered.

        Store recovery passes the identities it accounts for — ops in the
        checkpoint's duplicate-suppression log plus ops it re-executes from
        this client's WAL. Retransmitting those would double-apply at the
        replacement (its dedup log no longer remembers old ACK-lost ops).
        Un-covered pending flushes keep retransmitting: they were lost in
        flight and the retransmission is what recovers them.
        """
        cancelled = 0
        for ack_id, (_event, request) in list(self._pending_acks.items()):
            if isinstance(request, BatchedOpRequest):
                surviving = tuple(
                    e
                    for e in request.entries
                    if (e.key, e.clock, e.seq) not in identities
                )
                if len(surviving) != len(request.entries):
                    cancelled += len(request.entries) - len(surviving)
                    if surviving:
                        request.entries = surviving
                    else:
                        del self._pending_acks[ack_id]
            elif (request.key, request.clock, request.seq) in identities:
                del self._pending_acks[ack_id]
                cancelled += 1
        return cancelled

    # ------------------------------------------------------------------
    # callback handling
    # ------------------------------------------------------------------

    def _callback_loop(self):
        while self._alive:
            envelope = yield self.endpoint.messages.get()
            message = envelope.payload
            if not isinstance(message, CallbackMessage):
                continue
            self.stats.callbacks_received += 1
            if message.kind == "value":
                if message.key in self._readheavy_cache or message.key in self._watched:
                    self._readheavy_cache[message.key] = message.value
            elif message.kind == "owner" and message.owner is None:
                waiters = self._owner_waiters.pop(message.key, [])
                for event in waiters:
                    if not event.triggered:
                        event.succeed(message.key)
