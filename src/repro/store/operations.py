"""Offloaded state operations (Table 2) and the custom-operation registry.

NFs do not read-modify-write shared state; they send *operations* which the
store serializes and applies (§4.3 "Offloading operations"). Each operation
is a pure function ``(current_value, *args) -> (new_value, return_value)``.
The *return value* is what a blocking caller receives (e.g. ``pop`` returns
the popped element; ``incr`` returns the post-increment value) and what the
store logs for duplicate-update emulation (§5.3, Figure 5b).

Developers can register custom operations (``register``), mirroring the
paper's "Developers can also load custom operations."
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

OperationFn = Callable[..., Tuple[Any, Any]]


class UnknownOperation(KeyError):
    """Raised when an NF offloads an operation the store does not know."""


def _incr(value: Optional[float], amount: float = 1) -> Tuple[float, float]:
    new = (value or 0) + amount
    return new, new


def _decr(value: Optional[float], amount: float = 1) -> Tuple[float, float]:
    new = (value or 0) - amount
    return new, new


def _push(value: Optional[List[Any]], item: Any) -> Tuple[List[Any], int]:
    new = list(value or [])
    new.append(item)
    return new, len(new)


def _pop(value: Optional[List[Any]]) -> Tuple[List[Any], Any]:
    new = list(value or [])
    popped = new.pop(0) if new else None
    return new, popped


def _compare_and_update(value: Any, expected: Any, update: Any) -> Tuple[Any, bool]:
    """Update the value if the condition (equality with ``expected``) holds."""
    if value == expected:
        return update, True
    return value, False


def _set(value: Any, new: Any) -> Tuple[Any, Any]:
    return new, new


def _get(value: Any) -> Tuple[Any, Any]:
    return value, value


def _add_to_set(value: Optional[frozenset], item: Any) -> Tuple[frozenset, bool]:
    current = value or frozenset()
    if item in current:
        return current, False
    return current | {item}, True


def _remove_from_set(value: Optional[frozenset], item: Any) -> Tuple[frozenset, bool]:
    current = value or frozenset()
    if item not in current:
        return current, False
    return current - {item}, True


class OperationRegistry:
    """Maps operation names to implementations.

    A registry is attached to every store instance; custom NF operations
    must be registered on the store *before* the NF offloads them.
    """

    def __init__(self):
        self._ops: Dict[str, OperationFn] = {}

    def register(self, name: str, fn: OperationFn, allow_replace: bool = False) -> None:
        if name in self._ops and not allow_replace:
            raise ValueError(f"operation {name!r} already registered")
        self._ops[name] = fn

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self) -> List[str]:
        return sorted(self._ops)

    def apply(self, name: str, current_value: Any, args: Tuple) -> Tuple[Any, Any]:
        """Apply operation ``name``; returns (new_value, return_value)."""
        fn = self._ops.get(name)
        if fn is None:
            raise UnknownOperation(name)
        return fn(current_value, *args)

    def copy(self) -> "OperationRegistry":
        clone = OperationRegistry()
        clone._ops = dict(self._ops)
        return clone


def default_registry() -> OperationRegistry:
    """A registry preloaded with Table 2's basic operations."""
    registry = OperationRegistry()
    registry.register("incr", _incr)
    registry.register("decr", _decr)
    registry.register("push", _push)
    registry.register("pop", _pop)
    registry.register("compare_and_update", _compare_and_update)
    registry.register("set", _set)
    registry.register("get", _get)
    registry.register("add_to_set", _add_to_set)
    registry.register("remove_from_set", _remove_from_set)
    return registry
