"""External state store and its client-side library (§4.3).

CHC externalizes all NF state into an in-memory, sharded key-value store.
This package implements:

* :mod:`~repro.store.keys` — state-object keys with vertex/instance
  metadata (ownership and concurrency control, §4.3 "State metadata").
* :mod:`~repro.store.operations` — the offloaded operation set (Table 2)
  plus a registry for developer-loaded custom operations.
* :mod:`~repro.store.datastore` — a store instance: multi-threaded, one
  thread per key partition (no locks), update logging keyed by packet
  logical clock for duplicate suppression (§5.3), checkpointing with TS
  metadata (§5.4).
* :mod:`~repro.store.client` — the client-side library NFs link against:
  Table 1's caching strategies, non-blocking updates, ACK-free updates
  with framework retransmission, callbacks for read-heavy shared state.
* :mod:`~repro.store.wal` — NF-side write-ahead logs of shared-state
  operations and read snapshots (datastore recovery, §5.4).
* :mod:`~repro.store.store_recovery` — Figure 7's TS-selection recovery.
* :mod:`~repro.store.nondeterminism` — Appendix A's store-computed
  non-deterministic values.
"""

from repro.store.client import StoreClient
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.store.keys import StateKey
from repro.store.operations import OperationRegistry, default_registry
from repro.store.spec import AccessPattern, CacheStrategy, Scope, StateObjectSpec
from repro.store.store_recovery import recover_store_instance, select_ts
from repro.store.wal import ReadLogEntry, UpdateLogEntry, WriteAheadLog

__all__ = [
    "AccessPattern",
    "CacheStrategy",
    "DatastoreInstance",
    "OperationRegistry",
    "ReadLogEntry",
    "Scope",
    "StateKey",
    "StateObjectSpec",
    "StoreClient",
    "StoreCluster",
    "UpdateLogEntry",
    "WriteAheadLog",
    "default_registry",
    "recover_store_instance",
    "select_ts",
]
