"""NF-side write-ahead logs for datastore recovery (§5.4, Figure 7).

Each NF instance locally logs, in strict issue order:

* every **shared-state update operation** it offloads (``UpdateLogEntry``),
  so a failed store instance can re-execute them; and
* every **shared-state read**, together with the value returned and the
  store's ``TS`` metadata at that read (``ReadLogEntry``), so recovery can
  pick a re-execution order consistent with what the NF actually observed
  (Case 2 of §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class UpdateLogEntry:
    """One offloaded shared-state update, as issued by this instance."""

    clock: int
    key: str
    op: str
    args: Tuple
    seq: int = 0
    at: float = 0.0


@dataclass(frozen=True)
class ReadLogEntry:
    """One shared-state read: the value seen and the store's TS at that time.

    ``ts`` maps instance ID -> logical clock of that instance's last update
    executed by the store (the paper's ``TS`` set, e.g. ``TS19{20,11,8,13}``).
    """

    clock: int
    key: str
    value: Any
    ts: Dict[str, int]
    at: float = 0.0


class WriteAheadLog:
    """Per-instance WAL: updates and read snapshots in issue order."""

    def __init__(self, instance_id: str):
        self.instance_id = instance_id
        self.updates: List[UpdateLogEntry] = []
        self.reads: List[ReadLogEntry] = []

    def log_update(
        self, clock: int, key: str, op: str, args: Tuple, seq: int = 0, at: float = 0.0
    ) -> None:
        self.updates.append(
            UpdateLogEntry(clock=clock, key=key, op=op, args=args, seq=seq, at=at)
        )

    def log_read(
        self, clock: int, key: str, value: Any, ts: Dict[str, int], at: float = 0.0
    ) -> None:
        self.reads.append(ReadLogEntry(clock=clock, key=key, value=value, ts=dict(ts), at=at))

    def updates_for(self, key: str) -> List[UpdateLogEntry]:
        return [entry for entry in self.updates if entry.key == key]

    def reads_for(self, key: str) -> List[ReadLogEntry]:
        return [entry for entry in self.reads if entry.key == key]

    def updates_after(self, key: str, clock: int) -> List[UpdateLogEntry]:
        """Update ops on ``key`` strictly after the op with clock ``clock``.

        The log is in issue order and clocks of one instance's ops are
        strictly increasing, so "after" is a positional cut.
        """
        entries = self.updates_for(key)
        for index, entry in enumerate(entries):
            if entry.clock == clock:
                return entries[index + 1 :]
        return entries  # clock not found -> nothing from us executed yet

    def truncate(self) -> None:
        self.updates.clear()
        self.reads.clear()

    def __len__(self) -> int:
        return len(self.updates) + len(self.reads)
