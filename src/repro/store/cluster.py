"""Multiple datastore instances (§4.3 "For scale and fault tolerance").

Each store instance handles state for a subset of NF vertices; each state
object lives on exactly one store node, so no cross-node coordination is
ever needed. Vertices are assigned explicitly (or fall back to a stable
hash), and a failed instance can be replaced while the cluster keeps the
same routing.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence

from repro.store.datastore import DatastoreInstance
from repro.store.keys import parse_storage_key
from repro.store.operations import OperationFn


class StoreCluster:
    """Routes state keys to store instances by vertex assignment."""

    def __init__(self, instances: List[DatastoreInstance]):
        if not instances:
            raise ValueError("a cluster needs at least one store instance")
        self._instances: Dict[str, DatastoreInstance] = {i.name: i for i in instances}
        self._order: List[str] = [i.name for i in instances]
        self._vertex_assignment: Dict[str, str] = {}
        # Scale-out replicas: reachable only through vertex pins, never
        # part of the stable-hash ring (``_order``). Kept after the ring
        # so state audits that fold ``instances`` into one map see the
        # replica's (authoritative) copy of a migrated key last.
        self._replicas: List[str] = []

    @property
    def instances(self) -> List[DatastoreInstance]:
        return [self._instances[name] for name in self._order + self._replicas]

    def assign_vertex(self, vertex_id: str, store_name: str) -> None:
        """Pin all of a vertex's state to one store instance."""
        if store_name not in self._instances:
            raise KeyError(f"unknown store instance {store_name!r}")
        self._vertex_assignment[vertex_id] = store_name

    def endpoint_for_key(self, storage_key: str) -> str:
        """Name of the store instance holding ``storage_key``."""
        try:
            vertex, _obj, _flow = parse_storage_key(storage_key)
        except ValueError:
            vertex = storage_key  # bare keys hash as their own "vertex"
        assigned = self._vertex_assignment.get(vertex)
        if assigned is not None:
            return assigned
        # Stable hash fallback: deterministic across runs (no PYTHONHASHSEED
        # dependence). crc32 rather than a byte sum: a sum collides on any
        # character permutation of a vertex name ("nat1"/"na1t"), piling
        # anagram vertices onto one store node.
        digest = zlib.crc32(vertex.encode()) % len(self._order)
        return self._order[digest]

    def instance_for_key(self, storage_key: str) -> DatastoreInstance:
        return self._instances[self.endpoint_for_key(storage_key)]

    def instance_named(self, name: str) -> DatastoreInstance:
        return self._instances[name]

    def replace_instance(self, old_name: str, replacement: DatastoreInstance) -> None:
        """Swap a failed instance for its recovery replacement in routing."""
        if old_name not in self._instances:
            raise KeyError(f"unknown store instance {old_name!r}")
        del self._instances[old_name]
        self._instances[replacement.name] = replacement
        self._order = [replacement.name if n == old_name else n for n in self._order]
        self._replicas = [
            replacement.name if n == old_name else n for n in self._replicas
        ]
        for vertex, store in list(self._vertex_assignment.items()):
            if store == old_name:
                self._vertex_assignment[vertex] = replacement.name

    def add_replica(
        self, replica: DatastoreInstance, vertices: Sequence[str] = ()
    ) -> None:
        """Register a scale-out replica and re-pin ``vertices`` to it.

        The replica deliberately does NOT join the stable-hash ring:
        growing ``_order`` would remap every unpinned vertex's keys to new
        homes nobody migrated (silent state loss). Traffic reaches the
        replica exclusively through vertex pins, so adding one is a pure
        routing change for exactly the vertices being re-homed — the
        elastic analogue of :meth:`replace_instance`'s same-slot swap.
        """
        if replica.name in self._instances:
            raise ValueError(f"store instance {replica.name!r} already registered")
        self._instances[replica.name] = replica
        self._replicas.append(replica.name)
        for vertex in vertices:
            self.assign_vertex(vertex, replica.name)

    def vertices_assigned_to(self, store_name: str) -> List[str]:
        """Vertices currently pinned to ``store_name`` (sorted)."""
        return sorted(
            vertex
            for vertex, store in self._vertex_assignment.items()
            if store == store_name
        )

    def unassign_vertex(self, vertex_id: str) -> None:
        """Drop a vertex's pin (maintenance-director vertex removal).

        Safe on an unpinned vertex; later keys for that vertex would fall
        back to the stable-hash route, but a removed vertex never issues
        any.
        """
        self._vertex_assignment.pop(vertex_id, None)

    def register_custom_op(self, name: str, fn: OperationFn) -> None:
        """Load a developer-supplied operation on every store instance."""
        for instance in self._instances.values():
            instance.registry.register(name, fn, allow_replace=True)
