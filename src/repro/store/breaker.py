"""Client-side circuit breaker for store access (§8 overload model).

Layered by :class:`~repro.store.client.StoreClient` over its existing
retransmission machinery. Failure signals are ``Overloaded`` admission
rejections, RPC give-ups, and *slow calls* (a call exceeding
``slow_call_us`` counts as a failure — a saturated store that still
answers is the classic grey failure). After ``failure_threshold``
consecutive failures the breaker opens: requests are refused locally for
``open_us`` (with seeded jitter so a fleet of clients doesn't re-probe in
lock-step), then a half-open period admits ``half_open_probes`` probe
calls; one success closes the breaker, one failure re-opens it.

While the breaker is open the client degrades reads to cached /
stale-tolerant paths per Table 1 instead of amplifying load on the
saturated store.

Determinism: jitter comes from a ``random.Random`` seeded from the
breaker's name, never from wall-clock state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.simnet.engine import Simulator
from repro.util import stable_hash

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class BreakerStats:
    failures: int = 0
    successes: int = 0
    slow_calls: int = 0
    opens: int = 0
    probes: int = 0
    refusals: int = 0  # acquire() had to wait at least once


class CircuitBreaker:
    """Closed / open / half-open breaker with seeded-jitter probes."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "breaker",
        failure_threshold: int = 5,
        open_us: float = 2_000.0,
        slow_call_us: Optional[float] = None,
        half_open_probes: int = 1,
        jitter_frac: float = 0.1,
        seed: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.failure_threshold = failure_threshold
        self.open_us = open_us
        self.slow_call_us = slow_call_us
        self.half_open_probes = half_open_probes
        self.jitter_frac = jitter_frac
        self._rng = random.Random(stable_hash(name) ^ (seed * 0x9E3779B1))
        self.state = CLOSED
        self.stats = BreakerStats()
        self._consecutive_failures = 0
        self._open_until = 0.0
        self._probes_inflight = 0

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------

    def _jittered(self, base_us: float) -> float:
        return base_us * (1.0 + self.jitter_frac * self._rng.random())

    def _maybe_half_open(self) -> None:
        if self.state == OPEN and self.sim.now >= self._open_until:
            self.state = HALF_OPEN
            self._probes_inflight = 0

    def _trip(self) -> None:
        self.state = OPEN
        self.stats.opens += 1
        self._open_until = self.sim.now + self._jittered(self.open_us)
        self._consecutive_failures = 0
        self._probes_inflight = 0

    def record_failure(self) -> None:
        self.stats.failures += 1
        if self.state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip()
            return
        if self.state == CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def record_success(self) -> None:
        self.stats.successes += 1
        if self.state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self.state = CLOSED
        self._consecutive_failures = 0

    def record_result(self, elapsed_us: float) -> None:
        """Classify a completed call: slow counts as failure (grey store)."""
        if self.slow_call_us is not None and elapsed_us >= self.slow_call_us:
            self.stats.slow_calls += 1
            self.record_failure()
        else:
            self.record_success()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def allows_request(self) -> bool:
        """Non-waiting check; claims no probe slot."""
        self._maybe_half_open()
        if self.state == CLOSED:
            return True
        return self.state == HALF_OPEN and self._probes_inflight < self.half_open_probes

    def acquire(self):
        """Generator: wait until a call may be issued (claims a probe slot
        when half-open). Drive with ``yield from``."""
        waited = False
        while True:
            self._maybe_half_open()
            if self.state == CLOSED:
                return
            if self.state == HALF_OPEN and self._probes_inflight < self.half_open_probes:
                self._probes_inflight += 1
                self.stats.probes += 1
                return
            if not waited:
                waited = True
                self.stats.refusals += 1
            if self.state == OPEN:
                wait_us = max(self._open_until - self.sim.now, 1.0)
            else:
                # half-open with all probe slots taken: poll for an outcome
                wait_us = self._jittered(self.open_us / 10.0)
            yield self.sim.timeout(self._jittered(wait_us))
