"""State-object declarations: scope and access pattern (Table 1, Table 4).

Every NF declares its state objects up front, each with a **scope** (which
header fields key the object — this drives scope-aware traffic partitioning,
§4.1) and an **access pattern**. The pair selects a management strategy per
Table 1:

====================  =======================  =========================================
Scope                 Access pattern           Strategy
====================  =======================  =========================================
any                   write mostly/read rare   non-blocking ops, no caching
per-flow              any                      cache + periodic non-blocking flush
cross-flow            write rarely/read heavy  cache + store callbacks on update
cross-flow            write/read often         cache only while the traffic split gives
                                               this instance exclusive access; else flush
====================  =======================  =========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

FIVE_TUPLE_FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto")


class Scope(enum.Enum):
    """Whether an object is keyed per flow-partition or shared across them."""

    PER_FLOW = "per-flow"
    CROSS_FLOW = "cross-flow"


class AccessPattern(enum.Enum):
    """The read/write mix an NF developer declares for the object."""

    WRITE_MOSTLY = "write mostly, read rarely"
    READ_HEAVY = "write rarely, read mostly"
    READ_WRITE_OFTEN = "write/read often"


class CacheStrategy(enum.Enum):
    """The Table 1 strategy selected from (scope, access pattern)."""

    NON_BLOCKING = "non-blocking ops, no caching"
    PER_FLOW_CACHE = "cache with periodic non-blocking flush"
    READ_HEAVY_CACHE = "cache with callbacks"
    SPLIT_AWARE = "cache if the traffic split allows, flush otherwise"


@dataclass(frozen=True)
class StateObjectSpec:
    """Declaration of one state object.

    ``scope_fields`` is the tuple of packet header fields that keys the
    object — the return value of the paper's ``.scope()``; ``()`` means a
    singleton shared object (e.g. a vertex-wide counter). ``scope`` says
    whether, under the current partitioning granularity, the object is
    confined to one instance (per-flow) or shared (cross-flow).
    """

    name: str
    scope: Scope
    access: AccessPattern
    scope_fields: Tuple[str, ...] = FIVE_TUPLE_FIELDS
    initial_value: object = None

    def strategy(self) -> CacheStrategy:
        """Table 1 strategy selection."""
        if self.access is AccessPattern.WRITE_MOSTLY:
            return CacheStrategy.NON_BLOCKING
        if self.scope is Scope.PER_FLOW:
            return CacheStrategy.PER_FLOW_CACHE
        if self.access is AccessPattern.READ_HEAVY:
            return CacheStrategy.READ_HEAVY_CACHE
        return CacheStrategy.SPLIT_AWARE

    def granularity(self) -> int:
        """How fine-grained the scope is (more fields = finer)."""
        return len(self.scope_fields)
