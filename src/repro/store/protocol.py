"""Wire messages between the client-side library and store instances."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass
class OpRequest:
    """Offload an operation to the store (§4.3).

    ``blocking`` — caller waits for the result; otherwise the store ACKs
    immediately and applies in the background.
    ``clock`` — logical clock of the inducing packet (0 = not packet-induced);
    used for duplicate-update emulation (§5.3) and commit signals to the
    root (§5.4, Figure 6).
    ``vector_tag`` — the 32-bit (vertex ID || object ID) tag the store
    reports to the root when the update commits.
    ``seq`` — the index of this update among all updates packet ``clock``
    induces on this key (0 for the first). Duplicate processing (replay,
    clone replication) re-issues the same (key, clock, seq) identity, which
    is how the store recognises and emulates duplicates (§5.3).
    ``log_update`` — whether the store should clock-log this update for
    duplicate suppression (on for packet-induced updates).
    """

    key: str
    op: str
    args: Tuple = ()
    instance: str = ""
    clock: int = 0
    seq: int = 0
    blocking: bool = True
    vector_tag: int = 0
    log_update: bool = True
    claim_owner: bool = False  # first write of per-flow state associates it
    return_state: bool = False  # send back the updated object (cache seeding)


@dataclass
class OpResult:
    """Blocking-operation result: the op's return value plus the TS set.

    ``state`` carries the post-operation object when the requester asked
    for it (§4.3: "The store applies the operation and sends back the
    updated object to the update initiator") — used to seed caches.
    """

    value: Any
    ts: Dict[str, int] = field(default_factory=dict)
    emulated: bool = False
    state: Any = None


@dataclass
class BatchedOpRequest:
    """A batch of non-blocking updates flushed in one RPC (§6 fast path).

    The batched fast path coalesces the per-packet flush traffic of a whole
    packet batch into a single store round-trip. Each entry is a complete
    :class:`OpRequest` carrying its own (key, clock, seq, vector_tag)
    identity, so duplicate emulation, WAL logging and commit signals behave
    **exactly** as if the entries had been sent individually — the batch
    changes message/event count, never semantics. The store applies entries
    in order and replies with one ACK for the whole batch.
    """

    entries: Tuple["OpRequest", ...]
    instance: str = ""


@dataclass
class Overloaded:
    """Retryable admission-control rejection (§8).

    Sent (with ``ok=True`` — this is a reply, not an RPC failure) in place
    of the normal result when the store is over its in-flight budget. The
    requested operation was NOT applied; the client backs off
    ``retry_after_us`` (plus jitter) and reissues. Only data-plane traffic
    is ever rejected — control-plane requests (ownership moves, watches,
    takeovers) are always admitted so overload cannot wedge handover or
    recovery.
    """

    retry_after_us: float = 50.0


@dataclass
class ReadRequest:
    """Read current value (after applying outstanding background updates)."""

    key: str
    instance: str = ""


@dataclass
class ReadResult:
    value: Any
    owner: Optional[str] = None
    ts: Dict[str, int] = field(default_factory=dict)


@dataclass
class WriteRequest:
    """Raw value write — used by cache flushes of per-flow state."""

    key: str
    value: Any
    instance: str = ""


@dataclass
class OwnerRequest:
    """Read or update ownership metadata (per-flow state association)."""

    key: str
    instance: str = ""
    action: str = "get"  # "get" | "associate" | "disassociate"


@dataclass
class BulkOwnerMove:
    """Move ownership of many per-flow state keys in one request.

    Elastic scaling reallocates whole flow groups; CHC "notifies the
    datastore manager to update the relevant instance IDs" (§7.3 R2) —
    one message, not one transfer per flow, which is why its move is ~35X
    cheaper than OpenNF's state transfer. ``notify_key`` identifies the
    move rendezvous for owner-watch callbacks.
    """

    keys: Tuple[str, ...]
    old_instance: str
    new_instance: str
    notify_key: str = ""


@dataclass
class CloneRegistration:
    """Register/unregister ``clone`` as co-owner of ``original``'s state.

    Straggler mitigation (§5.3) runs a clone in parallel with the original
    on the same input; both must be able to update the original's per-flow
    state (duplicate updates are suppressed by the clock log). ``register``
    False removes the mapping.
    """

    original: str
    clone: str
    register: bool = True


@dataclass
class TakeoverRequest:
    """Re-associate ALL state owned by ``old_instance`` to ``new_instance``.

    Used when an NF instance fails over (§5.4 "NF Failover": "the datastore
    manager associates the failover instance's ID with relevant state") and
    when a straggler is killed in favour of its clone.
    """

    old_instance: str
    new_instance: str


@dataclass
class WatchRequest:
    """Register a callback endpoint.

    ``kind='value'`` — notify on every committed update of the object
    (read-heavy cross-flow caching, §4.3).
    ``kind='owner'`` — notify when ownership metadata changes (handover
    step 3, Figure 4).
    """

    key: str
    endpoint: str
    kind: str = "value"


@dataclass
class UnwatchRequest:
    key: str
    endpoint: str
    kind: str = "value"


@dataclass
class LockReadRequest:
    """Acquire the key's lock, then read (StatelessNF-style access [17]).

    The store grants locks in FIFO order per key; the response (the
    current value) is withheld until the lock is granted, so waiters block
    exactly as they would spinning on a remote lock.
    """

    key: str
    instance: str = ""


@dataclass
class WriteUnlockRequest:
    """Write a value back and release the key's lock."""

    key: str
    value: Any
    instance: str = ""


@dataclass
class CallbackMessage:
    """Store → client one-way notification for a watched key."""

    key: str
    kind: str
    value: Any = None
    owner: Optional[str] = None


@dataclass
class CommitSignal:
    """Store → root: update for packet ``clock`` committed (Figure 6 step 2)."""

    clock: int
    vector_tag: int


@dataclass
class BatchedCommitSignal:
    """Store → root: commit signals for a batch-served set of updates.

    Transport aggregation only (§6 fast path): the root processes each
    ``(clock, vector_tag)`` entry exactly as an individual
    :class:`CommitSignal`, in order — one message instead of one per op.
    """

    signals: Tuple[Tuple[int, int], ...]


@dataclass
class PruneRequest:
    """Root → store: packet ``clock`` left the chain; drop its update logs."""

    clock: int


@dataclass
class BatchedPruneRequest:
    """Root → store: prune several departed clocks in one message.

    The root aggregates prunes that fall due within one grace window;
    each clock is pruned exactly as an individual :class:`PruneRequest`.
    """

    clocks: Tuple[int, ...]


@dataclass
class NonDetRequest:
    """Appendix A: store-computed non-deterministic value.

    The store computes (or recalls) the value for (clock, purpose), so a
    replayed packet observes the identical "random" outcome.
    """

    clock: int
    purpose: str
    kind: str = "random"  # "random" | "time"


@dataclass
class SnapshotRequest:
    """Ask a store instance for a full state snapshot (tests/recovery)."""

    prefix: str = ""


@dataclass
class CheckpointControl:
    """Start/stop periodic checkpointing or force one now."""

    action: str = "force"  # "force"
