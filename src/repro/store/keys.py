"""State-object keys and their metadata (§4.3, "State metadata").

The client-side library appends metadata to every key: the **vertex ID**
(prevents collisions when two logical NFs use the same object name) and,
for per-flow objects, the **instance ID** of the owner. Ownership is
enforced by the store: only the associated instance may update a per-flow
object, which is what makes cross-instance handover (Figure 4) a pure
metadata operation instead of a state copy.

Shared (cross-flow) objects carry no instance ID — every instance of the
vertex may issue operations on them; the store serializes those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class StateKey:
    """A fully-qualified state object key.

    ``flow_key`` is the projection of the packet header onto the object's
    scope (e.g. ``("10.0.0.1",)`` for a per-src-host object, or the full
    five-tuple for per-connection state). ``None`` means a singleton object
    (e.g. a vertex-wide packet counter).
    """

    vertex_id: str
    obj_name: str
    flow_key: Optional[Tuple] = None

    def storage_key(self) -> str:
        """The flat string the store shards and indexes on."""
        flow = "" if self.flow_key is None else "|".join(map(str, self.flow_key))
        return f"{self.vertex_id}\x1f{self.obj_name}\x1f{flow}"

    def object_id(self) -> str:
        """Vertex-qualified object name (ignores the flow key)."""
        return f"{self.vertex_id}\x1f{self.obj_name}"

    def __str__(self) -> str:
        return self.storage_key().replace("\x1f", "/")


def parse_storage_key(raw: str) -> Tuple[str, str, str]:
    """Split a flat storage key back into (vertex, object, flow) parts."""
    vertex, obj, flow = raw.split("\x1f")
    return vertex, obj, flow


def vertex_of_key(raw: str) -> str:
    """Vertex part of a storage key; a bare key is its own "vertex".

    Mirrors :meth:`StoreCluster.endpoint_for_key`'s routing view, so any
    code slicing a store's state by vertex (scale-out migration, the
    per-vertex lame duck) agrees with where the router sends that key.
    """
    return raw.split("\x1f", 1)[0]
