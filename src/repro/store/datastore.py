"""A datastore instance: sharded, multi-threaded, lock-free key-value store.

Design points from the paper (§4.3, §5.3, §5.4):

* Each instance runs several threads; **each state object is handled by a
  single thread** (keys hash onto threads) so no locking is needed.
* NFs offload *operations*; the store serializes ops from different
  instances of a vertex and applies them in the background (non-blocking)
  or synchronously (blocking).
* For every packet-induced update the store logs the resulting value keyed
  by the packet's logical clock; a replayed update with an already-applied
  clock is **emulated** — the logged value is returned without re-applying
  (Figure 5b). Logs are pruned when the root deletes the packet.
* On committing an update the store signals the root with the packet clock
  and the (instance ID || object ID) tag, feeding the XOR bit-vector
  delete protocol (Figure 6, step 2).
* The store checkpoints state periodically together with ``TS`` — the last
  executed clock per NF instance — enabling Figure 7 recovery.
* Appendix A: non-deterministic values are computed (and remembered) by
  the store, keyed by packet clock, so replay observes identical values.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis import runtime as _sanitize
from repro.simnet.engine import Channel, Process, Simulator
from repro.util import stable_hash
from repro.simnet.network import Network
from repro.simnet.rpc import RpcEndpoint, RpcRequest
from repro.store.keys import vertex_of_key
from repro.store.operations import OperationRegistry, default_registry
from repro.store.protocol import (
    BatchedOpRequest,
    BatchedCommitSignal,
    BatchedPruneRequest,
    BulkOwnerMove,
    CloneRegistration,
    LockReadRequest,
    CallbackMessage,
    CheckpointControl,
    CommitSignal,
    NonDetRequest,
    OpRequest,
    OpResult,
    Overloaded,
    OwnerRequest,
    PruneRequest,
    ReadRequest,
    ReadResult,
    SnapshotRequest,
    TakeoverRequest,
    UnwatchRequest,
    WatchRequest,
    WriteRequest,
    WriteUnlockRequest,
)

DEFAULT_OP_SERVICE_US = 0.196  # ~5.1M ops/s per thread (§7.1 datastore bench)

# Logical clocks carry the issuing root's instance ID in their high bits
# (§5: "we encode the identifier of the root instance into the higher order
# bits"), which is how the store routes commit signals and how the
# framework delivers delete requests to the right root.
_ROOT_ID_SHIFT = 56


def _clock_root_id(clock: int) -> int:
    return clock >> _ROOT_ID_SHIFT


@dataclass
class Checkpoint:
    """A point-in-time snapshot with TS metadata (§5.4).

    ``ts`` maps key -> {instance -> clock of that instance's last executed
    update on the key at checkpoint time}. ``update_log`` is the
    duplicate-suppression log at checkpoint time ((key, clock) -> {seq ->
    committed value}): recovery seeds the replacement with it so a client
    retransmitting an op whose effect the checkpoint already contains is
    emulated rather than double-applied.
    """

    taken_at: float
    data: Dict[str, Any]
    ts: Dict[str, Dict[str, int]]
    update_log: Dict[Tuple[str, int], Dict[int, Any]] = field(default_factory=dict)


class _BatchState:
    """Join counter for a :class:`BatchedOpRequest` split across threads."""

    __slots__ = ("remaining", "emulated")

    def __init__(self, remaining: int):
        self.remaining = remaining
        self.emulated = 0


class _BatchShard:
    """The slice of a batch whose keys hash onto one store thread.

    Sharding the batch keeps the per-key single-thread invariant: every
    entry is still applied by the thread that owns its key, in entry order.
    """

    __slots__ = ("entries", "state")

    def __init__(self, entries: Tuple[OpRequest, ...], state: _BatchState):
        self.entries = entries
        self.state = state


@dataclass
class StoreStats:
    ops_applied: int = 0
    ops_emulated: int = 0
    reads: int = 0
    writes: int = 0
    rejected: int = 0
    callbacks_sent: int = 0
    commit_signals: int = 0
    overload_rejections: int = 0


class DatastoreInstance:
    """One store node. See module docstring for the design."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        n_threads: int = 4,
        op_service_us: float = DEFAULT_OP_SERVICE_US,
        registry: Optional[OperationRegistry] = None,
        root_endpoint: Optional[str] = None,
        checkpoint_interval_us: Optional[float] = None,
        dedup_enabled: bool = True,
        mirror: Optional[str] = None,
        sync_replication: bool = False,
        seed: int = 0,
        inflight_limit: Optional[int] = None,
        overload_retry_after_us: float = 50.0,
    ):
        self.sim = sim
        self.name = name
        self.n_threads = n_threads
        self.op_service_us = op_service_us
        self.per_key_metadata_us = 0.02  # bulk ownership moves (§7.3 R2)
        self.registry = registry or default_registry()
        self.root_endpoint = root_endpoint
        self.checkpoint_interval_us = checkpoint_interval_us
        # Duplicate-update suppression (§5.3). Disabling it reproduces what
        # frameworks without CHC's clock-keyed update log do — the Table 5
        # experiment's "without suppression" arm.
        self.dedup_enabled = dedup_enabled
        # §5.4 "Correlated failures": "Replication of store instances can
        # help recover from such correlated failures, but that comes at the
        # cost of increasing the per packet processing latency." When a
        # mirror is configured, every state-changing request is forwarded
        # to it; synchronous replication withholds the reply until the
        # mirror acknowledges (the latency cost the paper mentions).
        self.mirror = mirror
        self.sync_replication = sync_replication
        # Admission control (§8): reject data-plane work once the aggregate
        # thread backlog reaches the budget. Rejections are retryable
        # (``Overloaded``); control-plane requests are always admitted.
        self.inflight_limit = inflight_limit
        self.overload_retry_after_us = overload_retry_after_us

        self.endpoint = RpcEndpoint(sim, network, name)
        self._data: Dict[str, Any] = {}
        self._owners: Dict[str, Optional[str]] = {}
        self._clones: Dict[str, str] = {}  # original instance -> active clone
        self._lock_holders: Dict[str, str] = {}
        self._lock_waiters: Dict[str, List] = {}
        self._value_watchers: Dict[str, Set[str]] = {}
        self._owner_watchers: Dict[str, Set[str]] = {}
        # (key, clock) -> {op seq -> committed value} for that packet
        self._update_log: Dict[Tuple[str, int], Dict[int, Any]] = {}
        # clock -> update-log keys logged under it, so the per-packet
        # prune on delete is O(keys touched), not O(log size)
        self._log_clocks: Dict[int, List[Tuple[str, int]]] = {}
        # Clocks whose duplicate-suppression log was pruned. A prune means
        # the root saw the packet's full commit vector, so *every* update
        # with that clock was already applied — any copy that arrives later
        # (a retransmission that was in flight when the ACK-triggered prune
        # fired; real-socket deployments queue frames for a long time) is a
        # duplicate and must be emulated, not re-applied. Without this
        # memory the prune itself would reopen the exactly-once window it
        # exists to close.
        self._pruned_clocks: Set[int] = set()
        # Vertices whose state has been migrated to a scale-out replica:
        # requests for their keys are still committed (so the catch-up diff
        # stays exact) but never ACK'd — see enter_vertex_lame_duck.
        self._lame_duck_vertices: Set[str] = set()
        # per-key TS metadata: key -> {instance -> clock of last executed
        # op}. The paper's TS is global per store instance (Figure 7 has a
        # single shared object, where the two coincide); per-key TS is the
        # strictly more precise refinement that makes recovery correct when
        # one store instance holds many objects.
        self._ts: Dict[str, Dict[str, int]] = {}
        self._nondet: Dict[Tuple[int, str], Any] = {}
        self._nondet_rng = random.Random(seed ^ 0x5EED)
        self.last_checkpoint: Optional[Checkpoint] = None
        self.stats = StoreStats()
        self._alive = True

        self._queues: List[Channel] = [
            Channel(sim, name=f"{name}-thread{i}") for i in range(n_threads)
        ]
        self._processes: List[Process] = [
            sim.process(self._thread_loop(queue), name=f"{name}-thread{i}")
            for i, queue in enumerate(self._queues)
        ]
        self._processes.append(sim.process(self._dispatch_loop(), name=f"{name}-dispatch"))
        self._processes.append(sim.process(self._message_loop(), name=f"{name}-messages"))
        if checkpoint_interval_us:
            self._processes.append(
                sim.process(self._checkpoint_loop(), name=f"{name}-checkpoint")
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def lame_duck(self) -> bool:
        return self.endpoint.mute_output

    def enter_lame_duck(self) -> None:
        """Keep committing, stop talking (planned replacement, DESIGN.md §12).

        From this instant the instance still serializes and logs every
        arriving operation — so the replacement's catch-up diff stays exact
        — but ACKs and commit signals are dropped on the wire. Clients that
        were in flight against this node therefore retransmit, and their
        retries re-resolve through the cluster map to the replacement,
        where the dedup log makes the re-application (or a catch-up copy
        racing it) idempotent. Without this, an op ACK'd after the catch-up
        snapshot but before teardown would be lost: the client would never
        retransmit it, and no one would copy it forward.
        """
        self.endpoint.mute_output = True

    def enter_vertex_lame_duck(self, vertex_id: str) -> None:
        """Per-vertex :meth:`enter_lame_duck`: mute ACKs for one vertex.

        Store scale-out re-homes a single vertex's keys to a new replica
        while this node keeps serving everything else, so the whole-node
        mute is too blunt. From this instant, requests touching the
        migrating vertex's keys are still applied and logged (a request
        already in our queues may carry an update the replica's snapshot
        missed — committing it keeps the identity observable) but the
        response is dropped: the un-ACK'd client retransmits, re-resolves
        through the cluster map, and lands on the replica, where the
        seeded dedup log emulates anything the snapshot already covered.

        The mute is permanent by design: routing never points a migrated
        vertex back at this node, so a late straggler can only create
        phantom state here — which the mute keeps invisible (no ACK, no
        read reply) until :meth:`forget_vertex` garbage-collects it.
        """
        self._lame_duck_vertices.add(vertex_id)
        self.endpoint.mute_filter = self._migrating_request

    def _migrating_request(self, request: RpcRequest) -> bool:
        """True when ``request`` touches a vertex this node migrated away."""
        payload = request.payload
        if isinstance(payload, BatchedOpRequest):
            # The whole batch ACK is withheld if ANY entry was migrated:
            # the client's retransmission re-groups entries by destination
            # per attempt, so migrated entries reach the replica and the
            # rest re-land here, where the dedup log emulates them.
            return any(
                vertex_of_key(entry.key) in self._lame_duck_vertices
                for entry in payload.entries
            )
        if isinstance(payload, BulkOwnerMove):
            return any(
                vertex_of_key(key) in self._lame_duck_vertices
                for key in payload.keys
            )
        key = getattr(payload, "key", None)
        if key is None:
            return False
        return vertex_of_key(key) in self._lame_duck_vertices

    def forget_vertex(self, vertex_id: str) -> int:
        """Garbage-collect a migrated vertex's state once traffic quiesced.

        The vertex stays in the lame-duck set (the mute is the permanent
        backstop against stragglers); only the dead copies of its data,
        ownership, TS metadata, dedup log and watcher registrations are
        dropped, so state audits that fold every store's keys into one map
        never see the stale pre-migration values. Returns the number of
        data keys dropped.
        """
        doomed = [k for k in self._data if vertex_of_key(k) == vertex_id]
        for key in doomed:
            del self._data[key]
            self._owners.pop(key, None)
            self._ts.pop(key, None)
        for log_key in [
            lk for lk in self._update_log if vertex_of_key(lk[0]) == vertex_id
        ]:
            # _log_clocks entries stay; _prune pops from _update_log with
            # a default, so a dangling index entry is harmless
            del self._update_log[log_key]
        for watchers in (self._value_watchers, self._owner_watchers):
            for key in [k for k in watchers if vertex_of_key(k) == vertex_id]:
                del watchers[key]
        return len(doomed)

    def fail(self) -> None:
        """Fail-stop: all in-memory state vanishes; endpoint goes dark.

        The last checkpoint is the only thing a recovery can start from
        (it models durable/replicated checkpoint storage, as in ARIES-style
        recovery the paper builds on [18]).
        """
        if not self._alive:
            return
        self._alive = False
        for process in self._processes:
            process.kill()
        self.endpoint.fail()
        self._data.clear()
        self._owners.clear()
        self._update_log.clear()
        self._log_clocks.clear()
        self._ts.clear()
        self._nondet.clear()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    def _thread_for(self, key: str) -> Channel:
        # Stable hash: each key maps to exactly one thread, reproducibly.
        return self._queues[stable_hash(key) % self.n_threads]

    def _inflight(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def _admission_reject(self, request: RpcRequest) -> bool:
        """Apply the in-flight budget to one data-plane request.

        Returns True when the request was rejected (an ``Overloaded`` reply
        has been sent). Data plane = OpRequest/ReadRequest/LockReadRequest:
        the per-packet load. Ownership moves, writes (flush-on-release),
        watches, takeovers and other control-plane traffic is never
        rejected — overload must not break handover or recovery.
        """
        if self.inflight_limit is None or self._inflight() < self.inflight_limit:
            return False
        self.stats.overload_rejections += 1
        self.endpoint.respond(
            request, Overloaded(retry_after_us=self.overload_retry_after_us)
        )
        return True

    def _dispatch_loop(self):
        while self._alive:
            request: RpcRequest = yield self.endpoint.requests.get()
            payload = request.payload
            if isinstance(payload, OpRequest):
                # Both blocking and non-blocking ops are serialized through
                # the key's thread; a non-blocking op is ACK'd as soon as it
                # is applied (the requester is not waiting either way), so
                # an ACK always means the update is durable in the store —
                # which makes the client's ack_barrier() a true fence for
                # handover flushes (§5.1).
                if self._admission_reject(request):
                    continue
                self._thread_for(payload.key).put((payload, request))
            elif isinstance(payload, (ReadRequest, LockReadRequest)):
                if self._admission_reject(request):
                    continue
                self._thread_for(payload.key).put((payload, request))
            elif isinstance(payload, BatchedOpRequest):
                # Data-plane load, so subject to admission control like the
                # individual ops it replaces. The batch is sharded so each
                # entry still runs on the thread owning its key.
                if self._admission_reject(request):
                    continue
                groups: Dict[int, List[OpRequest]] = {}
                for entry in payload.entries:
                    groups.setdefault(
                        stable_hash(entry.key) % self.n_threads, []
                    ).append(entry)
                state = _BatchState(len(groups))
                for idx, entries in groups.items():
                    self._queues[idx].put((_BatchShard(tuple(entries), state), request))
            elif isinstance(
                payload, (WriteRequest, OwnerRequest, WriteUnlockRequest)
            ):
                self._thread_for(payload.key).put((payload, request))
            elif isinstance(payload, BulkOwnerMove):
                self._thread_for(payload.notify_key or payload.new_instance).put(
                    (payload, request)
                )
            elif isinstance(payload, CloneRegistration):
                if payload.register:
                    self._clones[payload.original] = payload.clone
                else:
                    if self._clones.get(payload.original) == payload.clone:
                        del self._clones[payload.original]
                suite = _sanitize.ACTIVE
                if suite is not None:
                    suite.note_store_clone(
                        self.sim, payload.original, payload.clone, payload.register
                    )
                self.endpoint.respond(request, True)
            elif isinstance(payload, TakeoverRequest):
                self._thread_for(payload.new_instance).put((payload, request))
            elif isinstance(payload, WatchRequest):
                watchers = self._watcher_map(payload.kind).setdefault(payload.key, set())
                watchers.add(payload.endpoint)
                self.endpoint.respond(request, True)
            elif isinstance(payload, UnwatchRequest):
                self._watcher_map(payload.kind).get(payload.key, set()).discard(payload.endpoint)
                self.endpoint.respond(request, True)
            elif isinstance(payload, PruneRequest):
                self._prune(payload.clock)
            elif isinstance(payload, BatchedPruneRequest):
                for clock in payload.clocks:
                    self._prune(clock)
            elif isinstance(payload, NonDetRequest):
                self.endpoint.respond(request, self._nondet_value(payload))
            elif isinstance(payload, SnapshotRequest):
                snapshot = {
                    k: copy.deepcopy(v)
                    for k, v in self._data.items()
                    if k.startswith(payload.prefix)
                }
                self.endpoint.respond(request, snapshot)
            elif isinstance(payload, CheckpointControl):
                self.take_checkpoint()
                self.endpoint.respond(request, self.last_checkpoint.taken_at)
            else:
                self.endpoint.respond(request, RuntimeError(f"bad request {payload!r}"), ok=False)

    def _message_loop(self):
        """Consume one-way messages (prune notifications from the root)."""
        while self._alive:
            envelope = yield self.endpoint.messages.get()
            if isinstance(envelope.payload, PruneRequest):
                self._prune(envelope.payload.clock)
            elif isinstance(envelope.payload, BatchedPruneRequest):
                for clock in envelope.payload.clocks:
                    self._prune(clock)

    def _watcher_map(self, kind: str) -> Dict[str, Set[str]]:
        return self._value_watchers if kind == "value" else self._owner_watchers

    def _replicate(self, payload):
        """Forward a state-changing request to the mirror.

        Returns the mirror's response event when synchronous (the caller
        yields it before replying), else None. Mirrored operations keep
        their (key, clock, seq) identity, so the mirror's duplicate-
        suppression log stays equivalent to the primary's.
        """
        if self.mirror is None:
            return None
        import copy as _copy

        forwarded = _copy.copy(payload)
        if isinstance(forwarded, OpRequest):
            forwarded.blocking = True
            forwarded.vector_tag = 0  # the primary already signalled the root
        ack = self.endpoint.call_event(self.mirror, forwarded)
        return ack if self.sync_replication else None

    def _thread_loop(self, queue: Channel):
        while self._alive:
            payload, request = yield queue.get()
            yield self.sim.timeout(self.op_service_us)
            if not self._alive:
                return
            try:
                yield from self._serve(payload, request)
            except Exception as error:  # noqa: BLE001 — a bad request (e.g.
                # an unregistered custom operation) must not kill the
                # thread serving every other key it owns
                if request is not None:
                    self.endpoint.respond(request, error, ok=False)

    def _serve(self, payload, request):
        """Handle one queued request (thread context; may yield)."""
        if isinstance(payload, OpRequest):
            result = self.apply_operation(payload)
            mirror_ack = self._replicate(payload)
            if mirror_ack is not None:
                yield mirror_ack
            if request is not None:
                if payload.blocking:
                    self.endpoint.respond(request, result)
                else:
                    self.endpoint.respond(request, OpResult(value=None, emulated=result.emulated))
        elif isinstance(payload, _BatchShard):
            # One op_service_us was charged by the thread loop; charge the
            # rest so store CPU time matches the unbatched equivalent — the
            # batching win is in messages and events, not store cycles.
            if len(payload.entries) > 1:
                yield self.sim.timeout(self.op_service_us * (len(payload.entries) - 1))
            signals: List[Tuple[str, int, int]] = []
            for entry in payload.entries:
                result = self.apply_operation(entry, signal_sink=signals)
                if result.emulated:
                    payload.state.emulated += 1
                mirror_ack = self._replicate(entry)
                if mirror_ack is not None:
                    yield mirror_ack
            by_root: Dict[str, List[Tuple[int, int]]] = {}
            for destination, clock, tag in signals:
                by_root.setdefault(destination, []).append((clock, tag))
            for destination, sigs in by_root.items():
                if len(sigs) == 1:
                    self.endpoint.send(destination, CommitSignal(*sigs[0]))
                else:
                    self.endpoint.send(destination, BatchedCommitSignal(tuple(sigs)))
            payload.state.remaining -= 1
            if payload.state.remaining == 0 and request is not None:
                self.endpoint.respond(
                    request,
                    OpResult(value=None, emulated=payload.state.emulated > 0),
                )
        elif isinstance(payload, ReadRequest):
            self.endpoint.respond(request, self._read(payload))
        elif isinstance(payload, WriteRequest):
            outcome = self._write(payload)
            mirror_ack = self._replicate(payload)
            if mirror_ack is not None:
                yield mirror_ack
            self.endpoint.respond(request, outcome)
        elif isinstance(payload, OwnerRequest):
            outcome = self._handle_owner(payload)
            if payload.action != "get":
                mirror_ack = self._replicate(payload)
                if mirror_ack is not None:
                    yield mirror_ack
            self.endpoint.respond(request, outcome)
        elif isinstance(payload, LockReadRequest):
            self._handle_lock_read(payload, request)
        elif isinstance(payload, WriteUnlockRequest):
            self._handle_write_unlock(payload, request)
        elif isinstance(payload, BulkOwnerMove):
            yield self.sim.timeout(self.per_key_metadata_us * max(len(payload.keys), 1))
            outcome = self._handle_bulk_move(payload)
            mirror_ack = self._replicate(payload)
            if mirror_ack is not None:
                yield mirror_ack
            self.endpoint.respond(request, outcome)
        elif isinstance(payload, TakeoverRequest):
            owned = [k for k, v in self._owners.items() if v == payload.old_instance]
            yield self.sim.timeout(self.per_key_metadata_us * max(len(owned), 1))
            suite = _sanitize.ACTIVE
            for key in owned:
                self._owners[key] = payload.new_instance
                if suite is not None:
                    suite.note_store_transfer(self.sim, key, payload.new_instance, "takeover")
            self._clones.pop(payload.old_instance, None)
            mirror_ack = self._replicate(payload)
            if mirror_ack is not None:
                yield mirror_ack
            self.endpoint.respond(request, len(owned))

    # ------------------------------------------------------------------
    # state operations
    # ------------------------------------------------------------------

    def apply_operation(
        self,
        op: OpRequest,
        signal_sink: Optional[List[Tuple[str, int, int]]] = None,
    ) -> OpResult:
        """Serialize-and-apply one offloaded operation (or emulate it).

        Public because store recovery re-executes WAL entries through the
        same path.
        """
        key = op.key
        owner = self._owners.get(key)
        suite = _sanitize.ACTIVE
        if op.claim_owner and owner is None:
            # First write of a per-flow object: the metadata the client
            # appends to the key associates the instance (§4.3) — no
            # separate association round trip is needed.
            self._owners[key] = owner = op.instance
            if suite is not None:
                suite.note_store_transfer(self.sim, key, op.instance, "claim")
        if (
            owner is not None
            and op.instance
            and owner != op.instance
            and self._clones.get(owner) != op.instance
        ):
            self.stats.rejected += 1
            if suite is not None:
                suite.note_store_reject(self.sim, key, op.instance, owner)
            return OpResult(value=None, ts=dict(self._ts.get(key, {})), emulated=False)

        if self.dedup_enabled and op.log_update and op.clock:
            if op.clock in self._pruned_clocks:
                # Straggler duplicate of an already-pruned packet: the prune
                # proves every update with this clock committed, and the
                # original's result was consumed long ago (nothing can be
                # awaiting this copy), so the logged value is not needed.
                self.stats.ops_emulated += 1
                return OpResult(
                    value=None,
                    ts=dict(self._ts.get(key, {})),
                    emulated=True,
                    state=copy.deepcopy(self._data.get(key)) if op.return_state else None,
                )
            committed = self._update_log.get((key, op.clock))
            if committed is not None and op.seq in committed:
                # Duplicate: an update with this (key, clock, seq) identity
                # was already applied — emulate it (Figure 5b): return the
                # logged value without touching state or re-signalling root.
                # ``return_state`` is honoured so a clone's first touch can
                # seed its cache from the store's current object ("CHC
                # initializes the clone with the straggler's latest state
                # from the datastore", §5.3).
                self.stats.ops_emulated += 1
                return OpResult(
                    value=committed[op.seq],
                    ts=dict(self._ts.get(key, {})),
                    emulated=True,
                    state=copy.deepcopy(self._data.get(key)) if op.return_state else None,
                )

        if suite is not None:
            # Applied (not emulated, not rejected) mutation: the ownership
            # sanitizer checks the writer against the last one it saw.
            suite.note_store_apply(self.sim, key, op.instance)
        current = self._data.get(key)
        new_value, return_value = self.registry.apply(op.op, current, op.args)
        self._data[key] = new_value
        self.stats.ops_applied += 1
        if op.clock and op.instance:
            # Monotone per instance: a loss-retransmitted op can arrive
            # after a later-issued one, and letting it regress the TS would
            # make a checkpoint re-execute ops it already contains.
            ts = self._ts.setdefault(key, {})
            if op.clock > ts.get(op.instance, 0):
                ts[op.instance] = op.clock
        if self.dedup_enabled and op.log_update and op.clock:
            self._log_committed(key, op.clock, op.seq, return_value)
        if (
            op.vector_tag
            and op.clock
            and self.root_endpoint
            # Per-vertex lame duck: the op is committed (keeps the
            # migration's catch-up diff exact) but neither ACK'd nor
            # signalled — the client's retransmission will apply and
            # signal from the replica, and signalling from both sides
            # would corrupt the root's commit-vector parity.
            and vertex_of_key(key) not in self._lame_duck_vertices
        ):
            # multi-root deployments name roots "root{id}"; the clock's high
            # bits say which root logged this packet
            destination = self.root_endpoint.format(root_id=_clock_root_id(op.clock))
            if signal_sink is not None:
                # batch-served entry: the caller aggregates this shard's
                # signals into one message per root (§6 fast path)
                signal_sink.append((destination, op.clock, op.vector_tag))
            else:
                self.endpoint.send(destination, CommitSignal(op.clock, op.vector_tag))
            self.stats.commit_signals += 1
        self._notify_value_watchers(key, new_value, exclude=op.instance)
        return OpResult(
            value=return_value,
            ts=dict(self._ts.get(key, {})),
            emulated=False,
            state=copy.deepcopy(new_value) if op.return_state else None,
        )

    def _read(self, request: ReadRequest) -> ReadResult:
        self.stats.reads += 1
        return ReadResult(
            value=copy.deepcopy(self._data.get(request.key)),
            owner=self._owners.get(request.key),
            ts=dict(self._ts.get(request.key, {})),
        )

    def _write(self, request: WriteRequest) -> bool:
        owner = self._owners.get(request.key)
        suite = _sanitize.ACTIVE
        if owner is not None and request.instance and owner != request.instance:
            self.stats.rejected += 1
            if suite is not None:
                suite.note_store_reject(self.sim, request.key, request.instance, owner)
            return False
        if suite is not None:
            suite.note_store_apply(self.sim, request.key, request.instance)
        self._data[request.key] = request.value
        self.stats.writes += 1
        return True

    def _handle_lock_read(self, payload: LockReadRequest, request) -> None:
        """FIFO per-key locking (StatelessNF-style shared access [17])."""
        key = payload.key
        if key not in self._lock_holders:
            self._lock_holders[key] = payload.instance
            self.stats.reads += 1
            self.endpoint.respond(
                request, ReadResult(value=copy.deepcopy(self._data.get(key)))
            )
        else:
            self._lock_waiters.setdefault(key, []).append((payload, request))

    def _handle_write_unlock(self, payload: WriteUnlockRequest, request) -> None:
        key = payload.key
        self._data[key] = payload.value
        self.stats.writes += 1
        self.endpoint.respond(request, True)
        waiters = self._lock_waiters.get(key, [])
        if waiters:
            next_payload, next_request = waiters.pop(0)
            self._lock_holders[key] = next_payload.instance
            self.stats.reads += 1
            self.endpoint.respond(
                next_request, ReadResult(value=copy.deepcopy(self._data.get(key)))
            )
        else:
            self._lock_holders.pop(key, None)

    def _handle_bulk_move(self, request: BulkOwnerMove) -> int:
        """Swap ownership metadata for a group of keys (one message).

        Fires owner callbacks on the rendezvous key so a waiting new
        instance learns the handover completed (Figure 4 step 6).
        """
        moved = 0
        suite = _sanitize.ACTIVE
        for key in request.keys:
            if self._owners.get(key) in (request.old_instance, None):
                self._owners[key] = request.new_instance
                moved += 1
                if suite is not None:
                    suite.note_store_transfer(self.sim, key, request.new_instance, "bulk_move")
        if self._lame_duck_vertices and any(
            vertex_of_key(key) in self._lame_duck_vertices
            for key in request.keys
        ):
            # migrated keys: the mover's un-ACK'd request retransmits to
            # the replica, which fires the rendezvous callback instead
            return moved
        if request.notify_key:
            for watcher in sorted(self._owner_watchers.get(request.notify_key, ())):
                self.endpoint.send(
                    watcher,
                    CallbackMessage(
                        key=request.notify_key, kind="owner", owner=request.new_instance
                    ),
                )
                self.stats.callbacks_sent += 1
        return moved

    def _handle_owner(self, request: OwnerRequest) -> Optional[str]:
        key = request.key
        if request.action == "get":
            return self._owners.get(key)
        if request.action == "associate":
            self._owners[key] = request.instance
        elif request.action == "disassociate":
            if self._owners.get(key) == request.instance:
                self._owners[key] = None
        else:
            raise ValueError(f"bad owner action {request.action!r}")
        owner = self._owners.get(key)
        suite = _sanitize.ACTIVE
        if suite is not None:
            suite.note_store_transfer(self.sim, key, owner, request.action)
        if not (
            self._lame_duck_vertices
            and vertex_of_key(key) in self._lame_duck_vertices
        ):
            for watcher in sorted(self._owner_watchers.get(key, ())):
                self.endpoint.send(watcher, CallbackMessage(key=key, kind="owner", owner=owner))
                self.stats.callbacks_sent += 1
        return owner

    def _notify_value_watchers(self, key: str, value: Any, exclude: str = "") -> None:
        if self._lame_duck_vertices and vertex_of_key(key) in self._lame_duck_vertices:
            # a migrated key's phantom writes must not push stale values
            # into caches — the replica owns the watchers now
            return
        for watcher in sorted(self._value_watchers.get(key, ())):
            if watcher == exclude:
                continue
            self.endpoint.send(watcher, CallbackMessage(key=key, kind="value", value=value))
            self.stats.callbacks_sent += 1

    def _nondet_value(self, request: NonDetRequest) -> Any:
        """Appendix A: same (clock, purpose) always returns the same value."""
        cache_key = (request.clock, request.purpose)
        if cache_key not in self._nondet:
            if request.kind == "time":
                self._nondet[cache_key] = self.sim.now
            else:
                self._nondet[cache_key] = self._nondet_rng.random()
        return self._nondet[cache_key]

    def _log_committed(self, key: str, clock: int, seq: int, return_value: Any) -> None:
        """Record a committed update in the duplicate-suppression log."""
        log_key = (key, clock)
        entry = self._update_log.get(log_key)
        if entry is None:
            entry = self._update_log[log_key] = {}
            self._log_clocks.setdefault(clock, []).append(log_key)
        entry[seq] = return_value

    def _prune(self, clock: int) -> None:
        """Drop duplicate-suppression logs for a packet that left the chain."""
        self._pruned_clocks.add(clock)
        for log_key in self._log_clocks.pop(clock, ()):
            self._update_log.pop(log_key, None)
        if self._nondet:
            for nd_key in [k for k in self._nondet if k[0] == clock]:
                del self._nondet[nd_key]

    # ------------------------------------------------------------------
    # checkpointing & introspection
    # ------------------------------------------------------------------

    def take_checkpoint(self) -> Checkpoint:
        self.last_checkpoint = Checkpoint(
            taken_at=self.sim.now,
            data=copy.deepcopy(self._data),
            ts={key: dict(per_key) for key, per_key in self._ts.items()},
            update_log={
                log_key: dict(seqs) for log_key, seqs in self._update_log.items()
            },
        )
        return self.last_checkpoint

    def _checkpoint_loop(self):
        while self._alive:
            yield self.sim.timeout(self.checkpoint_interval_us)
            if not self._alive:
                return
            self.take_checkpoint()

    def peek(self, key: str) -> Any:
        """Direct read for tests/assertions (no simulated cost)."""
        return self._data.get(key)

    def owner_of(self, key: str) -> Optional[str]:
        return self._owners.get(key)

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    def logged_clocks(self, key: str) -> List[int]:
        return sorted(clock for (k, clock) in self._update_log if k == key)
