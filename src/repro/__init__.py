"""CHC reproduction: correctness and performance for stateful chained NFs.

A functional, discrete-event reproduction of the NSDI 2019 paper
"Correctness and Performance for Stateful Chained Network Functions"
(Khalid & Akella). See README.md for a tour and DESIGN.md for the
paper-to-module mapping.

Quickstart::

    from repro import (
        ChainRuntime, LogicalChain, ReplaySource, Simulator, make_trace2,
    )
    from repro.nfs import Nat, PortscanDetector

    sim = Simulator()
    chain = LogicalChain("demo")
    chain.add_vertex("nat", Nat, entry=True)
    chain.add_vertex("scan", PortscanDetector)
    chain.add_edge("nat", "scan")
    runtime = ChainRuntime(sim, chain)
    trace = make_trace2(scale=0.001)
    ReplaySource(sim, trace.packets, runtime.inject, load_fraction=0.5)
    sim.run()
    print(runtime.egress_recorder.summary())
"""

from repro.core import (
    ChainRuntime,
    CloneController,
    LogicalChain,
    NetworkFunction,
    Output,
    RuntimeParams,
    StateAPI,
    fail_over_nf,
    fail_over_root,
    move_flows,
)
from repro.simnet import Simulator
from repro.store import (
    AccessPattern,
    DatastoreInstance,
    Scope,
    StateObjectSpec,
    StoreClient,
    StoreCluster,
)
from repro.traffic import Packet, FiveTuple, ReplaySource, make_trace1, make_trace2

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "ChainRuntime",
    "CloneController",
    "DatastoreInstance",
    "FiveTuple",
    "LogicalChain",
    "NetworkFunction",
    "Output",
    "Packet",
    "ReplaySource",
    "RuntimeParams",
    "Scope",
    "Simulator",
    "StateAPI",
    "StateObjectSpec",
    "StoreClient",
    "StoreCluster",
    "fail_over_nf",
    "fail_over_root",
    "make_trace1",
    "make_trace2",
    "move_flows",
]
