#!/usr/bin/env python
"""Fault-tolerance demo (R1/R6): crash an NF mid-run, fail over, verify COE.

Runs the same workload twice through a two-NF chain:

1. a clean run, recording the final chain-wide state;
2. a run where the first NF fail-stops a third of the way in — the
   framework launches a replacement, re-associates state ownership with
   one metadata message, and replays the root's packet log through the
   chain (duplicates suppressed by the store's clock log).

The demo then compares final state: chain output equivalence means the
crash must be invisible in the numbers.

Run:  python examples/fault_tolerance.py
"""

from repro import ChainRuntime, LogicalChain, Simulator, fail_over_nf
from repro.core.nf_api import NetworkFunction, Output
from repro.store import AccessPattern, Scope, StateObjectSpec
from repro.store.keys import StateKey
from repro.traffic import FiveTuple, Packet


class CountingNF(NetworkFunction):
    name = "counter"

    def state_specs(self):
        return {
            "per_flow": StateObjectSpec(
                "per_flow", Scope.PER_FLOW, AccessPattern.READ_WRITE_OFTEN, initial_value=0
            ),
            "total": StateObjectSpec(
                "total", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            ),
        }

    def process(self, packet, state):
        yield from state.update("per_flow", packet.five_tuple.canonical().key(), "incr", 1)
        yield from state.update("total", None, "incr", 1)
        return [Output(packet)]


class SinkNF(NetworkFunction):
    name = "sink"

    def state_specs(self):
        return {
            "seen": StateObjectSpec(
                "seen", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            )
        }

    def process(self, packet, state):
        yield from state.update("seen", None, "incr", 1)
        return [Output(packet)]


N_PACKETS = 150


def build(sim):
    chain = LogicalChain("ft")
    chain.add_vertex("counter", CountingNF, entry=True)
    chain.add_vertex("sink", SinkNF)
    chain.add_edge("counter", "sink")
    return ChainRuntime(sim, chain)


def run(crash: bool):
    sim = Simulator()
    runtime = build(sim)
    recovery = {}

    def source():
        for index in range(N_PACKETS):
            runtime.inject(
                Packet(FiveTuple(f"10.0.7.{index % 6}", "52.0.0.1", 6000 + (index % 6), 80))
            )
            yield sim.timeout(3.0)
            if crash and index == N_PACKETS // 3:
                runtime.instances["counter-0"].fail()

                def recover():
                    outcome = yield from fail_over_nf(runtime, "counter-0")
                    recovery["result"] = outcome

                sim.process(recover())

    sim.process(source())
    sim.run(until=60_000_000)

    def peek(vertex, obj):
        key = StateKey(vertex, obj).storage_key()
        return runtime.store.instance_for_key(key).peek(key)

    return {
        "counter.total": peek("counter", "total"),
        "sink.seen": peek("sink", "seen"),
        "deleted": runtime.root.stats.deleted,
        "log": len(runtime.root.log),
        "recovery": recovery.get("result"),
    }


def main() -> None:
    clean = run(crash=False)
    crashed = run(crash=True)

    recovery = crashed.pop("recovery")
    clean.pop("recovery")
    print(f"{'metric':<16} {'clean run':>10} {'crash+failover':>15}")
    for key in clean:
        print(f"{key:<16} {clean[key]!s:>10} {crashed[key]!s:>15}")
    print(f"\nfailover: {recovery.failed_id} -> {recovery.new_id}, "
          f"{recovery.replayed} packets replayed, "
          f"{recovery.state_keys_taken} state keys re-associated, "
          f"{recovery.duration_us:.1f}us")
    equivalent = all(clean[k] == crashed[k] for k in clean)
    print(f"\nchain output equivalence: {'HOLDS' if equivalent else 'VIOLATED'}")


if __name__ == "__main__":
    main()
