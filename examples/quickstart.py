#!/usr/bin/env python
"""Quickstart: build and run the paper's evaluation chain.

Constructs the §7.1 chain — NAT -> portscan detector -> load balancer,
with the trojan detector off-path on a copy of the NAT's traffic — runs a
synthetic campus-to-EC2 trace through it at 50% of line rate, and prints
per-NF processing latency, chain latency, goodput, and the root's
correctness bookkeeping.

Run:  python examples/quickstart.py
"""

from repro import ChainRuntime, LogicalChain, ReplaySource, Simulator, make_trace2
from repro.nfs import LoadBalancer, Nat, PortscanDetector, TrojanDetector


def main() -> None:
    sim = Simulator()

    # 1. Define the logical chain (the operator-facing DAG API, §3).
    chain = LogicalChain("quickstart")
    chain.add_vertex("nat", Nat, entry=True)
    chain.add_vertex("scan", PortscanDetector)
    chain.add_vertex("lb", LoadBalancer)
    chain.add_vertex("trojan", TrojanDetector)
    chain.add_edge("nat", "scan")
    chain.add_edge("scan", "lb")
    chain.add_edge("nat", "trojan", mirror=True)  # off-path copy of traffic

    # 2. Compile it into a physical chain: store, root, instances, splitters.
    runtime = ChainRuntime(sim, chain)

    # 3. Replay a synthetic Trace2 analogue at 50% of the 10G line rate.
    trace = make_trace2(scale=0.002)
    print(f"trace: {trace.stats()}")
    ReplaySource(sim, trace.packets, runtime.inject, load_fraction=0.5)

    # 4. Run the simulation to completion.
    sim.run(until=120_000_000)

    # 5. Report.
    print(f"\n{'NF instance':<12} {'processed':>9} {'median':>9} {'p95':>9}")
    for instance_id, instance in sorted(runtime.instances.items()):
        summary = instance.recorder.summary((50, 95))
        print(
            f"{instance_id:<12} {instance.stats.processed:>9} "
            f"{summary[50.0]:>8.2f}u {summary[95.0]:>8.2f}u"
        )

    print(f"\nchain egress: {runtime.egress_meter.packets} pkts, "
          f"{runtime.egress_meter.gbps():.2f} Gbps goodput")
    print(f"end-to-end latency: median {runtime.egress_recorder.median():.1f}us")
    print(f"root: {runtime.root.stats.injected} injected, "
          f"{runtime.root.stats.deleted} deleted, "
          f"{len(runtime.root.log)} still logged")

    nat_store = runtime.stores[0]
    total_key = [k for k in nat_store.keys() if "total_packets" in k]
    if total_key:
        print(f"NAT total_packets (externalized in the store): "
              f"{nat_store.peek(total_key[0])}")


if __name__ == "__main__":
    main()
